"""PForDelta integer coding (Zukowski et al., ICDE 2006).

PForDelta ("Patched Frame of Reference") encodes a block of integers with a
fixed bit width ``b`` chosen so that most values fit; the minority that do
not ("exceptions") are patched in from a separate exception list.  The paper
lists PForDelta alongside Simple-9 as a future-work alternative to vbyte for
the factor streams; it is included here for the coding ablation benchmark.

Layout per block (this implementation, little-endian):

* ``u8``   bit width ``b`` (0..32)
* ``u16``  number of values in the block (at most ``BLOCK_SIZE``)
* ``u16``  number of exceptions
* packed ``b``-bit low parts of every value (ceil(n*b/8) bytes)
* exception indexes, vbyte coded
* exception high parts (``value >> b``), vbyte coded
"""

from __future__ import annotations

import struct
from typing import List, Sequence

from ..errors import DecodingError
from .base import IntegerCodec, check_non_negative
from .vbyte import decode_vbyte, encode_vbyte

__all__ = ["PForDeltaCodec"]

BLOCK_SIZE = 128
_EXCEPTION_TARGET = 0.1  # aim for at most ~10% exceptions per block


def _choose_width(values: Sequence[int]) -> int:
    """Pick the smallest bit width leaving at most ~10% of values as exceptions."""
    if not values:
        return 0
    widths = sorted(value.bit_length() for value in values)
    # The width covering the 90th percentile of values.
    cutoff_index = min(len(widths) - 1, int(len(widths) * (1.0 - _EXCEPTION_TARGET)))
    width = widths[cutoff_index]
    return max(width, 1)


def _pack_low_bits(values: Sequence[int], width: int) -> bytes:
    """Pack the ``width`` low bits of each value contiguously."""
    out = bytearray()
    accumulator = 0
    filled = 0
    mask = (1 << width) - 1
    for value in values:
        accumulator |= (value & mask) << filled
        filled += width
        while filled >= 8:
            out.append(accumulator & 0xFF)
            accumulator >>= 8
            filled -= 8
    if filled:
        out.append(accumulator & 0xFF)
    return bytes(out)


def _unpack_low_bits(data: bytes, width: int, count: int) -> List[int]:
    values: List[int] = []
    accumulator = 0
    filled = 0
    position = 0
    mask = (1 << width) - 1
    for _ in range(count):
        while filled < width:
            if position >= len(data):
                raise DecodingError("truncated PForDelta low-bit stream")
            accumulator |= data[position] << filled
            position += 1
            filled += 8
        values.append(accumulator & mask)
        accumulator >>= width
        filled -= width
    return values


class PForDeltaCodec(IntegerCodec):
    """Patched frame-of-reference coding over fixed-size blocks."""

    name = "pfd"

    def encode(self, values: Sequence[int]) -> bytes:
        check_non_negative(values, "pfordelta")
        out = bytearray()
        for start in range(0, len(values), BLOCK_SIZE):
            block = list(values[start : start + BLOCK_SIZE])
            out += self._encode_block(block)
        return bytes(out)

    def _encode_block(self, block: List[int]) -> bytes:
        width = _choose_width(block)
        mask = (1 << width) - 1
        exceptions = [
            (index, value >> width)
            for index, value in enumerate(block)
            if value > mask
        ]
        header = struct.pack("<BHH", width, len(block), len(exceptions))
        low = _pack_low_bits(block, width)
        exception_indexes = encode_vbyte(index for index, _ in exceptions)
        exception_high = encode_vbyte(high for _, high in exceptions)
        body = (
            struct.pack("<HH", len(exception_indexes), len(exception_high))
            + low
            + exception_indexes
            + exception_high
        )
        return header + body

    def decode(self, data: bytes, count: int) -> List[int]:
        values = self.decode_all(data)
        if len(values) < count:
            raise DecodingError(
                f"PForDelta stream contained {len(values)} values, expected {count}"
            )
        return values[:count]

    def decode_all(self, data: bytes) -> List[int]:
        values: List[int] = []
        offset = 0
        total = len(data)
        while offset < total:
            if offset + 9 > total:
                raise DecodingError("truncated PForDelta block header")
            width, block_count, exception_count = struct.unpack_from("<BHH", data, offset)
            idx_len, high_len = struct.unpack_from("<HH", data, offset + 5)
            offset += 9
            low_bytes = (block_count * width + 7) // 8
            end_low = offset + low_bytes
            end_idx = end_low + idx_len
            end_high = end_idx + high_len
            if end_high > total:
                raise DecodingError("truncated PForDelta block body")
            block = _unpack_low_bits(data[offset:end_low], width, block_count) if width else [0] * block_count
            indexes = decode_vbyte(data[end_low:end_idx], exception_count)
            highs = decode_vbyte(data[end_idx:end_high], exception_count)
            for index, high in zip(indexes, highs):
                if index >= block_count:
                    raise DecodingError("PForDelta exception index out of range")
                block[index] |= high << width
            values.extend(block)
            offset = end_high
        return values
