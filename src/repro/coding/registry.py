"""Codec registry.

Factor-encoding schemes are named by two letters (position codec then length
codec), e.g. ``"ZV"`` = zlib positions, vbyte lengths, matching the paper's
Tables 4, 5 and 8.  The registry maps single-letter codec names to factory
functions so the scheme parser in :mod:`repro.core.encoder` stays trivial
and extension codecs (gamma, delta, Simple-9, PForDelta) can be plugged into
the same machinery for the ablation benchmarks.
"""

from __future__ import annotations

from typing import Callable, Dict

from .base import IntegerCodec
from .elias import EliasDeltaCodec, EliasGammaCodec
from .fixed import U32Codec, U64Codec
from .pfordelta import PForDeltaCodec
from .simple9 import Simple9Codec
from .vbyte import VByteCodec
from .zlib_codec import ZlibCodec

__all__ = ["available_codecs", "make_codec", "register_codec"]

_FACTORIES: Dict[str, Callable[[], IntegerCodec]] = {
    "U": U32Codec,
    "U64": U64Codec,
    "V": VByteCodec,
    "Z": ZlibCodec,
    "G": EliasGammaCodec,
    "D": EliasDeltaCodec,
    "S": Simple9Codec,
    "P": PForDeltaCodec,
}


def register_codec(name: str, factory: Callable[[], IntegerCodec]) -> None:
    """Register a new codec under ``name`` (case-insensitive, stored upper)."""
    key = name.upper()
    if key in _FACTORIES:
        raise ValueError(f"codec {name!r} is already registered")
    _FACTORIES[key] = factory


def available_codecs() -> list[str]:
    """Names of all registered codecs."""
    return sorted(_FACTORIES)


def make_codec(name: str) -> IntegerCodec:
    """Instantiate the codec registered under ``name``.

    Raises
    ------
    KeyError
        If no codec with that name exists.
    """
    key = name.upper()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown codec {name!r}; available: {', '.join(available_codecs())}"
        )
    return _FACTORIES[key]()
