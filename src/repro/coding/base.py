"""Codec interfaces shared by all integer and byte-stream codecs.

The paper encodes the position and length streams of each document's RLZ
factorization with one of three schemes: raw unsigned 32-bit integers
(``U``), variable-byte coding (``V``) and per-document zlib (``Z``).  The
future-work section (Section 6) additionally mentions Simple-9 and
PForDelta.  All of them are exposed behind one small interface so the factor
encoder can combine any position codec with any length codec.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..errors import DecodingError

__all__ = ["IntegerCodec", "check_non_negative"]


def check_non_negative(values: Sequence[int], codec_name: str) -> None:
    """Raise :class:`ValueError` when a codec is given a negative integer.

    All codecs in this package encode unsigned integers only; factor
    positions and lengths are non-negative by construction, so a negative
    value always indicates a programming error in the caller.
    """
    for value in values:
        if value < 0:
            raise ValueError(f"{codec_name} cannot encode negative value {value}")


class IntegerCodec(ABC):
    """Encode and decode sequences of unsigned integers to/from bytes."""

    #: Short identifier used by the codec registry and the factor-encoding
    #: scheme names (for example ``"v"`` for vbyte).
    name: str = ""

    @abstractmethod
    def encode(self, values: Sequence[int]) -> bytes:
        """Encode ``values`` into a byte string."""

    @abstractmethod
    def decode(self, data: bytes, count: int) -> list[int]:
        """Decode exactly ``count`` integers from ``data``.

        Implementations must raise :class:`repro.errors.DecodingError` when
        ``data`` is truncated or malformed.
        """

    def decode_all(self, data: bytes) -> list[int]:
        """Decode every integer in ``data`` (only for self-delimiting codecs)."""
        raise DecodingError(
            f"codec {self.name!r} cannot decode without an explicit count"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{self.__class__.__name__}(name={self.name!r})"
