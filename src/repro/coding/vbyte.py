"""Variable-byte (vbyte) integer coding.

vbyte stores an unsigned integer in base 128, one digit per byte, using the
high bit of each byte as a continuation flag: bytes with the high bit clear
are continuation bytes, and the final byte of each codeword has the high bit
set.  Small values therefore occupy a single byte, which is why the paper
uses vbyte for the length stream — Figure 3 shows the vast majority of
factor lengths are small.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..errors import DecodingError
from .base import IntegerCodec, check_non_negative

__all__ = ["VByteCodec", "encode_vbyte", "decode_vbyte"]

_TERMINATOR = 0x80


def encode_vbyte(values: Iterable[int]) -> bytes:
    """Encode an iterable of non-negative integers with vbyte."""
    out = bytearray()
    for value in values:
        if value < 0:
            raise ValueError(f"vbyte cannot encode negative value {value}")
        while value >= 128:
            out.append(value & 0x7F)
            value >>= 7
        out.append(value | _TERMINATOR)
    return bytes(out)


def decode_vbyte(data: bytes, count: int | None = None) -> List[int]:
    """Decode vbyte data into a list of integers.

    Parameters
    ----------
    data:
        The encoded byte string.
    count:
        When given, exactly this many integers are decoded and trailing bytes
        are an error; when ``None`` the whole buffer is decoded.
    """
    values: List[int] = []
    current = 0
    shift = 0
    for byte in data:
        if byte & _TERMINATOR:
            values.append(current | ((byte & 0x7F) << shift))
            current = 0
            shift = 0
            if count is not None and len(values) == count:
                break
        else:
            current |= byte << shift
            shift += 7
    else:
        if shift != 0:
            raise DecodingError("truncated vbyte stream")
        if count is not None and len(values) != count:
            raise DecodingError(
                f"vbyte stream contained {len(values)} values, expected {count}"
            )
    return values


class VByteCodec(IntegerCodec):
    """Codec wrapper around :func:`encode_vbyte` / :func:`decode_vbyte`."""

    name = "v"

    def encode(self, values: Sequence[int]) -> bytes:
        check_non_negative(values, "vbyte")
        return encode_vbyte(values)

    def decode(self, data: bytes, count: int) -> List[int]:
        return decode_vbyte(data, count)

    def decode_all(self, data: bytes) -> List[int]:
        return decode_vbyte(data)
