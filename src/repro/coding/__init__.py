"""Integer and byte-stream codecs used to encode RLZ factor streams.

The paper's pair-coding schemes combine a *position* codec with a *length*
codec:

* ``U`` — raw unsigned 32-bit integers (:class:`repro.coding.fixed.U32Codec`)
* ``V`` — variable-byte coding (:class:`repro.coding.vbyte.VByteCodec`)
* ``Z`` — per-document zlib at best compression
  (:class:`repro.coding.zlib_codec.ZlibCodec`)

Extension codecs implementing the paper's future-work suggestions (Elias
gamma/delta, Simple-9, PForDelta) share the same
:class:`repro.coding.base.IntegerCodec` interface and are exercised by the
coding ablation benchmark.
"""

from .base import IntegerCodec
from .elias import BitReader, BitWriter, EliasDeltaCodec, EliasGammaCodec
from .fixed import FixedWidthCodec, U32Codec, U64Codec
from .pfordelta import PForDeltaCodec
from .registry import available_codecs, make_codec, register_codec
from .simple9 import Simple9Codec
from .vbyte import VByteCodec, decode_vbyte, encode_vbyte
from .zlib_codec import ZlibCodec

__all__ = [
    "BitReader",
    "BitWriter",
    "EliasDeltaCodec",
    "EliasGammaCodec",
    "FixedWidthCodec",
    "IntegerCodec",
    "PForDeltaCodec",
    "Simple9Codec",
    "U32Codec",
    "U64Codec",
    "VByteCodec",
    "ZlibCodec",
    "available_codecs",
    "decode_vbyte",
    "encode_vbyte",
    "make_codec",
    "register_codec",
]
