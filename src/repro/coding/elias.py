"""Elias gamma and delta codes.

These bit-oriented universal codes are not used by the paper's main results
but are classic alternatives for the length stream and are included as
extension codecs for the coding-scheme ablation benchmark (the paper's
Section 6 calls out the space/time trade-off of alternative integer codes as
future work).

Both codes operate on *positive* integers; this module follows the common
convention of encoding ``value + 1`` so that zero-valued lengths (literal
factors) are representable.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import DecodingError
from .base import IntegerCodec, check_non_negative

__all__ = ["EliasGammaCodec", "EliasDeltaCodec", "BitWriter", "BitReader"]


class BitWriter:
    """Accumulate individual bits (most-significant first) into bytes."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current = 0
        self._filled = 0

    def write_bit(self, bit: int) -> None:
        self._current = (self._current << 1) | (bit & 1)
        self._filled += 1
        if self._filled == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, value: int, width: int) -> None:
        """Write ``width`` bits of ``value``, most significant bit first."""
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, count: int) -> None:
        """Write ``count`` zero bits followed by a one bit."""
        for _ in range(count):
            self.write_bit(0)
        self.write_bit(1)

    def getvalue(self) -> bytes:
        """Return the accumulated bits, padding the final byte with zeros."""
        if self._filled == 0:
            return bytes(self._buffer)
        padding = 8 - self._filled
        return bytes(self._buffer + bytes([self._current << padding]))


class BitReader:
    """Read bits (most-significant first) from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0

    def read_bit(self) -> int:
        byte_index, bit_index = divmod(self._position, 8)
        if byte_index >= len(self._data):
            raise DecodingError("bit stream exhausted")
        self._position += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        count = 0
        while self.read_bit() == 0:
            count += 1
        return count


class EliasGammaCodec(IntegerCodec):
    """Elias gamma: unary length prefix followed by the value's low bits."""

    name = "gamma"

    def encode(self, values: Sequence[int]) -> bytes:
        check_non_negative(values, "elias gamma")
        writer = BitWriter()
        for value in values:
            shifted = value + 1
            width = shifted.bit_length() - 1
            writer.write_unary(width)
            if width:
                writer.write_bits(shifted & ((1 << width) - 1), width)
        return writer.getvalue()

    def decode(self, data: bytes, count: int) -> List[int]:
        reader = BitReader(data)
        values: List[int] = []
        for _ in range(count):
            width = reader.read_unary()
            low = reader.read_bits(width) if width else 0
            values.append(((1 << width) | low) - 1)
        return values


class EliasDeltaCodec(IntegerCodec):
    """Elias delta: the bit-width is itself gamma-coded."""

    name = "delta"

    def encode(self, values: Sequence[int]) -> bytes:
        check_non_negative(values, "elias delta")
        writer = BitWriter()
        for value in values:
            shifted = value + 1
            width = shifted.bit_length()
            # gamma-code the width
            width_bits = width.bit_length() - 1
            writer.write_unary(width_bits)
            if width_bits:
                writer.write_bits(width & ((1 << width_bits) - 1), width_bits)
            if width - 1:
                writer.write_bits(shifted & ((1 << (width - 1)) - 1), width - 1)
        return writer.getvalue()

    def decode(self, data: bytes, count: int) -> List[int]:
        reader = BitReader(data)
        values: List[int] = []
        for _ in range(count):
            width_bits = reader.read_unary()
            width_low = reader.read_bits(width_bits) if width_bits else 0
            width = (1 << width_bits) | width_low
            low = reader.read_bits(width - 1) if width - 1 else 0
            values.append(((1 << (width - 1)) | low) - 1)
        return values
