"""Simple-9 word-aligned integer coding (Anh & Moffat, 2005).

Simple-9 packs as many small integers as possible into each 32-bit word: a
4-bit selector chooses one of nine layouts (28 x 1-bit values, 14 x 2-bit,
9 x 3-bit, 7 x 4-bit, 5 x 5-bit, 4 x 7-bit, 3 x 9-bit, 2 x 14-bit or
1 x 28-bit).  The paper's future-work section identifies Simple-9 as a
candidate replacement for vbyte in the length stream; this implementation is
used by the coding ablation benchmark.

Values must fit in 28 bits.  Values that do not (rare for factor lengths,
possible for positions in very large dictionaries) should be encoded with a
different codec; the encoder raises :class:`ValueError` for them.
"""

from __future__ import annotations

from typing import List, Sequence

import struct

from ..errors import DecodingError
from .base import IntegerCodec, check_non_negative

__all__ = ["Simple9Codec"]

# (number of values per word, bits per value) for each selector, in order of
# decreasing packing density.
_LAYOUTS = [
    (28, 1),
    (14, 2),
    (9, 3),
    (7, 4),
    (5, 5),
    (4, 7),
    (3, 9),
    (2, 14),
    (1, 28),
]

_MAX_VALUE = (1 << 28) - 1


class Simple9Codec(IntegerCodec):
    """Word-aligned Simple-9 coding of unsigned integers below 2^28."""

    name = "s9"

    def encode(self, values: Sequence[int]) -> bytes:
        check_non_negative(values, "simple9")
        for value in values:
            if value > _MAX_VALUE:
                raise ValueError(f"simple9 cannot encode {value} (>= 2^28)")
        words: List[int] = []
        index = 0
        total = len(values)
        while index < total:
            # Pick the densest layout whose slot count is fully available and
            # whose bit width fits every value in the run; the 1 x 28-bit
            # layout always qualifies, so a layout is always found.
            for selector, (count, bits) in enumerate(_LAYOUTS):
                chunk = values[index : index + count]
                if len(chunk) == count and all(v < (1 << bits) for v in chunk):
                    word = selector << 28
                    for offset, value in enumerate(chunk):
                        word |= value << (offset * bits)
                    words.append(word)
                    index += count
                    break
        header = struct.pack("<I", total)
        return header + struct.pack(f"<{len(words)}I", *words)

    def decode(self, data: bytes, count: int) -> List[int]:
        values = self.decode_all(data)
        if len(values) < count:
            raise DecodingError(
                f"simple9 stream contained {len(values)} values, expected {count}"
            )
        return values[:count]

    def decode_all(self, data: bytes) -> List[int]:
        if len(data) < 4 or (len(data) - 4) % 4:
            raise DecodingError("simple9 stream length must be a multiple of 4")
        (total,) = struct.unpack_from("<I", data, 0)
        word_count = (len(data) - 4) // 4
        words = struct.unpack_from(f"<{word_count}I", data, 4)
        values: List[int] = []
        for word in words:
            selector = word >> 28
            if selector >= len(_LAYOUTS):
                raise DecodingError(f"invalid simple9 selector {selector}")
            count, bits = _LAYOUTS[selector]
            mask = (1 << bits) - 1
            for offset in range(count):
                if len(values) == total:
                    break
                values.append((word >> (offset * bits)) & mask)
        if len(values) != total:
            raise DecodingError("truncated simple9 stream")
        return values
