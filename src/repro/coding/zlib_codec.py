"""zlib-backed integer codec (the paper's ``Z`` scheme).

Section 3.4 observes that although positions look uniformly distributed over
the whole collection, *within a document* they are highly skewed (documents
repeat their own substrings, which factorize into identical pairs), so
compressing the per-document position stream with zlib gives a significant
boost.  The same holds for lengths.  This codec serialises the integer
sequence with an inner codec (vbyte by default, or fixed-width) and deflates
the result with ``zlib`` at best compression, exactly as the paper's ``Z``
pair coding does.
"""

from __future__ import annotations

import zlib
from typing import List, Sequence

from ..errors import DecodingError
from .base import IntegerCodec
from .fixed import U32Codec
from .vbyte import VByteCodec

__all__ = ["ZlibCodec"]


class ZlibCodec(IntegerCodec):
    """Deflate an integer stream serialised by an inner codec.

    Parameters
    ----------
    inner:
        Codec used to serialise the integers before compression.  The paper
        compresses the raw 32-bit position words; vbyte pre-serialisation is
        also supported and is slightly smaller for the length stream.
    level:
        zlib compression level (9, "best compression", matches the paper).
    """

    name = "z"

    def __init__(self, inner: IntegerCodec | None = None, level: int = 9) -> None:
        self._inner = inner if inner is not None else U32Codec()
        if not 0 <= level <= 9:
            raise ValueError(f"invalid zlib level: {level}")
        self._level = level
        self.name = f"z[{self._inner.name}]" if inner is not None else "z"

    @property
    def inner(self) -> IntegerCodec:
        """The codec used to serialise integers before deflation."""
        return self._inner

    def encode(self, values: Sequence[int]) -> bytes:
        return zlib.compress(self._inner.encode(values), self._level)

    def decode(self, data: bytes, count: int) -> List[int]:
        try:
            raw = zlib.decompress(data)
        except zlib.error as exc:
            raise DecodingError(f"corrupt zlib stream: {exc}") from exc
        return self._inner.decode(raw, count)

    def decode_all(self, data: bytes) -> List[int]:
        try:
            raw = zlib.decompress(data)
        except zlib.error as exc:
            raise DecodingError(f"corrupt zlib stream: {exc}") from exc
        return self._inner.decode_all(raw)


def make_zlib_vbyte_codec(level: int = 9) -> ZlibCodec:
    """Convenience constructor: zlib over a vbyte-serialised stream."""
    return ZlibCodec(inner=VByteCodec(), level=level)
