"""Fixed-width unsigned integer coding (the paper's ``U`` scheme).

The paper's first factor-encoding variant stores every position as a raw
unsigned 32-bit little-endian integer on the assumption that positions are
spread uniformly over the dictionary and therefore incompressible.  A
64-bit variant is provided for dictionaries larger than 4 GiB; the RLZ
encoder selects the width automatically from the dictionary length.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

from ..errors import DecodingError
from .base import IntegerCodec, check_non_negative

__all__ = ["FixedWidthCodec", "U32Codec", "U64Codec"]


class FixedWidthCodec(IntegerCodec):
    """Encode integers as fixed-width little-endian words."""

    def __init__(self, width: int) -> None:
        if width not in (1, 2, 4, 8):
            raise ValueError(f"unsupported fixed width: {width}")
        self._width = width
        self._format = {1: "B", 2: "H", 4: "I", 8: "Q"}[width]
        self._max = (1 << (8 * width)) - 1
        self.name = f"u{8 * width}"

    @property
    def width(self) -> int:
        """Number of bytes used per integer."""
        return self._width

    def encode(self, values: Sequence[int]) -> bytes:
        check_non_negative(values, self.name)
        for value in values:
            if value > self._max:
                raise ValueError(
                    f"value {value} does not fit in {8 * self._width} bits"
                )
        return struct.pack(f"<{len(values)}{self._format}", *values)

    def decode(self, data: bytes, count: int) -> List[int]:
        expected = count * self._width
        if len(data) < expected:
            raise DecodingError(
                f"fixed-width stream too short: {len(data)} bytes, expected {expected}"
            )
        return list(struct.unpack_from(f"<{count}{self._format}", data))

    def decode_all(self, data: bytes) -> List[int]:
        if len(data) % self._width:
            raise DecodingError("fixed-width stream length is not a multiple of width")
        return self.decode(data, len(data) // self._width)


class U32Codec(FixedWidthCodec):
    """Unsigned 32-bit integers — the paper's ``U`` position coding."""

    def __init__(self) -> None:
        super().__init__(4)
        self.name = "u"


class U64Codec(FixedWidthCodec):
    """Unsigned 64-bit integers, for dictionaries above 4 GiB."""

    def __init__(self) -> None:
        super().__init__(8)
        self.name = "u64"
