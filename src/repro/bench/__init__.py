"""Benchmark harness: regenerate every table and figure of the evaluation.

See DESIGN.md section 4 for the experiment index.  The main entry points are

* :func:`repro.bench.harness.run_all` — run everything and write a report;
* :func:`repro.bench.harness.run_experiment` — run one experiment by id;
* the individual experiment functions in :mod:`repro.bench.experiments`.
"""

from .corpora import gov_collection, gov_collection_url_sorted, wiki_collection
from .experiments import (
    acceleration_ablation_table,
    baseline_retrieval_table,
    codec_ablation_table,
    dictionary_statistics_table,
    dynamic_update_table,
    length_histogram_figure,
    pruning_ablation_table,
    rlz_retrieval_table,
    sampling_policy_ablation_table,
)
from .fastpath import fastpath_benchmark, vectorized_benchmark
from .harness import EXPERIMENTS, run_all, run_experiment
from .cluster import cluster_benchmark
from .loadgen import LOAD_SCALES, LoadScale, load_benchmark, load_scale
from .network import network_benchmark
from .reporting import ResultTable
from .retrieval import RetrievalMeasurement, measure_retrieval
from .scale import BenchScale, current_scale
from .serving import serving_benchmark

__all__ = [
    "BenchScale",
    "EXPERIMENTS",
    "LOAD_SCALES",
    "LoadScale",
    "ResultTable",
    "RetrievalMeasurement",
    "acceleration_ablation_table",
    "baseline_retrieval_table",
    "codec_ablation_table",
    "current_scale",
    "dictionary_statistics_table",
    "dynamic_update_table",
    "fastpath_benchmark",
    "gov_collection",
    "gov_collection_url_sorted",
    "length_histogram_figure",
    "load_benchmark",
    "load_scale",
    "measure_retrieval",
    "cluster_benchmark",
    "network_benchmark",
    "pruning_ablation_table",
    "rlz_retrieval_table",
    "run_all",
    "run_experiment",
    "sampling_policy_ablation_table",
    "serving_benchmark",
    "vectorized_benchmark",
    "wiki_collection",
]
