"""Benchmark scaling configuration.

The paper's collections are hundreds of gigabytes; the reproduction runs on
synthetic collections of a few megabytes.  All experiment code reads its
sizes from a :class:`BenchScale` so the whole suite can be scaled up or down
with one environment variable:

``REPRO_BENCH_SCALE`` = ``tiny`` | ``small`` (default) | ``medium`` | ``large``

The paper's dictionary-size labels (0.5 GB / 1.0 GB / 2.0 GB on a 426 GB
collection) are mapped to dictionary sizes proportional to the scaled
collection.  Because the synthetic collection is ~5 orders of magnitude
smaller, the dictionary must be a larger *fraction* of it to hold a
comparable diversity of boilerplate templates; what is preserved is the
ordering (larger dictionary => better compression) and the fact that the
dictionary remains a small fraction of the collection and fits comfortably
in memory.  EXPERIMENTS.md discusses this scaling in detail.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Sequence

__all__ = ["BenchScale", "current_scale", "PAPER_DICTIONARY_LABELS", "PAPER_SAMPLE_SIZES"]

#: Dictionary-size labels used in the paper's Tables 2-5 and 8 (gigabytes).
PAPER_DICTIONARY_LABELS: Sequence[str] = ("2.0", "1.0", "0.5")

#: Sample sizes used in the paper's Tables 2-3 (kilobytes).
PAPER_SAMPLE_SIZES: Sequence[float] = (0.5, 1.0, 2.0, 5.0)


@dataclass(frozen=True)
class BenchScale:
    """Sizes used by the benchmark suite at one scale setting."""

    name: str
    gov_documents: int
    gov_document_size: int
    wiki_documents: int
    wiki_document_size: int
    #: Mapping from the paper's dictionary label (GB) to bytes at this scale.
    dictionary_sizes: Dict[str, int] = field(default_factory=dict)
    #: Number of requests per access pattern (the paper uses 100,000).
    num_requests: int = 1000
    #: Number of synthetic queries behind the query-log pattern.
    num_queries: int = 400
    #: Block sizes (MB) for the blocked baselines.
    block_sizes_mb: Sequence[float] = (0.0, 0.1, 0.2, 0.5, 1.0)
    #: Sample size (bytes) used for dictionaries unless a table varies it.
    default_sample_size: int = 1024

    @property
    def gov_total_size(self) -> int:
        """Approximate GOV2-like collection size in bytes."""
        return self.gov_documents * self.gov_document_size

    @property
    def wiki_total_size(self) -> int:
        """Approximate Wikipedia-like collection size in bytes."""
        return self.wiki_documents * self.wiki_document_size


_SCALES: Dict[str, BenchScale] = {
    "tiny": BenchScale(
        name="tiny",
        gov_documents=80,
        gov_document_size=18 * 1024,
        wiki_documents=32,
        wiki_document_size=45 * 1024,
        dictionary_sizes={"2.0": 192 * 1024, "1.0": 96 * 1024, "0.5": 48 * 1024},
        num_requests=400,
        num_queries=150,
    ),
    "small": BenchScale(
        name="small",
        gov_documents=140,
        gov_document_size=18 * 1024,
        wiki_documents=60,
        wiki_document_size=45 * 1024,
        dictionary_sizes={"2.0": 256 * 1024, "1.0": 128 * 1024, "0.5": 64 * 1024},
        num_requests=1000,
        num_queries=300,
    ),
    "medium": BenchScale(
        name="medium",
        gov_documents=500,
        gov_document_size=18 * 1024,
        wiki_documents=200,
        wiki_document_size=45 * 1024,
        dictionary_sizes={"2.0": 768 * 1024, "1.0": 384 * 1024, "0.5": 192 * 1024},
        num_requests=5000,
        num_queries=1000,
    ),
    "large": BenchScale(
        name="large",
        gov_documents=1800,
        gov_document_size=18 * 1024,
        wiki_documents=700,
        wiki_document_size=45 * 1024,
        dictionary_sizes={"2.0": 2 * 1024 * 1024, "1.0": 1024 * 1024, "0.5": 512 * 1024},
        num_requests=20000,
        num_queries=4000,
    ),
}


def current_scale() -> BenchScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default ``small``)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small").strip().lower()
    if name not in _SCALES:
        valid = ", ".join(sorted(_SCALES))
        raise ValueError(f"unknown REPRO_BENCH_SCALE {name!r}; valid values: {valid}")
    return _SCALES[name]
