"""Experiment implementations: one function per table / figure in the paper.

Every function returns a :class:`repro.bench.reporting.ResultTable` whose
rows mirror the corresponding table in the paper (same row identities, same
column meanings), measured on the synthetic collections at the current
:class:`repro.bench.scale.BenchScale`.  The benchmark scripts under
``benchmarks/`` are thin wrappers that call these functions, print the
tables and record timings; EXPERIMENTS.md records the paper-vs-measured
comparison for each.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..baselines import build_ascii_baseline, build_blocked_baseline
from ..core import (
    DictionaryConfig,
    DictionaryUsage,
    FactorStatistics,
    PAPER_SCHEMES,
    PairEncoder,
    RlzFactorizer,
    build_dictionary,
    simulate_prefix_dictionaries,
)
from ..core.compressor import CompressedCollection, CompressedDocument
from ..corpus.document import DocumentCollection
from ..search import AccessPatterns
from ..storage import BlockedStore, RawStore, RlzStore
from .reporting import ResultTable
from .retrieval import measure_retrieval
from .scale import BenchScale, PAPER_DICTIONARY_LABELS, PAPER_SAMPLE_SIZES, current_scale

__all__ = [
    "dictionary_statistics_table",
    "length_histogram_figure",
    "rlz_retrieval_table",
    "baseline_retrieval_table",
    "dynamic_update_table",
    "acceleration_ablation_table",
    "codec_ablation_table",
    "sampling_policy_ablation_table",
    "pruning_ablation_table",
]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _factorize_collection(collection: DocumentCollection, dictionary) -> tuple:
    """Factorize every document; return (factorizations, stats, usage)."""
    factorizer = RlzFactorizer(dictionary)
    stats = FactorStatistics()
    usage = DictionaryUsage(dictionary)
    factorizations = []
    for document in collection:
        factorization = factorizer.factorize(document.content)
        factorizations.append(factorization)
        stats.add(factorization)
        usage.add(factorization)
    return factorizations, stats, usage


def _encode_collection(
    collection: DocumentCollection,
    dictionary,
    factorizations,
    scheme: str,
) -> CompressedCollection:
    """Encode pre-computed factorizations under ``scheme``."""
    encoder = PairEncoder(scheme)
    documents = [
        CompressedDocument(
            doc_id=document.doc_id,
            data=encoder.encode(factorization),
            original_size=document.size,
        )
        for document, factorization in zip(collection, factorizations)
    ]
    return CompressedCollection(
        dictionary=dictionary,
        scheme_name=scheme,
        documents=documents,
        collection_name=collection.name,
    )


def _workdir(output_dir: Optional[str | Path]) -> Path:
    if output_dir is None:
        return Path(tempfile.mkdtemp(prefix="repro-bench-"))
    path = Path(output_dir)
    path.mkdir(parents=True, exist_ok=True)
    return path


# ----------------------------------------------------------------------
# Tables 2 and 3: dictionary statistics
# ----------------------------------------------------------------------
def dictionary_statistics_table(
    collection: DocumentCollection,
    title: str,
    scale: Optional[BenchScale] = None,
    dictionary_labels: Sequence[str] = PAPER_DICTIONARY_LABELS,
    sample_sizes_kb: Sequence[float] = PAPER_SAMPLE_SIZES,
) -> ResultTable:
    """Average factor length and unused dictionary bytes (Tables 2 / 3).

    The paper's grid is dictionary size {2.0, 1.0, 0.5} GB x sample size
    {0.5, 1, 2, 5} KB; the scaled dictionary sizes come from the current
    benchmark scale.
    """
    scale = scale or current_scale()
    table = ResultTable(
        title=title,
        headers=["Size (label GB)", "Dict bytes", "Samp. (KB)", "Avg.Fact.", "Unused (%)"],
    )
    for label in dictionary_labels:
        dictionary_size = scale.dictionary_sizes[label]
        for sample_kb in sample_sizes_kb:
            config = DictionaryConfig(
                size=dictionary_size, sample_size=max(64, int(sample_kb * 1024))
            )
            dictionary = build_dictionary(collection, config)
            _, stats, usage = _factorize_collection(collection, dictionary)
            table.add_row(
                label,
                len(dictionary),
                sample_kb,
                stats.average_factor_length,
                usage.unused_percentage,
            )
    table.add_note(f"collection: {collection.name}, {collection.total_size:,} bytes")
    return table


# ----------------------------------------------------------------------
# Figure 3: histogram of encoded length values
# ----------------------------------------------------------------------
def length_histogram_figure(
    collection: DocumentCollection,
    scale: Optional[BenchScale] = None,
    sample_sizes: Sequence[int] = (512, 1024, 2048, 5120, 10240),
    dictionary_label: str = "0.5",
) -> ResultTable:
    """Frequency histogram of length values per sample period (Figure 3)."""
    scale = scale or current_scale()
    dictionary_size = scale.dictionary_sizes[dictionary_label]
    bins = ["literal", "[1, 10)", "[10, 100)", "[100, 1000)", "[1000, 10000)", ">= 10000"]
    table = ResultTable(
        title="Figure 3: frequency of encoded length values by sample period",
        headers=["Sample"] + bins,
    )
    for sample_size in sample_sizes:
        config = DictionaryConfig(size=dictionary_size, sample_size=sample_size)
        dictionary = build_dictionary(collection, config)
        _, stats, _ = _factorize_collection(collection, dictionary)
        counts = {label: 0 for label in bins}
        for length, count in stats.length_counts.items():
            if length == 0:
                counts["literal"] += count
            elif length < 10:
                counts["[1, 10)"] += count
            elif length < 100:
                counts["[10, 100)"] += count
            elif length < 1000:
                counts["[100, 1000)"] += count
            elif length < 10000:
                counts["[1000, 10000)"] += count
            else:
                counts[">= 10000"] += count
        label = f"{sample_size}B" if sample_size < 1024 else f"{sample_size // 1024}KB"
        table.add_row(label, *[counts[bin_label] for bin_label in bins])
    table.add_note(
        "paper shape: the bulk of length values is small irrespective of sample period"
    )
    return table


# ----------------------------------------------------------------------
# Tables 4, 5, 8: rlz compression and retrieval speed
# ----------------------------------------------------------------------
def rlz_retrieval_table(
    collection: DocumentCollection,
    title: str,
    scale: Optional[BenchScale] = None,
    schemes: Sequence[str] = PAPER_SCHEMES,
    dictionary_labels: Sequence[str] = PAPER_DICTIONARY_LABELS,
    output_dir: Optional[str | Path] = None,
    patterns: Optional[AccessPatterns] = None,
) -> ResultTable:
    """Enc %, sequential and query-log docs/sec for rlz (Tables 4, 5, 8)."""
    scale = scale or current_scale()
    workdir = _workdir(output_dir)
    patterns = patterns or AccessPatterns(
        collection, num_requests=scale.num_requests, num_queries=scale.num_queries
    )
    sequential = patterns.sequential
    query_log = patterns.query_log

    table = ResultTable(
        title=title,
        headers=["Size (label GB)", "Pos-Len", "Enc. (%)", "Sequential", "Query Log"],
    )
    for label in dictionary_labels:
        dictionary_size = scale.dictionary_sizes[label]
        config = DictionaryConfig(
            size=dictionary_size, sample_size=scale.default_sample_size
        )
        dictionary = build_dictionary(collection, config)
        factorizations, _, _ = _factorize_collection(collection, dictionary)
        for scheme in schemes:
            compressed = _encode_collection(collection, dictionary, factorizations, scheme)
            path = workdir / f"rlz-{collection.name}-{label}-{scheme}.repro"
            RlzStore.write(compressed, path)
            with RlzStore.open(path) as store:
                sequential_rate = measure_retrieval(store, sequential).docs_per_second
                query_rate = measure_retrieval(store, query_log).docs_per_second
                encoding_percent = store.compression_percent(include_dictionary=False)
            table.add_row(label, scheme, encoding_percent, sequential_rate, query_rate)
    table.add_note(
        "Enc. (%) excludes the shared dictionary; see EXPERIMENTS.md for the scaling note"
    )
    table.add_note(f"requests per pattern: {len(sequential)}")
    return table


# ----------------------------------------------------------------------
# Tables 6, 7, 9: baseline compression and retrieval speed
# ----------------------------------------------------------------------
def baseline_retrieval_table(
    collection: DocumentCollection,
    title: str,
    scale: Optional[BenchScale] = None,
    compressors: Sequence[str] = ("zlib", "lzma"),
    output_dir: Optional[str | Path] = None,
    patterns: Optional[AccessPatterns] = None,
) -> ResultTable:
    """Enc %, sequential and query-log docs/sec for the baselines (Tables 6, 7, 9)."""
    scale = scale or current_scale()
    workdir = _workdir(output_dir)
    patterns = patterns or AccessPatterns(
        collection, num_requests=scale.num_requests, num_queries=scale.num_queries
    )
    sequential = patterns.sequential
    query_log = patterns.query_log

    table = ResultTable(
        title=title,
        headers=["Alg.", "Block (MB)", "Enc. (%)", "Sequential", "Query Log"],
    )

    ascii_path = build_ascii_baseline(collection, workdir / f"ascii-{collection.name}.repro")
    with RawStore.open(ascii_path) as store:
        table.add_row(
            "ascii",
            "-",
            100.0,
            measure_retrieval(store, sequential).docs_per_second,
            measure_retrieval(store, query_log).docs_per_second,
        )

    for compressor in compressors:
        for block_mb in scale.block_sizes_mb:
            path = workdir / f"{compressor}-{collection.name}-{block_mb}.repro"
            build_blocked_baseline(collection, path, compressor, block_mb)
            with BlockedStore.open(path) as store:
                table.add_row(
                    compressor,
                    f"{block_mb:.1f}",
                    store.compression_percent(),
                    measure_retrieval(store, sequential).docs_per_second,
                    measure_retrieval(store, query_log).docs_per_second,
                )
    table.add_note(f"requests per pattern: {len(sequential)}")
    return table


# ----------------------------------------------------------------------
# Table 10: dynamic updates via prefix dictionaries
# ----------------------------------------------------------------------
def dynamic_update_table(
    collection: DocumentCollection,
    scale: Optional[BenchScale] = None,
    dictionary_label: str = "1.0",
    scheme: str = "ZZ",
    prefixes: Sequence[float] = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.01),
) -> ResultTable:
    """Compression with dictionaries built from collection prefixes (Table 10)."""
    scale = scale or current_scale()
    dictionary_size = scale.dictionary_sizes[dictionary_label]
    results = simulate_prefix_dictionaries(
        collection,
        dictionary_size=dictionary_size,
        sample_size=scale.default_sample_size,
        prefixes=prefixes,
        scheme=scheme,
    )
    table = ResultTable(
        title=f"Table 10: {scheme} compression with prefix-built dictionaries "
        f"({collection.name})",
        headers=["Prefix %", "Encoding %"],
    )
    for result in results:
        table.add_row(result.prefix_percent, result.compression_percent)
    table.add_note("encoding % includes the dictionary, as a fixed additive cost per row")
    return table


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------
def acceleration_ablation_table(
    collection: DocumentCollection,
    scale: Optional[BenchScale] = None,
    dictionary_label: str = "0.5",
    sample_documents: int = 12,
) -> ResultTable:
    """Accelerated vs faithful factorization: identical parses, different speed."""
    import time

    scale = scale or current_scale()
    config = DictionaryConfig(
        size=scale.dictionary_sizes[dictionary_label],
        sample_size=scale.default_sample_size,
    )
    documents = [collection[i].content for i in range(min(sample_documents, len(collection)))]

    table = ResultTable(
        title="Ablation: 8-byte-key acceleration of the factorizer",
        headers=["Mode", "Docs", "Factors", "Seconds", "MB/s"],
    )
    parses = {}
    for mode, accelerated in (("accelerated", True), ("faithful", False)):
        dictionary = build_dictionary(collection, config, accelerated=accelerated)
        factorizer = RlzFactorizer(dictionary)
        start = time.perf_counter()
        factorizations = [factorizer.factorize(document) for document in documents]
        elapsed = time.perf_counter() - start
        total_bytes = sum(len(document) for document in documents)
        parses[mode] = [[f.length for f in fz] for fz in factorizations]
        table.add_row(
            mode,
            len(documents),
            sum(len(fz) for fz in factorizations),
            elapsed,
            total_bytes / elapsed / 1e6 if elapsed else 0.0,
        )
    identical = parses["accelerated"] == parses["faithful"]
    table.add_note(f"parses identical across modes: {identical}")
    return table


def codec_ablation_table(
    collection: DocumentCollection,
    scale: Optional[BenchScale] = None,
    dictionary_label: str = "1.0",
    schemes: Sequence[str] = ("ZZ", "ZV", "UZ", "UV", "UG", "UD", "US", "UP", "VV"),
) -> ResultTable:
    """Factor-stream size under the paper's and the future-work codecs."""
    scale = scale or current_scale()
    config = DictionaryConfig(
        size=scale.dictionary_sizes[dictionary_label],
        sample_size=scale.default_sample_size,
    )
    dictionary = build_dictionary(collection, config)
    factorizations, _, _ = _factorize_collection(collection, dictionary)
    original = collection.total_size
    table = ResultTable(
        title="Ablation: pair-coding schemes (including Section 6 future-work codecs)",
        headers=["Scheme", "Encoded bytes", "Enc. (%)"],
    )
    for scheme in schemes:
        compressed = _encode_collection(collection, dictionary, factorizations, scheme)
        table.add_row(
            scheme,
            compressed.encoded_size,
            100.0 * compressed.encoded_size / original,
        )
    return table


def pruning_ablation_table(
    collection: DocumentCollection,
    scale: Optional[BenchScale] = None,
    dictionary_label: str = "1.0",
    scheme: str = "ZV",
    passes: int = 2,
) -> ResultTable:
    """Single-pass sampling vs iterative prune-and-resample (Section 6 idea)."""
    from ..core import iterative_resample
    from ..core.dictionary import RlzDictionary

    scale = scale or current_scale()
    config = DictionaryConfig(
        size=scale.dictionary_sizes[dictionary_label],
        sample_size=scale.default_sample_size,
    )
    table = ResultTable(
        title="Ablation: dictionary pruning / iterative resampling (Section 6 future work)",
        headers=["Dictionary", "Dict bytes", "Avg.Fact.", "Unused (%)", "Enc. (%)"],
    )

    def add_row(label: str, dictionary: "RlzDictionary") -> None:
        factorizations, stats, usage = _factorize_collection(collection, dictionary)
        compressed = _encode_collection(collection, dictionary, factorizations, scheme)
        table.add_row(
            label,
            len(dictionary),
            stats.average_factor_length,
            usage.unused_percentage,
            100.0 * compressed.encoded_size / collection.total_size,
        )

    add_row("single-pass (paper)", build_dictionary(collection, config))
    resampled, reports = iterative_resample(collection, config, passes=passes)
    add_row(f"resampled x{len(reports)}", resampled)
    table.add_note(
        "resampling removes unused dictionary runs and refills them with new samples"
    )
    return table


def sampling_policy_ablation_table(
    collection: DocumentCollection,
    scale: Optional[BenchScale] = None,
    dictionary_label: str = "1.0",
    scheme: str = "ZV",
) -> ResultTable:
    """Uniform interval sampling vs whole-document random sampling."""
    scale = scale or current_scale()
    size = scale.dictionary_sizes[dictionary_label]
    table = ResultTable(
        title="Ablation: dictionary sampling policy",
        headers=["Policy", "Dict bytes", "Avg.Fact.", "Unused (%)", "Enc. (%)"],
    )
    for policy in ("uniform", "random_documents"):
        config = DictionaryConfig(
            size=size,
            sample_size=scale.default_sample_size,
            policy=policy,
            seed=3,
        )
        dictionary = build_dictionary(collection, config)
        factorizations, stats, usage = _factorize_collection(collection, dictionary)
        compressed = _encode_collection(collection, dictionary, factorizations, scheme)
        table.add_row(
            policy,
            len(dictionary),
            stats.average_factor_length,
            usage.unused_percentage,
            100.0 * compressed.encoded_size / collection.total_size,
        )
    return table
