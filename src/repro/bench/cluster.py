"""Cluster-serving benchmark: pipelining and shard fan-out vs PR 4's loop.

Two questions, one experiment:

1. **Does pipelining pay?**  The same shuffled repeated-access query log
   runs over *one* connection twice — as PR 4's strict request/response
   loop (protocol v1: one request in flight, a full round trip each) and
   as a protocol-v2 pipelined window (:meth:`RlzClient.pipelined_get`).
   The v1 loop is the 1-socket-client shape the ROADMAP flags at ~0.4x
   local; the pipelined loop keeps a window of requests in flight so the
   per-request round-trip largely vanishes.

2. **Does fan-out scale?**  The same log replays through a
   :class:`ClusterClient` over 1, 2 and 4 replica servers (consistent-
   hash routing, one pipelined batch per shard, ordered fan-in).

Every pipeline's output is byte-verified against the corpus, and a JSON
record (``"benchmark": "fastpath-cluster"``) is appended to the same
history as the other fast-path experiments; the frozen seed baselines in
:mod:`repro.bench.fastpath` are untouched.
"""

from __future__ import annotations

import random
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Sequence

from ..api import (
    ArchiveConfig,
    CacheSpec,
    DictionarySpec,
    EncodingSpec,
    RlzArchive,
    ServeSpec,
)
from ..corpus.document import DocumentCollection
from ..serve import BackgroundServer, ClusterClient, RlzClient
from .corpora import gov_collection
from .fastpath import _append_json_record
from .reporting import ResultTable
from .scale import BenchScale, current_scale

__all__ = ["cluster_benchmark"]


def cluster_benchmark(
    collection: Optional[DocumentCollection] = None,
    scale: Optional[BenchScale] = None,
    dictionary_label: str = "1.0",
    scheme: str = "ZZ",
    shard_counts: Sequence[int] = (1, 2, 4),
    serving_repeats: int = 2,
    cache_capacity: int = 128,
    pipeline_window: int = 32,
    output_json: Optional[str | Path] = None,
) -> ResultTable:
    """Measure pipelined and sharded serving against the v1 loop.

    Builds one archive in a temporary directory, replays the shuffled log
    through (a) a protocol-v1 request/response loop on one connection,
    (b) a protocol-v2 pipelined window on one connection, and (c) a
    :class:`ClusterClient` over 1/2/4 replica servers; byte-verifies every
    pipeline and optionally appends a machine-readable record to
    ``output_json``.
    """
    scale = scale or current_scale()
    collection = collection if collection is not None else gov_collection(scale)
    contents = {document.doc_id: document.content for document in collection}

    config = ArchiveConfig(
        dictionary=DictionarySpec(
            size=scale.dictionary_sizes[dictionary_label],
            sample_size=scale.default_sample_size,
        ),
        encoding=EncodingSpec(scheme=scheme),
        cache=CacheSpec(tier="lru", capacity=cache_capacity),
        serve=ServeSpec(),
    )

    doc_ids = sorted(contents)
    access_log = doc_ids * serving_repeats
    random.Random(0).shuffle(access_log)
    requests = len(access_log)
    serving_bytes = sum(len(contents[doc_id]) for doc_id in access_log)
    expected = [contents[doc_id] for doc_id in access_log]
    verified = {}

    def rate(elapsed: float) -> float:
        return requests / elapsed if elapsed > 0 else 0.0

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cluster.rlz"
        RlzArchive.build(collection, config, path).close()

        # -- one server: v1 request/response vs v2 pipelined, 1 conn ------
        with BackgroundServer(path, config) as server:
            host, port = server.address
            with RlzClient(host, port, protocol_version=1, pool_size=1) as v1:
                start = time.perf_counter()
                served_v1 = [v1.get(doc_id) for doc_id in access_log]
                v1_elapsed = time.perf_counter() - start
            verified["v1_identical"] = served_v1 == expected

            with RlzClient(host, port, pool_size=1) as v2:
                start = time.perf_counter()
                served_v2 = v2.pipelined_get(access_log, window=pipeline_window)
                v2_elapsed = time.perf_counter() - start
            verified["pipelined_identical"] = served_v2 == expected

        # -- shard fan-out: ClusterClient over N replica servers ----------
        shard_runs = []
        for shards in shard_counts:
            servers = [BackgroundServer(path, config) for _ in range(shards)]
            try:
                endpoints = []
                for background in servers:
                    server_host, server_port = background.start()
                    endpoints.append(f"{server_host}:{server_port}")
                with ClusterClient(
                    endpoints, pipeline_window=pipeline_window
                ) as cluster:
                    start = time.perf_counter()
                    served = cluster.get_many(access_log)
                    elapsed = time.perf_counter() - start
                verified[f"cluster_{shards}_identical"] = served == expected
                shard_runs.append((shards, elapsed))
            finally:
                for background in servers:
                    try:
                        background.stop()
                    except Exception:
                        pass

    speedup = v1_elapsed / v2_elapsed if v2_elapsed > 0 else 0.0
    table = ResultTable(
        title="Cluster serving: pipelining and shard fan-out vs request/response",
        headers=["Pipeline", "Seconds", "Requests/s", "Relative to v1 loop"],
    )
    table.add_row("serve/v1-request-response-1-conn", v1_elapsed, rate(v1_elapsed), 1.0)
    table.add_row(
        "serve/v2-pipelined-1-conn", v2_elapsed, rate(v2_elapsed), speedup
    )
    runs_json = []
    for shards, elapsed in shard_runs:
        table.add_row(
            f"serve/cluster-{shards}-shards",
            elapsed,
            rate(elapsed),
            v1_elapsed / elapsed if elapsed > 0 else 0.0,
        )
        runs_json.append(
            {
                "shards": shards,
                "seconds": elapsed,
                "requests_per_s": rate(elapsed),
                "relative_to_v1": v1_elapsed / elapsed if elapsed > 0 else 0.0,
            }
        )

    all_ok = all(verified.values())
    table.add_note(f"served bytes verified against corpus: {all_ok}")
    table.add_note(
        f"pipelined 1-conn speedup over v1 request/response: {speedup:.2f}x "
        f"(window {pipeline_window})"
    )
    table.add_note(
        f"query log: {requests} requests over {len(doc_ids)} documents "
        f"(x{serving_repeats}), {serving_bytes:,} bytes served per pipeline"
    )

    if output_json is not None:
        record = {
            "benchmark": "fastpath-cluster",
            "scale": scale.name,
            "collection": collection.name,
            "documents": len(doc_ids),
            "requests": requests,
            "serving_repeats": serving_repeats,
            "bytes_served": serving_bytes,
            "scheme": scheme,
            "cache_capacity": cache_capacity,
            "pipeline_window": pipeline_window,
            "serve": {
                "v1_seconds": v1_elapsed,
                "v1_requests_per_s": rate(v1_elapsed),
                "pipelined_seconds": v2_elapsed,
                "pipelined_requests_per_s": rate(v2_elapsed),
                "pipelined_speedup": speedup,
                "cluster_runs": runs_json,
            },
            "verified": verified,
        }
        json_path = _append_json_record(output_json, record)
        table.add_note(f"JSON record appended to {json_path}")

    return table
