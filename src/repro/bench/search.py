"""Search-serving benchmark: ranked retrieval over the compressed archive.

The paper's motivating workload is a retrieval system serving queries
*from* its compressed crawl.  This experiment measures the whole serving
chain introduced with the SEARCH opcode, against the in-memory index the
repository has always had:

* **search/local-memory** — :class:`repro.search.InvertedIndex` ranking
  in-process (the baseline every other leg must agree with exactly);
* **search/local-postings** — the persistent
  :class:`repro.search.serving.PostingsStore` sidecar ranking in-process
  (what a server loads from disk);
* **search/served-1** — the same queries over a socket against one
  server (``SEARCH`` opcode, no snippets);
* **search/served-1-snippets** — served with query-biased snippet
  windows, decoded via :meth:`repro.storage.RlzStore.get_window`;
* **search/sharded-4** — a 4-way partitioned fleet behind a
  :class:`ClusterClient`: stats-exchange leg, per-shard scoring against
  global statistics, top-k merge.

Every ranked leg is verified hit-for-hit (ids, scores, order) against
the in-memory baseline — the sharded fan-out's exactness claim is
checked, not assumed — and the snippet economics (bytes materialised by
windowed decode vs whole-document decode) are measured with the store's
``decoded_bytes`` counter.  A JSON record (``"benchmark":
"fastpath-search"``) is appended to the same history as the other
fast-path experiments; frozen seed baselines are untouched.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..api import (
    ArchiveConfig,
    CacheSpec,
    DictionarySpec,
    EncodingSpec,
    PartitionSpec,
    RlzArchive,
    SearchSpec,
)
from ..corpus.document import DocumentCollection
from ..search import InvertedIndex, PostingsStore, generate_queries, index_sidecar_path
from ..serve import (
    BackgroundServer,
    ClusterClient,
    RlzClient,
    build_partitioned_archives,
)
from ..storage import RlzStore
from .corpora import gov_collection
from .fastpath import _append_json_record
from .reporting import ResultTable
from .scale import BenchScale, current_scale

__all__ = ["search_benchmark"]


def _ranking(hits) -> List[tuple]:
    return [(hit.doc_id, hit.score) for hit in hits]


def search_benchmark(
    collection: Optional[DocumentCollection] = None,
    scale: Optional[BenchScale] = None,
    dictionary_label: str = "1.0",
    scheme: str = "ZV",
    num_queries: Optional[int] = None,
    top_k: int = 10,
    snippet_chars: int = 160,
    shards: int = 4,
    query_repeats: int = 3,
    output_json: Optional[str | Path] = None,
) -> ResultTable:
    """Measure ranked search across the serving stack; verify exactness.

    Builds one search-indexed archive and a ``shards``-way partition of
    the same collection, replays a synthetic query log ``query_repeats``
    times through every leg, checks each leg's ranking equals the
    in-memory baseline hit for hit, and measures windowed-vs-full decode
    cost for snippets.  Optionally appends a machine-readable record to
    ``output_json``.
    """
    scale = scale or current_scale()
    collection = collection if collection is not None else gov_collection(scale)
    contents = {document.doc_id: document.content for document in collection}
    queries = generate_queries(
        collection, num_queries=num_queries or max(8, scale.num_queries), seed=7
    )
    query_log = queries * query_repeats
    requests = len(query_log)

    base = dict(
        dictionary=DictionarySpec(
            size=scale.dictionary_sizes[dictionary_label],
            sample_size=scale.default_sample_size,
        ),
        encoding=EncodingSpec(scheme=scheme),
        cache=CacheSpec(tier="lru", capacity=64),
        search=SearchSpec(enabled=True),
    )

    verified: Dict[str, bool] = {}

    def rate(elapsed: float) -> float:
        return requests / elapsed if elapsed > 0 else 0.0

    # ------------------------------------------------------------------
    # Baseline: the in-memory index every other leg must agree with.
    # ------------------------------------------------------------------
    reference = InvertedIndex.build(collection)
    expected = {
        query: [(r.doc_id, r.score) for r in reference.search(query, top_k=top_k)]
        for query in queries
    }

    start = time.perf_counter()
    for query in query_log:
        reference.search(query, top_k=top_k)
    memory_elapsed = time.perf_counter() - start

    legs = [("local-memory", memory_elapsed)]

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        full = tmp_path / "full.rlz"
        RlzArchive.build(collection, ArchiveConfig(**base), full).close()
        index_bytes = index_sidecar_path(full).stat().st_size

        # -- the persistent sidecar, queried in-process ----------------
        postings = PostingsStore.open(index_sidecar_path(full))
        verified["postings_ranking_identical"] = all(
            _ranking(postings.search(query, top_k=top_k)) == expected[query]
            for query in queries
        )
        start = time.perf_counter()
        for query in query_log:
            postings.search(query, top_k=top_k)
        legs.append(("local-postings", time.perf_counter() - start))

        # -- one server over a socket, with and without snippets -------
        with BackgroundServer(full, ArchiveConfig(**base)) as server:
            with RlzClient(*server.address) as client:
                verified["served_ranking_identical"] = all(
                    _ranking(client.search(query, top_k=top_k)) == expected[query]
                    for query in queries
                )
                start = time.perf_counter()
                for query in query_log:
                    client.search(query, top_k=top_k)
                legs.append(("served-1", time.perf_counter() - start))

                snippet_ok = True
                for query in queries:
                    for hit in client.search(
                        query, top_k=top_k, snippet_chars=snippet_chars
                    ):
                        document = contents[hit.doc_id]
                        window = document[
                            hit.snippet_start : hit.snippet_start + len(hit.snippet)
                        ]
                        snippet_ok = snippet_ok and hit.snippet == window
                verified["snippets_match_corpus"] = snippet_ok
                start = time.perf_counter()
                for query in query_log:
                    client.search(query, top_k=top_k, snippet_chars=snippet_chars)
                legs.append(("served-1-snippets", time.perf_counter() - start))

        # -- sharded fan-out over a partitioned fleet ------------------
        config = ArchiveConfig(**base, partition=PartitionSpec(shards=shards))
        shard_paths = build_partitioned_archives(
            collection, config, tmp_path / "shards"
        )
        servers = [
            BackgroundServer(path, ArchiveConfig(**base))
            for path in shard_paths.values()
        ]
        try:
            endpoints = []
            for label, background in zip(shard_paths, servers):
                host, port = background.start()
                endpoints.append(f"{label}@{host}:{port}")
            with ClusterClient(endpoints) as cluster:
                verified["sharded_ranking_identical"] = all(
                    _ranking(cluster.search(query, top_k=top_k)) == expected[query]
                    for query in queries
                )
                start = time.perf_counter()
                for query in query_log:
                    cluster.search(query, top_k=top_k)
                legs.append((f"sharded-{shards}", time.perf_counter() - start))
        finally:
            for background in servers:
                try:
                    background.stop()
                except Exception:
                    pass

        # -- snippet economics: windowed vs whole-document decode ------
        sample = [
            (hit.doc_id, hit.hit_offset)
            for query in queries
            for hit in postings.search(query, top_k=top_k)
        ]
        with RlzStore.open(full) as store:
            before = store.decoded_bytes
            for doc_id, offset in sample:
                start_offset = max(0, offset - snippet_chars // 2)
                store.get_window(doc_id, start_offset, snippet_chars)
            window_decoded = store.decoded_bytes - before
            before = store.decoded_bytes
            for doc_id, _ in sample:
                store.get(doc_id)
            full_decoded = store.decoded_bytes - before
        verified["windowed_decode_cheaper"] = window_decoded < full_decoded

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------
    table = ResultTable(
        title="Search serving: ranked retrieval over the compressed archive",
        headers=["Pipeline", "Seconds", "Queries/s", "vs local-memory"],
    )
    legs_json = []
    for name, elapsed in legs:
        table.add_row(
            f"search/{name}",
            elapsed,
            rate(elapsed),
            memory_elapsed / elapsed if elapsed > 0 else 0.0,
        )
        legs_json.append(
            {"leg": name, "seconds": elapsed, "queries_per_s": rate(elapsed)}
        )

    all_exact = all(
        verified[key]
        for key in (
            "postings_ranking_identical",
            "served_ranking_identical",
            "sharded_ranking_identical",
        )
    )
    table.add_note(f"sharded ranking identical to local index: {all_exact}")
    table.add_note(
        f"snippet windows verified against corpus: {verified['snippets_match_corpus']}"
    )
    table.add_note(
        f"windowed decode cheaper than full decode: "
        f"{verified['windowed_decode_cheaper']} "
        f"({window_decoded:,} vs {full_decoded:,} bytes for {len(sample)} snippets, "
        f"{full_decoded / max(window_decoded, 1):.1f}x less)"
    )
    table.add_note(
        f"query log: {requests} requests ({len(queries)} distinct queries "
        f"x{query_repeats}), top_k={top_k}, {shards}-way fleet, "
        f"postings sidecar {index_bytes:,} bytes"
    )

    if output_json is not None:
        record = {
            "benchmark": "fastpath-search",
            "scale": scale.name,
            "collection": collection.name,
            "documents": len(contents),
            "queries": len(queries),
            "query_repeats": query_repeats,
            "requests": requests,
            "top_k": top_k,
            "snippet_chars": snippet_chars,
            "shards": shards,
            "scheme": scheme,
            "postings_index_bytes": index_bytes,
            "legs": legs_json,
            "snippet_decode": {
                "snippets": len(sample),
                "window_decoded_bytes": window_decoded,
                "full_decoded_bytes": full_decoded,
                "savings_ratio": full_decoded / max(window_decoded, 1),
            },
            "verified": verified,
        }
        json_path = _append_json_record(output_json, record)
        table.add_note(f"JSON record appended to {json_path}")

    return table
