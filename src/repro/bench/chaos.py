"""Chaos benchmark: what a slow shard costs, and what hedging buys back.

The fault-tolerance PR's measurable claim: with one of two replicas
behind a fault-injecting proxy that delays 10 % of its response chunks
by 300 ms, tail latency explodes for a plain cluster client — and a
hedged client (:class:`ClusterClient` with ``hedge_delay``) pulls the
p99 back to roughly the hedge delay plus a clean round trip, while p50
and byte-correctness are untouched.

Four legs over the same shuffled query log and the same two-server
topology (the proxy stays in the path for the clean legs, so only the
fault plan differs): clean vs faulted, hedging off vs on.  Every served
byte is verified against the corpus, and a JSON record
(``"benchmark": "fastpath-chaos"``) is appended to the same history as
the other fast-path experiments; the frozen seed baselines in
:mod:`repro.bench.fastpath` are untouched.
"""

from __future__ import annotations

import random
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..api import (
    ArchiveConfig,
    CacheSpec,
    DictionarySpec,
    EncodingSpec,
    RlzArchive,
    ServeSpec,
)
from ..corpus.document import DocumentCollection
from ..serve import BackgroundServer, ClusterClient
from ..testing import FaultPlan, FaultProxy
from .corpora import gov_collection
from .fastpath import _append_json_record
from .reporting import ResultTable
from .scale import BenchScale, current_scale

__all__ = ["chaos_benchmark"]


def _percentile(sorted_values: List[float], quantile: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(quantile * (len(sorted_values) - 1)))
    return sorted_values[index]


def chaos_benchmark(
    collection: Optional[DocumentCollection] = None,
    scale: Optional[BenchScale] = None,
    dictionary_label: str = "1.0",
    scheme: str = "ZZ",
    serving_repeats: int = 2,
    cache_capacity: int = 128,
    fault_delay_seconds: float = 0.3,
    fault_probability: float = 0.1,
    hedge_delay: float = 0.025,
    output_json: Optional[str | Path] = None,
) -> ResultTable:
    """Measure cluster tail latency with a delay-faulted shard, ± hedging.

    Builds one archive, serves it from two replica servers with a
    :class:`~repro.testing.FaultProxy` in front of the first, and replays
    the shuffled log as per-request ``get`` calls four ways: (clean,
    faulted) × (hedging off, hedging on).  Reports p50/p99 per leg,
    byte-verifies every response, and optionally appends a JSON record to
    ``output_json``.
    """
    scale = scale or current_scale()
    collection = collection if collection is not None else gov_collection(scale)
    contents = {document.doc_id: document.content for document in collection}

    config = ArchiveConfig(
        dictionary=DictionarySpec(
            size=scale.dictionary_sizes[dictionary_label],
            sample_size=scale.default_sample_size,
        ),
        encoding=EncodingSpec(scheme=scheme),
        cache=CacheSpec(tier="lru", capacity=cache_capacity),
        serve=ServeSpec(),
    )

    doc_ids = sorted(contents)
    access_log = doc_ids * serving_repeats
    random.Random(0).shuffle(access_log)
    requests = len(access_log)

    clean_plan = FaultPlan()
    fault_plan = FaultPlan(
        delay_seconds=fault_delay_seconds, delay_probability=fault_probability
    )
    legs = [
        ("clean/unhedged", clean_plan, 0.0),
        ("clean/hedged", clean_plan, hedge_delay),
        ("faulted/unhedged", fault_plan, 0.0),
        ("faulted/hedged", fault_plan, hedge_delay),
    ]

    verified: Dict[str, bool] = {}
    leg_results = []
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "chaos.rlz"
        RlzArchive.build(collection, config, path).close()
        with BackgroundServer(path, config) as slow, BackgroundServer(
            path, config
        ) as fast:
            slow_host, slow_port = slow.address
            fast_host, fast_port = fast.address
            with FaultProxy(slow_host, slow_port, clean_plan, seed=1) as proxy:
                endpoints = [proxy.address, f"{fast_host}:{fast_port}"]
                for label, plan, leg_hedge in legs:
                    proxy.plan = plan
                    with ClusterClient(
                        endpoints, hedge_delay=leg_hedge, timeout=30.0
                    ) as cluster:
                        latencies = []
                        identical = True
                        start = time.perf_counter()
                        for doc_id in access_log:
                            began = time.perf_counter()
                            document = cluster.get(doc_id)
                            latencies.append(time.perf_counter() - began)
                            identical &= document == contents[doc_id]
                        elapsed = time.perf_counter() - start
                        verified[f"{label}_identical"] = identical
                        latencies.sort()
                        leg_results.append(
                            {
                                "leg": label,
                                "faulted": plan is fault_plan,
                                "hedged": leg_hedge > 0,
                                "seconds": elapsed,
                                "p50_ms": _percentile(latencies, 0.50) * 1000.0,
                                "p99_ms": _percentile(latencies, 0.99) * 1000.0,
                                "hedges": cluster.hedges,
                                "hedge_wins": cluster.hedge_wins,
                            }
                        )
                injected_delays = proxy.counters.snapshot()["delays"]

    table = ResultTable(
        title="Chaos serving: one delay-faulted shard, hedging off vs on",
        headers=["Leg", "Seconds", "p50 ms", "p99 ms"],
    )
    for leg in leg_results:
        table.add_row(leg["leg"], leg["seconds"], leg["p50_ms"], leg["p99_ms"])

    all_ok = all(verified.values())
    by_leg = {leg["leg"]: leg for leg in leg_results}
    recovered = (
        by_leg["faulted/unhedged"]["p99_ms"] / by_leg["faulted/hedged"]["p99_ms"]
        if by_leg["faulted/hedged"]["p99_ms"] > 0
        else 0.0
    )
    table.add_note(f"served bytes verified against corpus: {all_ok}")
    table.add_note(
        f"fault: {fault_probability:.0%} of one shard's response chunks "
        f"delayed {fault_delay_seconds * 1000:.0f} ms "
        f"({injected_delays} delays injected)"
    )
    table.add_note(
        f"hedging (delay {hedge_delay * 1000:.0f} ms) cut the faulted p99 "
        f"{recovered:.1f}x: {by_leg['faulted/unhedged']['p99_ms']:.1f} ms -> "
        f"{by_leg['faulted/hedged']['p99_ms']:.1f} ms "
        f"({by_leg['faulted/hedged']['hedges']} hedges, "
        f"{by_leg['faulted/hedged']['hedge_wins']} backup wins)"
    )
    table.add_note(
        f"query log: {requests} requests over {len(doc_ids)} documents "
        f"(x{serving_repeats}) per leg"
    )

    if output_json is not None:
        record = {
            "benchmark": "fastpath-chaos",
            "scale": scale.name,
            "collection": collection.name,
            "documents": len(doc_ids),
            "requests": requests,
            "serving_repeats": serving_repeats,
            "scheme": scheme,
            "cache_capacity": cache_capacity,
            "fault": {
                "delay_seconds": fault_delay_seconds,
                "delay_probability": fault_probability,
                "delays_injected": injected_delays,
            },
            "hedge_delay": hedge_delay,
            "legs": leg_results,
            "verified": verified,
        }
        json_path = _append_json_record(output_json, record)
        table.add_note(f"JSON record appended to {json_path}")

    return table
