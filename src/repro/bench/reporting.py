"""Result tables: collection, formatting and persistence.

Each experiment returns a :class:`ResultTable` whose rows mirror the rows of
the corresponding table (or the series of the corresponding figure) in the
paper.  Tables render as aligned plain text — the same shape a reader would
compare against the paper — and can be appended to a results file so a full
benchmark run leaves a single reviewable artefact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Sequence

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    """A titled table of results with fixed column headers."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row (must match the header count)."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} values but table has {len(self.headers)} columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        """Attach a free-text note rendered under the table."""
        self.notes.append(note)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    @staticmethod
    def _format_cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:,.2f}"
        if isinstance(value, int):
            return f"{value:,}"
        return str(value)

    def render(self) -> str:
        """Render the table as aligned plain text."""
        formatted_rows = [[self._format_cell(v) for v in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in formatted_rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header_line)
        lines.append("-" * len(header_line))
        for row in formatted_rows:
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table to stdout."""
        print()
        print(self.render())

    def save(self, path: str | Path, append: bool = True) -> None:
        """Write the rendered table to ``path`` (appending by default)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if append else "w"
        with path.open(mode, encoding="utf-8") as handle:
            handle.write(self.render())
            handle.write("\n\n")

    def column(self, header: str) -> List[object]:
        """Extract one column by header name (used by tests on trends)."""
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]

    @staticmethod
    def merge(title: str, tables: Iterable["ResultTable"]) -> str:
        """Render several tables under a common banner."""
        parts = [title, "#" * len(title), ""]
        parts.extend(table.render() + "\n" for table in tables)
        return "\n".join(parts)
