"""Cached benchmark corpora.

Every experiment in the suite works on one of three collections (GOV2-like
in crawl order, the same collection URL-sorted, or Wikipedia-like), so they
are generated once per process at the current scale and memoised here.
"""

from __future__ import annotations

from functools import lru_cache

from ..corpus import (
    DocumentCollection,
    generate_gov_collection,
    generate_wikipedia_collection,
    url_sorted,
)
from .scale import BenchScale, current_scale

__all__ = ["gov_collection", "gov_collection_url_sorted", "wiki_collection"]


@lru_cache(maxsize=4)
def _gov(scale_name: str) -> DocumentCollection:
    scale = current_scale() if scale_name == current_scale().name else current_scale()
    return generate_gov_collection(
        num_documents=scale.gov_documents,
        target_document_size=scale.gov_document_size,
        seed=42,
    )


@lru_cache(maxsize=4)
def _wiki(scale_name: str) -> DocumentCollection:
    scale = current_scale() if scale_name == current_scale().name else current_scale()
    return generate_wikipedia_collection(
        num_documents=scale.wiki_documents,
        target_document_size=scale.wiki_document_size,
        seed=7,
    )


def gov_collection(scale: BenchScale | None = None) -> DocumentCollection:
    """The GOV2-like collection at the current scale (crawl order)."""
    scale = scale or current_scale()
    return _gov(scale.name)


def gov_collection_url_sorted(scale: BenchScale | None = None) -> DocumentCollection:
    """The GOV2-like collection at the current scale, URL-sorted."""
    return url_sorted(gov_collection(scale))


def wiki_collection(scale: BenchScale | None = None) -> DocumentCollection:
    """The Wikipedia-like collection at the current scale."""
    scale = scale or current_scale()
    return _wiki(scale.name)
