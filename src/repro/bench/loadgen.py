"""Open-loop load harness: Poisson arrivals against a live serving front.

The serving benchmark (:mod:`repro.bench.serving`) is *closed-loop*: each
client session waits for its previous response before issuing the next
request, so a slow server silently throttles the offered load and the
measured latencies look better than what a real client population would
see.  This harness is *open-loop*: request arrival times are drawn from a
Poisson process (exponential inter-arrivals at the offered rate) **before**
the run starts, and every request is launched at its scheduled instant
whether or not earlier requests have completed.  Latency is measured from
the scheduled arrival — not from when the client got around to sending —
so queueing delay under overload is charged to the server, avoiding the
coordinated-omission trap.

The harness builds a GOV2-like corpus at one of three scales, packs it
into an archive in a temporary directory, serves it from a live
:class:`repro.serve.RlzServer` on a loopback socket, and drives it with a
single multiplexed :class:`repro.serve.AsyncRlzClient` (the v2 protocol
pipelines concurrent requests over one connection).  Every response body
is verified against the corpus.

Scales (``LoadScale``) are deliberately separate from the tiny-corpus
:class:`repro.bench.scale.BenchScale` taxonomy: load testing needs
paper-scale corpora (``small`` ~100 MB, ``medium`` ~1 GB) where the
micro-benchmarks need seconds-long CI runs.

A JSON record (``"benchmark": "load"``) is appended to the same history
file as the fastpath benchmarks; the frozen seed baselines there are
untouched.
"""

from __future__ import annotations

import asyncio
import math
import random
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..api import ArchiveConfig, DictionarySpec, EncodingSpec, RlzArchive
from ..corpus import generate_gov_collection
from ..corpus.document import DocumentCollection
from .fastpath import _append_json_record
from .reporting import ResultTable

__all__ = ["LoadScale", "LOAD_SCALES", "load_scale", "load_benchmark"]


@dataclass(frozen=True)
class LoadScale:
    """One rung of the load-testing ladder.

    ``tiny`` exists for CI smoke runs; ``small`` (~100 MB corpus) and
    ``medium`` (~1 GB corpus) are the paper-scale acceptance points.
    """

    name: str
    num_documents: int
    document_bytes: int
    dictionary_bytes: int
    sample_bytes: int
    default_rate: float  # offered requests/second
    default_requests: int

    @property
    def corpus_bytes(self) -> int:
        """Approximate corpus size this scale targets."""
        return self.num_documents * self.document_bytes


LOAD_SCALES: Dict[str, LoadScale] = {
    scale.name: scale
    for scale in (
        LoadScale("tiny", 96, 18 * 1024, 256 * 1024, 512, 150.0, 300),
        LoadScale("small", 5_700, 18 * 1024, 16 * 1024 * 1024, 1024, 400.0, 2_000),
        LoadScale("medium", 57_000, 18 * 1024, 64 * 1024 * 1024, 1024, 400.0, 4_000),
    )
}


def load_scale(name: str) -> LoadScale:
    """Look up a :class:`LoadScale` by name (``tiny``/``small``/``medium``)."""
    try:
        return LOAD_SCALES[name]
    except KeyError:
        known = ", ".join(sorted(LOAD_SCALES))
        raise ValueError(f"unknown load scale {name!r} (known: {known})") from None


def _percentile(sorted_values: List[float], q: float) -> float:
    """The ``q``-quantile (0 < q <= 1) by the nearest-rank method."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


async def _drive(
    host: str,
    port: int,
    contents: Dict[int, bytes],
    rate: float,
    requests: int,
    seed: int,
) -> Tuple[List[float], int, int, float]:
    """Fire ``requests`` Poisson arrivals at the server.

    Returns (latencies-in-seconds for successful requests, errors,
    bytes-verified, wall-clock-seconds).  Latency for each request is
    measured from its *scheduled* arrival time, so time a request spends
    waiting behind a saturated server counts against the server.
    """
    from ..serve import AsyncRlzClient

    rng = random.Random(seed)
    arrivals: List[float] = []
    clock = 0.0
    for _ in range(requests):
        clock += rng.expovariate(rate)
        arrivals.append(clock)
    doc_ids = sorted(contents)
    chosen = [doc_ids[rng.randrange(len(doc_ids))] for _ in range(requests)]

    client = AsyncRlzClient(host, port)
    latencies: List[float] = []
    errors = 0
    bytes_served = 0

    start = time.perf_counter()

    async def one(index: int) -> None:
        nonlocal errors, bytes_served
        doc_id = chosen[index]
        scheduled = start + arrivals[index]
        try:
            payload = await client.get(doc_id)
        except Exception:
            errors += 1
            return
        if payload != contents[doc_id]:
            errors += 1
            return
        bytes_served += len(payload)
        latencies.append(time.perf_counter() - scheduled)

    try:
        tasks: List[asyncio.Task] = []
        for index, arrival in enumerate(arrivals):
            delay = (start + arrival) - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.ensure_future(one(index)))
        if tasks:
            await asyncio.gather(*tasks)
    finally:
        await client.close()
    elapsed = time.perf_counter() - start
    return latencies, errors, bytes_served, elapsed


def load_benchmark(
    scale: str | LoadScale = "tiny",
    rate: Optional[float] = None,
    requests: Optional[int] = None,
    seed: int = 0,
    scheme: str = "ZZ",
    collection: Optional[DocumentCollection] = None,
    output_json: Optional[str | Path] = None,
) -> ResultTable:
    """Run one open-loop load experiment and return its result table.

    Builds the corpus and archive for ``scale`` (unless ``collection`` is
    supplied), starts an :class:`repro.serve.RlzServer` on an ephemeral
    loopback port, offers a Poisson request stream at ``rate`` requests/s,
    and reports p50/p99/p999 latency plus achieved-vs-offered throughput.
    Every response is byte-verified against the corpus.

    The returned table carries the record appended to ``output_json`` in
    ``table.record`` (set as a dynamic attribute) so callers — the CLI's
    ``--p99-bound-ms`` gate in particular — can inspect the numbers.
    """
    scale = load_scale(scale) if isinstance(scale, str) else scale
    rate = scale.default_rate if rate is None else float(rate)
    requests = scale.default_requests if requests is None else int(requests)
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if requests <= 0:
        raise ValueError(f"requests must be positive, got {requests}")

    from ..serve import BackgroundServer

    if collection is None:
        collection = generate_gov_collection(
            num_documents=scale.num_documents,
            target_document_size=scale.document_bytes,
            seed=42,
        )
    contents = {document.doc_id: bytes(document.content) for document in collection}
    corpus_bytes = sum(len(content) for content in contents.values())

    config = ArchiveConfig(
        dictionary=DictionarySpec(
            size=scale.dictionary_bytes, sample_size=scale.sample_bytes
        ),
        encoding=EncodingSpec(scheme=scheme),
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "load.rlz"
        build_start = time.perf_counter()
        RlzArchive.build(collection, config, path).close()
        build_seconds = time.perf_counter() - build_start

        with BackgroundServer(path, config) as server:
            host, port = server.address
            latencies, errors, bytes_served, elapsed = asyncio.run(
                _drive(host, port, contents, rate, requests, seed)
            )
            server_stats = server.stats()

    latencies.sort()
    completed = len(latencies)
    achieved = completed / elapsed if elapsed > 0 else 0.0
    p50 = _percentile(latencies, 0.50) * 1e3
    p99 = _percentile(latencies, 0.99) * 1e3
    p999 = _percentile(latencies, 0.999) * 1e3
    worst = latencies[-1] * 1e3 if latencies else 0.0

    table = ResultTable(
        title=f"Open-loop load: Poisson arrivals at {rate:g} req/s ({scale.name})",
        headers=["Metric", "Value"],
    )
    table.add_row("offered req/s", rate)
    table.add_row("achieved req/s", achieved)
    table.add_row("completed / offered", f"{completed}/{requests}")
    table.add_row("p50 latency (ms)", p50)
    table.add_row("p99 latency (ms)", p99)
    table.add_row("p99.9 latency (ms)", p999)
    table.add_row("max latency (ms)", worst)
    table.add_note(
        f"corpus {corpus_bytes / 1e6:.1f} MB over {len(contents)} documents, "
        f"dictionary {scale.dictionary_bytes / 1e6:.1f} MB, scheme {scheme}"
    )
    table.add_note(
        f"archive build {build_seconds:.1f}s; run {elapsed:.1f}s, "
        f"{bytes_served:,} bytes served and verified, {errors} errors"
    )
    table.add_note(
        "latency measured from each request's scheduled Poisson arrival "
        "(coordinated-omission-free)"
    )

    record = {
        "benchmark": "load",
        "scale": scale.name,
        "collection": collection.name,
        "documents": len(contents),
        "corpus_bytes": corpus_bytes,
        "dictionary_bytes": scale.dictionary_bytes,
        "scheme": scheme,
        "seed": seed,
        "offered_rps": rate,
        "achieved_rps": achieved,
        "requests": requests,
        "completed": completed,
        "errors": errors,
        "bytes_served": bytes_served,
        "build_seconds": build_seconds,
        "run_seconds": elapsed,
        "latency_ms": {"p50": p50, "p99": p99, "p999": p999, "max": worst},
        "server": {
            key: server_stats[key]
            for key in (
                "server_requests",
                "server_errors",
                "server_busy_rejections",
                "server_deadline_rejections",
            )
            if key in server_stats
        },
    }
    if output_json is not None:
        _append_json_record(output_json, record)
    table.record = record  # type: ignore[attr-defined]
    return table
