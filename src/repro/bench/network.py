"""Network-serving benchmark: local access vs the socket front.

The serving benchmark (:mod:`repro.bench.serving`) measures the async
front inside one process; this experiment measures the *fleet-of-readers*
shape — an :class:`repro.serve.RlzServer` on a socket, with 1, 8 and 64
concurrent :class:`repro.serve.RlzClient` sessions replaying the same
shuffled repeated-access query log that a local sequential ``get`` loop
serves as the baseline:

* ``serve/local-sequential``   — ``RlzArchive.get`` loop in-process (the
  PR-3 facade path, LRU tier);
* ``serve/socket-N-clients``   — N threads, each with its own pooled
  ``RlzClient``, splitting the identical log over the wire.

Every pipeline's output is byte-verified against the corpus, and a JSON
record (``"benchmark": "fastpath-network"``) is appended to the same
history as the other fast-path experiments; the frozen seed baselines in
:mod:`repro.bench.fastpath` are untouched.
"""

from __future__ import annotations

import random
import tempfile
import threading
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..api import (
    ArchiveConfig,
    CacheSpec,
    DictionarySpec,
    EncodingSpec,
    RlzArchive,
    ServeSpec,
)
from ..corpus.document import DocumentCollection
from ..serve import BackgroundServer, RlzClient
from .corpora import gov_collection
from .fastpath import _append_json_record
from .reporting import ResultTable
from .scale import BenchScale, current_scale

__all__ = ["network_benchmark"]


def _serve_over_socket(
    host: str,
    port: int,
    access_log: List[int],
    clients: int,
) -> Tuple[List[Optional[bytes]], float]:
    """Replay the log with ``clients`` threads, each owning one RlzClient.

    Client ``i`` takes requests ``i, i+C, i+2C, ...`` (the same interleaving
    as the async serving benchmark), so concurrent sessions ask for popular
    documents close together in time.  Returns (served-in-log-order,
    elapsed-seconds).
    """
    results: List[Optional[bytes]] = [None] * len(access_log)
    failures: List[BaseException] = []

    def session(offset: int) -> None:
        try:
            with RlzClient(host, port) as client:
                for index in range(offset, len(access_log), clients):
                    results[index] = client.get(access_log[index])
        except BaseException as exc:  # surfaced after join
            failures.append(exc)

    threads = [
        threading.Thread(target=session, args=(offset,), name=f"rlz-client-{offset}")
        for offset in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if failures:
        raise failures[0]
    return results, elapsed


def network_benchmark(
    collection: Optional[DocumentCollection] = None,
    scale: Optional[BenchScale] = None,
    dictionary_label: str = "1.0",
    scheme: str = "ZZ",
    client_counts: Sequence[int] = (1, 8, 64),
    serving_repeats: int = 2,
    cache_capacity: int = 128,
    max_inflight: int = 64,
    output_json: Optional[str | Path] = None,
) -> ResultTable:
    """Measure socket serving against local access on one query log.

    Builds one archive in a temporary directory, serves it from a
    :class:`BackgroundServer`, replays the shuffled log locally and then
    through 1/8/64 concurrent socket clients, byte-verifies every pipeline
    against the corpus, and optionally appends a machine-readable record
    to ``output_json``.
    """
    scale = scale or current_scale()
    collection = collection if collection is not None else gov_collection(scale)
    contents = {document.doc_id: document.content for document in collection}

    config = ArchiveConfig(
        dictionary=DictionarySpec(
            size=scale.dictionary_sizes[dictionary_label],
            sample_size=scale.default_sample_size,
        ),
        encoding=EncodingSpec(scheme=scheme),
        cache=CacheSpec(tier="lru", capacity=cache_capacity),
        serve=ServeSpec(max_inflight=max_inflight),
    )

    doc_ids = sorted(contents)
    access_log = doc_ids * serving_repeats
    random.Random(0).shuffle(access_log)
    requests = len(access_log)
    serving_bytes = sum(len(contents[doc_id]) for doc_id in access_log)
    expected = [contents[doc_id] for doc_id in access_log]
    client_counts = [count for count in client_counts if count <= requests] or [1]

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "network.rlz"
        RlzArchive.build(collection, config, path).close()

        # -- local baseline: the facade get loop, same cache tier ----------
        archive = RlzArchive.open(path, config)
        start = time.perf_counter()
        local = [archive.get(doc_id) for doc_id in access_log]
        local_elapsed = time.perf_counter() - start
        archive.close()

        # -- socket pipelines over one live server -------------------------
        socket_runs = []
        with BackgroundServer(path, config) as server:
            host, port = server.address
            for clients in client_counts:
                served, elapsed = _serve_over_socket(host, port, access_log, clients)
                socket_runs.append((clients, served, elapsed))
            server_stats = server.stats()

    local_ok = local == expected
    verified = {"local_ok": local_ok}

    def rate(elapsed: float) -> float:
        return requests / elapsed if elapsed > 0 else 0.0

    table = ResultTable(
        title="Network serving: socket clients vs local access",
        headers=["Pipeline", "Seconds", "Requests/s", "Relative to local"],
    )
    table.add_row("serve/local-sequential", local_elapsed, rate(local_elapsed), 1.0)
    runs_json = []
    for clients, served, elapsed in socket_runs:
        identical = served == expected
        verified[f"socket_{clients}_identical"] = identical
        relative = local_elapsed / elapsed if elapsed else 0.0
        table.add_row(
            f"serve/socket-{clients}-clients", elapsed, rate(elapsed), relative
        )
        runs_json.append(
            {
                "clients": clients,
                "seconds": elapsed,
                "requests_per_s": rate(elapsed),
                "relative_to_local": relative,
            }
        )

    all_ok = all(verified.values())
    table.add_note(f"served bytes verified against corpus: {all_ok}")
    table.add_note(
        f"query log: {requests} requests over {len(doc_ids)} documents "
        f"(x{serving_repeats}), {serving_bytes:,} bytes served per pipeline"
    )
    table.add_note(
        f"server: {int(server_stats.get('server_requests', 0))} requests over "
        f"{int(server_stats.get('server_connections_total', 0))} connections, "
        f"{int(server_stats.get('async_coalesced', 0))} coalesced, "
        f"backpressure gate {max_inflight}"
    )

    if output_json is not None:
        record = {
            "benchmark": "fastpath-network",
            "scale": scale.name,
            "collection": collection.name,
            "documents": len(doc_ids),
            "requests": requests,
            "serving_repeats": serving_repeats,
            "bytes_served": serving_bytes,
            "scheme": scheme,
            "cache_capacity": cache_capacity,
            "max_inflight": max_inflight,
            "serve": {
                "local_seconds": local_elapsed,
                "local_requests_per_s": rate(local_elapsed),
                "socket_runs": runs_json,
                "server_requests": int(server_stats.get("server_requests", 0)),
                "server_connections": int(
                    server_stats.get("server_connections_total", 0)
                ),
                "coalesced": int(server_stats.get("async_coalesced", 0)),
            },
            "verified": verified,
        }
        json_path = _append_json_record(output_json, record)
        table.add_note(f"JSON record appended to {json_path}")

    return table
