"""Serving-front benchmark: concurrent async clients vs a sequential loop.

The ``fastpath`` benchmark measures raw decode throughput; this experiment
measures the *serving shape* on top of it — the difference between the
legacy caller pattern (a sequential ``get`` loop, no cache, the pre-facade
default) and the :mod:`repro.api` front (an :class:`AsyncRlzArchive` with a
decode-cache tier, thread-pool offload and coalesced duplicate requests)
on the same repeated-access query log.

Three pipelines serve the identical shuffled log:

* ``serve/sequential``        — ``archive.get`` loop, no cache (legacy);
* ``serve/sequential-cache``  — the same loop with the LRU tier (what the
  cache alone buys);
* ``serve/async-clients``     — N concurrent async client sessions over the
  LRU tier (what the async front adds: overlap plus coalescing).

Every served byte is verified against the corpus in the same run, and a
JSON record (``"benchmark": "fastpath-serving"``) is appended to the same
history as :func:`repro.bench.fastpath.fastpath_benchmark`, whose frozen
seed baselines are untouched.
"""

from __future__ import annotations

import asyncio
import random
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from ..api import (
    ArchiveConfig,
    AsyncRlzArchive,
    CacheSpec,
    DictionarySpec,
    EncodingSpec,
    RlzArchive,
)
from ..corpus.document import DocumentCollection
from .corpora import gov_collection
from .fastpath import _append_json_record
from .reporting import ResultTable
from .scale import BenchScale, current_scale

__all__ = ["serving_benchmark"]


def _serve_async(
    path: Path,
    config: ArchiveConfig,
    access_log: List[int],
    clients: int,
    max_workers: Optional[int],
) -> tuple:
    """Serve the log with ``clients`` concurrent sessions; returns
    (served-in-log-order, elapsed-seconds, front-stats)."""

    async def run() -> tuple:
        front = AsyncRlzArchive.open(path, config, max_workers=max_workers)
        results: List[Optional[bytes]] = [None] * len(access_log)

        async def client(offset: int) -> None:
            # Client sessions interleave over the log (client i takes
            # requests i, i+C, i+2C, ...), so concurrent sessions ask for
            # the same popular documents close together in time — the
            # workload coalescing exists for.
            for index in range(offset, len(access_log), clients):
                results[index] = await front.get(access_log[index])

        start = time.perf_counter()
        await asyncio.gather(*(client(offset) for offset in range(clients)))
        elapsed = time.perf_counter() - start
        stats = front.stats()
        await front.close()
        return results, elapsed, stats

    return asyncio.run(run())


def serving_benchmark(
    collection: Optional[DocumentCollection] = None,
    scale: Optional[BenchScale] = None,
    dictionary_label: str = "1.0",
    scheme: str = "ZZ",
    clients: int = 8,
    serving_repeats: int = 4,
    cache_capacity: int = 128,
    max_workers: Optional[int] = None,
    output_json: Optional[str | Path] = None,
) -> ResultTable:
    """Measure the async serving front against the sequential ``get`` loop.

    Builds one archive (via :meth:`RlzArchive.build`) in a temporary
    directory, replays a shuffled query log touching every document
    ``serving_repeats`` times through the three pipelines described in the
    module docstring, verifies every served byte against the corpus, and
    optionally appends a machine-readable record to ``output_json``.
    """
    scale = scale or current_scale()
    collection = collection if collection is not None else gov_collection(scale)
    contents = {document.doc_id: document.content for document in collection}

    base_config = ArchiveConfig(
        dictionary=DictionarySpec(
            size=scale.dictionary_sizes[dictionary_label],
            sample_size=scale.default_sample_size,
        ),
        encoding=EncodingSpec(scheme=scheme),
    )
    cached_config = ArchiveConfig(
        dictionary=base_config.dictionary,
        encoding=base_config.encoding,
        cache=CacheSpec(tier="lru", capacity=cache_capacity),
    )

    doc_ids = sorted(contents)
    access_log = doc_ids * serving_repeats
    random.Random(0).shuffle(access_log)
    serving_bytes = sum(len(contents[doc_id]) for doc_id in access_log)
    requests = len(access_log)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "serving.rlz"
        RlzArchive.build(collection, base_config, path).close()

        # -- sequential, no cache: the legacy caller pattern ---------------
        archive = RlzArchive.open(path, base_config)
        start = time.perf_counter()
        sequential = [archive.get(doc_id) for doc_id in access_log]
        sequential_elapsed = time.perf_counter() - start
        archive.close()

        # -- sequential + LRU tier: what the cache alone buys --------------
        archive = RlzArchive.open(path, cached_config)
        start = time.perf_counter()
        sequential_cached = [archive.get(doc_id) for doc_id in access_log]
        cached_elapsed = time.perf_counter() - start
        cached_info = archive.cache_info()
        archive.close()

        # -- async front: concurrent clients, cache + coalescing -----------
        async_served, async_elapsed, async_stats = _serve_async(
            path, cached_config, access_log, clients, max_workers
        )

    sequential_ok = all(
        document == contents[doc_id]
        for document, doc_id in zip(sequential, access_log)
    )
    cached_ok = sequential_cached == sequential
    async_ok = async_served == sequential

    def rate(elapsed: float) -> float:
        return requests / elapsed if elapsed > 0 else 0.0

    cached_speedup = sequential_elapsed / cached_elapsed if cached_elapsed else 0.0
    async_speedup = sequential_elapsed / async_elapsed if async_elapsed else 0.0

    table = ResultTable(
        title="Serving front: async clients vs the sequential get loop",
        headers=["Pipeline", "Seconds", "Requests/s", "Speedup vs sequential"],
    )
    table.add_row("serve/sequential", sequential_elapsed, rate(sequential_elapsed), 1.0)
    table.add_row(
        "serve/sequential-cache", cached_elapsed, rate(cached_elapsed), cached_speedup
    )
    table.add_row(
        f"serve/async-{clients}-clients", async_elapsed, rate(async_elapsed), async_speedup
    )
    table.add_note(f"served bytes verified against corpus: {sequential_ok and cached_ok and async_ok}")
    table.add_note(
        f"query log: {requests} requests over {len(doc_ids)} documents "
        f"(x{serving_repeats}), {serving_bytes:,} bytes served per pipeline"
    )
    table.add_note(
        f"cache tier: lru capacity {cache_capacity} "
        f"(hits {cached_info['hits']}, misses {cached_info['misses']} on the "
        "sequential-cache pass)"
    )
    table.add_note(
        f"async front: {clients} client sessions, "
        f"{int(async_stats['async_coalesced'])} duplicate requests coalesced, "
        f"{int(async_stats['cache_hits'])} cache hits"
    )

    if output_json is not None:
        record = {
            "benchmark": "fastpath-serving",
            "scale": scale.name,
            "collection": collection.name,
            "documents": len(doc_ids),
            "requests": requests,
            "serving_repeats": serving_repeats,
            "bytes_served": serving_bytes,
            "scheme": scheme,
            "clients": clients,
            "cache_capacity": cache_capacity,
            "serve": {
                "sequential_seconds": sequential_elapsed,
                "sequential_cache_seconds": cached_elapsed,
                "async_seconds": async_elapsed,
                "sequential_requests_per_s": rate(sequential_elapsed),
                "sequential_cache_requests_per_s": rate(cached_elapsed),
                "async_requests_per_s": rate(async_elapsed),
                "cache_speedup": cached_speedup,
                "async_speedup": async_speedup,
                "coalesced": int(async_stats["async_coalesced"]),
                "async_cache_hits": int(async_stats["cache_hits"]),
            },
            "verified": {
                "sequential_ok": sequential_ok,
                "cached_identical": cached_ok,
                "async_identical": async_ok,
            },
        }
        json_path = _append_json_record(output_json, record)
        table.add_note(f"JSON record appended to {json_path}")

    return table
