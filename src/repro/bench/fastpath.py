"""Fast-path throughput benchmark: current pipeline vs the frozen seed.

This experiment anchors the perf trajectory of the repository: it measures
encode and decode throughput of the current fast path against a *frozen*
re-implementation of the seed revision's hot loops (kept verbatim in this
module so later optimisation PRs keep comparing against the same baseline),
verifies that both produce byte-identical factor streams and round-trip the
corpus exactly, and records everything to a JSON file so successive PRs can
chart the trajectory.

Measured pipelines:

* ``encode/seed``      — per-factor ``searchsorted`` over the full key
  array, lazily built key levels, ``Factor`` objects materialised per
  factor (the seed's ``factorize`` + ``encode``);
* ``encode/fast``      — jump-start index + eager key levels +
  stream-based factorization (``factorize_streams`` + ``encode_streams``);
* ``encode/parallel``  — the same fast path fanned out over a
  :class:`repro.core.ParallelCompressor` pool;
* ``decode/seed``      — the seed's per-factor ``bytearray`` append loop;
* ``decode/fast``      — vectorized batch :func:`repro.core.decode_many`;
* ``decode/serving``   — the batch decoder behind the store's LRU
  decoded-document cache on a repeated-access log.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from ..core import (
    DictionaryConfig,
    PairEncoder,
    ParallelCompressor,
    RlzDictionary,
    RlzFactorizer,
    build_dictionary,
    decode_many,
)
from ..corpus.document import DocumentCollection
from .corpora import gov_collection
from .reporting import ResultTable
from .scale import BenchScale, current_scale

__all__ = [
    "fastpath_benchmark",
    "large_dictionary_benchmark",
    "seed_decode_pairs",
    "vectorized_benchmark",
    "SeedFactorizer",
]


# ----------------------------------------------------------------------
# Frozen seed implementations (do not optimise — they ARE the baseline)
# ----------------------------------------------------------------------
_KEY_WIDTH = 8


class SeedMatcher:
    """The seed revision's accelerated ``longest_match``, frozen.

    Reuses the already-built suffix array of a :class:`SuffixArray` but runs
    the seed's search loops: a ``searchsorted`` over the full level-0 key
    array for the first step of every factor (no jump-start index), lazily
    materialised key levels, dataclass-free but numpy-scalar interval
    refinement, exactly as the seed shipped them.
    """

    _SCAN_THRESHOLD = 16
    _MAX_LEVELS = 4
    _GATHER_MAX = 4096

    def __init__(self, suffix_array) -> None:
        self._text = suffix_array.text
        self._n = len(self._text)
        self._sa = suffix_array.array
        text_array = np.frombuffer(self._text, dtype=np.uint8)
        self._padded = np.concatenate(
            [text_array, np.zeros((self._MAX_LEVELS + 1) * _KEY_WIDTH, dtype=np.uint8)]
        )
        self._level_keys = {}

    def _keys_at(self, positions, offset):
        padded = self._padded
        base = positions + offset
        keys = np.zeros(len(positions), dtype=np.uint64)
        for j in range(_KEY_WIDTH):
            keys = (keys << np.uint64(8)) | padded[base + j].astype(np.uint64)
        return keys

    def _get_level_keys(self, level):
        keys = self._level_keys.get(level)
        if keys is None:
            keys = self._keys_at(self._sa, level * _KEY_WIDTH)
            self._level_keys[level] = keys
        return keys

    def _byte_at(self, rank, offset):
        pos = int(self._sa[rank]) + offset
        if pos >= self._n:
            return -1
        return self._text[pos]

    def _lower_bound(self, lo, hi, offset, byte):
        while lo <= hi:
            mid = (lo + hi) // 2
            if self._byte_at(mid, offset) < byte:
                lo = mid + 1
            else:
                hi = mid - 1
        return lo

    def _upper_bound(self, lo, hi, offset, byte):
        while lo <= hi:
            mid = (lo + hi) // 2
            if self._byte_at(mid, offset) <= byte:
                lo = mid + 1
            else:
                hi = mid - 1
        return hi

    def _extend_match(self, text_pos, query, query_pos, limit):
        text = self._text
        limit = min(limit, self._n - text_pos)
        matched = 0
        chunk = 32
        while matched < limit:
            step = min(chunk, limit - matched)
            if (
                text[text_pos + matched : text_pos + matched + step]
                == query[query_pos + matched : query_pos + matched + step]
            ):
                matched += step
                chunk *= 2
                continue
            while (
                matched < limit
                and text[text_pos + matched] == query[query_pos + matched]
            ):
                matched += 1
            break
        return matched

    def _scan_interval(self, lb, rb, query, start, matched, max_len):
        sa = self._sa
        best_position = int(sa[lb])
        best_length = matched
        for rank in range(lb, rb + 1):
            position = int(sa[rank])
            length = matched + self._extend_match(
                position + matched, query, start + matched, max_len - matched
            )
            if length > best_length:
                best_length = length
                best_position = position
                if best_length == max_len:
                    break
        return best_position, best_length

    def _refine(self, lb, rb, offset, byte):
        new_lb = self._lower_bound(lb, rb, offset, byte)
        if new_lb > rb:
            return None
        pos = int(self._sa[new_lb]) + offset
        if pos >= self._n or self._text[pos] != byte:
            return None
        return new_lb, self._upper_bound(new_lb, rb, offset, byte)

    def _longest_match_refine(self, query, start, max_len, lb, rb, matched):
        sa = self._sa
        while matched < max_len:
            if rb - lb + 1 <= self._SCAN_THRESHOLD:
                return self._scan_interval(lb, rb, query, start, matched, max_len)
            bounds = self._refine(lb, rb, matched, query[start + matched])
            if bounds is None:
                break
            lb, rb = bounds
            matched += 1
        if matched == 0:
            return (0, 0)
        return (int(sa[lb]), matched)

    def longest_match(self, query, start=0, limit=None):
        n_query = len(query)
        max_len = n_query - start
        if limit is not None:
            max_len = min(max_len, limit)
        if max_len <= 0 or self._n == 0:
            return (0, 0)
        sa = self._sa
        matched = 0
        lb, rb = 0, self._n - 1
        while max_len - matched >= _KEY_WIDTH:
            if b"\x00" in query[start + matched : start + matched + _KEY_WIDTH]:
                return self._longest_match_refine(query, start, max_len, lb, rb, matched)
            level, within = divmod(matched, _KEY_WIDTH)
            interval_size = rb - lb + 1
            if within == 0 and level < self._MAX_LEVELS:
                keys = self._get_level_keys(level)[lb : rb + 1]
            elif interval_size <= self._GATHER_MAX:
                keys = self._keys_at(sa[lb : rb + 1], matched)
            else:
                bounds = self._refine(lb, rb, matched, query[start + matched])
                if bounds is None:
                    return (int(sa[lb]), matched) if matched else (0, 0)
                lb, rb = bounds
                matched += 1
                continue
            query_key = np.uint64(
                int.from_bytes(query[start + matched : start + matched + _KEY_WIDTH], "big")
            )
            left = int(keys.searchsorted(query_key, side="left"))
            right = int(keys.searchsorted(query_key, side="right")) - 1
            if left > right:
                return self._longest_match_refine(query, start, max_len, lb, rb, matched)
            candidate = int(sa[lb + left])
            if (
                self._text[candidate + matched : candidate + matched + _KEY_WIDTH]
                != query[start + matched : start + matched + _KEY_WIDTH]
            ):
                return self._longest_match_refine(query, start, max_len, lb, rb, matched)
            lb, rb = lb + left, lb + right
            matched += _KEY_WIDTH
            if rb - lb + 1 <= self._SCAN_THRESHOLD:
                return self._scan_interval(lb, rb, query, start, matched, max_len)
        return self._longest_match_refine(query, start, max_len, lb, rb, matched)


class SeedFactorizer:
    """The seed's object-based ``Encode`` loop over :class:`SeedMatcher`."""

    def __init__(self, dictionary: RlzDictionary) -> None:
        self._matcher = SeedMatcher(dictionary.suffix_array)

    def factorize_streams(self, text: bytes) -> Tuple[List[int], List[int]]:
        """Seed parse as streams (for stream-equality checks)."""
        positions: List[int] = []
        lengths: List[int] = []
        cursor = 0
        n = len(text)
        while cursor < n:
            match_position, match_length = self._matcher.longest_match(text, cursor)
            if match_length == 0:
                positions.append(text[cursor])
                lengths.append(0)
                cursor += 1
            else:
                positions.append(match_position)
                lengths.append(match_length)
                cursor += match_length
        return positions, lengths

    def encode(self, text: bytes, encoder: PairEncoder) -> bytes:
        """The seed pipeline: ``Factor`` objects, then stream extraction."""
        from ..core.factor import Factor, Factorization

        factors = []
        cursor = 0
        n = len(text)
        while cursor < n:
            match_position, match_length = self._matcher.longest_match(text, cursor)
            if match_length == 0:
                factors.append(Factor.literal(text[cursor]))
                cursor += 1
            else:
                factors.append(Factor.copy(match_position, match_length))
                cursor += match_length
        return encoder.encode(Factorization(factors))


def seed_decode_pairs(positions, lengths, dictionary) -> bytes:
    """The seed revision's decode loop: per-factor ``bytearray`` growth."""
    data = dictionary.data
    limit = len(data)
    out = bytearray()
    for position, length in zip(positions, lengths):
        if length == 0:
            if not 0 <= position <= 255:
                raise ValueError(f"literal byte out of range: {position}")
            out.append(position)
        else:
            end = position + length
            if position < 0 or end > limit:
                raise ValueError(
                    f"factor ({position}, {length}) is outside the dictionary "
                    f"(size {limit})"
                )
            out += data[position:end]
    return bytes(out)


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
def _throughput(total_bytes: int, elapsed: float) -> float:
    return total_bytes / elapsed / 1e6 if elapsed > 0 else 0.0


def _best_of(rounds: int, run) -> float:
    """Wall-clock of the fastest of ``rounds`` runs (defuses scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def fastpath_benchmark(
    collection: Optional[DocumentCollection] = None,
    scale: Optional[BenchScale] = None,
    dictionary_label: str = "1.0",
    scheme: str = "ZZ",
    workers: Optional[int] = None,
    serving_repeats: int = 5,
    cache_size: int = 256,
    rounds: int = 2,
    output_json: Optional[str | Path] = None,
) -> ResultTable:
    """Measure fast-path encode/decode throughput against the frozen seed.

    Encode compares the seed pipeline with the stream/jump-start pipeline on
    a full corpus pass.  Decode is reported two ways: a single sequential
    pass over every document (``decode/…-pass`` rows) and a *serving*
    workload — a shuffled query log touching each document
    ``serving_repeats`` times, seed decoding every request, the fast side
    running the store's serving semantics (an LRU of decoded documents with
    the same hit/evict behaviour as ``RlzStore``'s cache, misses decoded by
    the batch decoder; disk I/O is excluded from both sides so the
    comparison is pure decode work).  The serving comparison is the
    headline decode speedup: it is the workload the decode fast path
    (batch ``decode_many`` + store cache) was built for, and the served
    bytes are verified against the corpus.

    Every timed pipeline is verified in the same run: factor streams must be
    byte-identical to the seed's, and every decoded document must round-trip
    to the original corpus.  When ``output_json`` is given the raw numbers
    are appended to that JSON file so the perf trajectory accumulates
    machine-readable points.
    """
    import random as random_module

    scale = scale or current_scale()
    collection = collection if collection is not None else gov_collection(scale)
    documents = [document.content for document in collection]
    total_bytes = sum(len(document) for document in documents)

    config = DictionaryConfig(
        size=scale.dictionary_sizes[dictionary_label],
        sample_size=scale.default_sample_size,
    )
    dictionary = build_dictionary(collection, config)
    encoder = PairEncoder(scheme)

    # ------------------------------------------------------------------
    # Encode: frozen seed pipeline vs fast path vs parallel pipeline
    # ------------------------------------------------------------------
    seed_factorizer = SeedFactorizer(dictionary)
    seed_blobs: List[bytes] = []

    def run_seed_encode() -> None:
        seed_blobs.clear()
        seed_blobs.extend(
            seed_factorizer.encode(document, encoder) for document in documents
        )

    seed_factorizer.encode(documents[0], encoder)  # warm the lazy key levels
    seed_encode_elapsed = _best_of(rounds, run_seed_encode)

    fast_factorizer = RlzFactorizer(dictionary)
    fast_blobs: List[bytes] = []

    def run_fast_encode() -> None:
        fast_blobs.clear()
        fast_blobs.extend(
            encoder.encode_streams(*fast_factorizer.factorize_streams(document))
            for document in documents
        )

    fast_factorizer.factorize_streams(documents[0])  # warm the index build
    fast_encode_elapsed = _best_of(rounds, run_fast_encode)

    streams_identical = seed_blobs == fast_blobs

    pool_workers = workers if workers is not None else (os.cpu_count() or 1)
    pipeline = ParallelCompressor(dictionary, scheme=scheme, workers=pool_workers)
    parallel_blobs: List[bytes] = []

    def run_parallel_encode() -> None:
        parallel_blobs.clear()
        parallel_blobs.extend(pipeline.encode_documents(documents))

    parallel_encode_elapsed = _best_of(rounds, run_parallel_encode)
    parallel_identical = parallel_blobs == fast_blobs

    # ------------------------------------------------------------------
    # Decode, single pass: frozen seed loop vs batch decode_many
    # ------------------------------------------------------------------
    streams = [encoder.decode_streams(blob) for blob in fast_blobs]

    seed_decoded: List[bytes] = []

    def run_seed_decode() -> None:
        seed_decoded.clear()
        seed_decoded.extend(
            seed_decode_pairs(positions, lengths, dictionary)
            for positions, lengths in streams
        )

    seed_decode_pairs(*streams[0], dictionary)  # symmetric warm-up
    seed_decode_elapsed = _best_of(rounds, run_seed_decode)

    fast_decoded: List[bytes] = []

    def run_fast_decode() -> None:
        fast_decoded.clear()
        fast_decoded.extend(decode_many(streams, dictionary))

    decode_many(streams[:1], dictionary)  # warm the decode table
    fast_decode_elapsed = _best_of(rounds, run_fast_decode)

    roundtrip_ok = fast_decoded == documents and seed_decoded == documents

    # ------------------------------------------------------------------
    # Decode, serving workload: shuffled repeated-access query log.
    # Both sides serve the identical log from in-memory streams (disk I/O
    # excluded from both): seed decodes every request; the fast side runs
    # the store's serving semantics — an LRU of decoded documents
    # (move-to-end on hit, evict-oldest on overflow, exactly as
    # ``RlzStore._cache_lookup``/``_cache_store`` do) with misses going
    # through the batch decoder.  Served bytes are verified below.
    # ------------------------------------------------------------------
    from collections import OrderedDict

    access_log = list(range(len(documents))) * serving_repeats
    random_module.Random(0).shuffle(access_log)
    serving_bytes = total_bytes * serving_repeats

    seed_served: List[bytes] = []

    def run_seed_serving() -> None:
        seed_served.clear()
        seed_served.extend(
            seed_decode_pairs(*streams[index], dictionary) for index in access_log
        )

    seed_serving_elapsed = _best_of(rounds, run_seed_serving)

    fast_served: List[bytes] = []

    def run_fast_serving() -> None:
        fast_served.clear()
        cache: "OrderedDict[int, bytes]" = OrderedDict()
        for index in access_log:
            document = cache.get(index)
            if document is None:
                document = decode_many([streams[index]], dictionary)[0]
                cache[index] = document
                if len(cache) > cache_size:
                    cache.popitem(last=False)
            else:
                cache.move_to_end(index)
            fast_served.append(document)

    fast_serving_elapsed = _best_of(rounds, run_fast_serving)
    serving_ok = (
        fast_served == seed_served
        and all(fast_served[i] == documents[index] for i, index in enumerate(access_log))
    )

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------
    encode_speedup = (
        seed_encode_elapsed / fast_encode_elapsed if fast_encode_elapsed else 0.0
    )
    parallel_speedup = (
        seed_encode_elapsed / parallel_encode_elapsed if parallel_encode_elapsed else 0.0
    )
    single_pass_speedup = (
        seed_decode_elapsed / fast_decode_elapsed if fast_decode_elapsed else 0.0
    )
    serving_speedup = (
        seed_serving_elapsed / fast_serving_elapsed if fast_serving_elapsed else 0.0
    )

    table = ResultTable(
        title="Fast path: encode/decode throughput vs the frozen seed",
        headers=["Pipeline", "Seconds", "MB/s", "Speedup vs seed"],
    )
    table.add_row("encode/seed", seed_encode_elapsed, _throughput(total_bytes, seed_encode_elapsed), 1.0)
    table.add_row("encode/fast", fast_encode_elapsed, _throughput(total_bytes, fast_encode_elapsed), encode_speedup)
    table.add_row(
        f"encode/parallel-{pipeline.workers}",
        parallel_encode_elapsed,
        _throughput(total_bytes, parallel_encode_elapsed),
        parallel_speedup,
    )
    table.add_row("decode/seed-pass", seed_decode_elapsed, _throughput(total_bytes, seed_decode_elapsed), 1.0)
    table.add_row(
        "decode/fast-pass",
        fast_decode_elapsed,
        _throughput(total_bytes, fast_decode_elapsed),
        single_pass_speedup,
    )
    table.add_row(
        "decode/seed-serving",
        seed_serving_elapsed,
        _throughput(serving_bytes, seed_serving_elapsed),
        1.0,
    )
    table.add_row(
        "decode/fast-serving",
        fast_serving_elapsed,
        _throughput(serving_bytes, fast_serving_elapsed),
        serving_speedup,
    )
    table.add_note(f"factor streams byte-identical to seed: {streams_identical}")
    table.add_note(f"parallel blobs identical to serial: {parallel_identical}")
    table.add_note(f"round-trip verified against corpus: {roundtrip_ok}")
    table.add_note(f"served bytes verified against corpus: {serving_ok}")
    table.add_note(
        "headline decode speedup is the serving workload (query log, "
        f"x{serving_repeats} repeated access, store-semantics LRU of {cache_size} "
        "+ batch decoder, disk I/O excluded from both sides)"
    )
    table.add_note(
        f"collection: {collection.name}, {total_bytes:,} bytes, "
        f"{len(documents)} documents, dictionary {len(dictionary):,} bytes"
    )

    if output_json is not None:
        record = {
            "benchmark": "fastpath",
            "scale": scale.name,
            "collection": collection.name,
            "total_bytes": total_bytes,
            "documents": len(documents),
            "dictionary_bytes": len(dictionary),
            "scheme": scheme,
            "rounds": rounds,
            "encode": {
                "seed_seconds": seed_encode_elapsed,
                "fast_seconds": fast_encode_elapsed,
                "parallel_seconds": parallel_encode_elapsed,
                "parallel_workers": pipeline.workers,
                "seed_mb_per_s": _throughput(total_bytes, seed_encode_elapsed),
                "fast_mb_per_s": _throughput(total_bytes, fast_encode_elapsed),
                "speedup": encode_speedup,
            },
            "decode": {
                "seed_pass_seconds": seed_decode_elapsed,
                "fast_pass_seconds": fast_decode_elapsed,
                "single_pass_speedup": single_pass_speedup,
                "seed_serving_seconds": seed_serving_elapsed,
                "fast_serving_seconds": fast_serving_elapsed,
                "serving_repeats": serving_repeats,
                "cache_size": cache_size,
                "seed_serving_mb_per_s": _throughput(serving_bytes, seed_serving_elapsed),
                "fast_serving_mb_per_s": _throughput(serving_bytes, fast_serving_elapsed),
                "speedup": serving_speedup,
            },
            "verified": {
                "streams_identical": streams_identical,
                "parallel_identical": parallel_identical,
                "roundtrip_ok": roundtrip_ok,
                "serving_ok": serving_ok,
            },
        }
        path = _append_json_record(output_json, record)
        table.add_note(f"JSON record appended to {path}")

    return table


def _append_json_record(output_json: str | Path, record: dict) -> Path:
    """Append ``record`` to the (list-valued) JSON history at ``output_json``."""
    path = Path(output_json)
    path.parent.mkdir(parents=True, exist_ok=True)
    history: List[dict] = []
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
            history = existing if isinstance(existing, list) else [existing]
        except json.JSONDecodeError:
            history = []
    history.append(record)
    path.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    return path


def large_dictionary_benchmark(
    collection: Optional[DocumentCollection] = None,
    dictionary_bytes: int = (1 << 20) + (1 << 18),
    query_bytes: int = (1 << 20) + (1 << 18),
    scheme: str = "ZZ",
    rounds: int = 2,
    output_json: Optional[str | Path] = None,
) -> ResultTable:
    """Encode against a multi-MB dictionary: compact jump index vs the seed.

    The PR-1 jump-start index was a Python dict gated at 1 MiB of dictionary,
    so the multi-MB dictionaries the paper's RLZ design actually targets fell
    back to a binary search over the full key array for every factor.  This
    experiment builds a dictionary *above* the old gate (default 1.25 MiB),
    verifies the compact jump index is active — ``jump_index_kind`` must be
    ``"compact"``, i.e. no silent fallback — and measures the current fast
    path against the frozen :class:`SeedFactorizer` on the same documents,
    asserting byte-identical factor streams in the same run.

    Records are appended to the same JSON history as
    :func:`fastpath_benchmark` with ``"benchmark": "fastpath-large-dict"``;
    the frozen seed implementations in this module are untouched, so numbers
    remain comparable across PRs.
    """
    from ..corpus import generate_gov_collection

    if dictionary_bytes <= 1 << 20:
        raise ValueError(
            "large_dictionary_benchmark exists to exercise dictionaries above "
            f"the old 1 MiB gate; got {dictionary_bytes} bytes"
        )
    if collection is None:
        # A dedicated collection ~2.5x the dictionary so uniform sampling has
        # something to sample (cached corpora at small scales are too small).
        document_size = 18 * 1024
        num_documents = max(8, (dictionary_bytes * 5 // 2) // document_size)
        collection = generate_gov_collection(
            num_documents=num_documents,
            target_document_size=document_size,
            seed=13,
        )
    documents: List[bytes] = []
    total = 0
    for document in collection:
        documents.append(document.content)
        total += len(document.content)
        if total >= query_bytes:
            break
    config = DictionaryConfig(size=dictionary_bytes, sample_size=1024)
    dictionary = build_dictionary(collection, config)
    if len(dictionary) <= 1 << 20:
        raise ValueError(
            f"collection too small: sampled dictionary is {len(dictionary)} bytes"
        )
    encoder = PairEncoder(scheme)

    seed_factorizer = SeedFactorizer(dictionary)
    seed_streams: List[Tuple[List[int], List[int]]] = []

    def run_seed() -> None:
        seed_streams.clear()
        seed_streams.extend(
            seed_factorizer.factorize_streams(document) for document in documents
        )

    seed_factorizer.factorize_streams(documents[0])  # warm the lazy key levels
    seed_elapsed = _best_of(rounds, run_seed)

    fast_factorizer = RlzFactorizer(dictionary)
    fast_streams: List[Tuple[List[int], List[int]]] = []

    def run_fast() -> None:
        fast_streams.clear()
        fast_streams.extend(
            fast_factorizer.factorize_streams(document) for document in documents
        )

    fast_factorizer.factorize_streams(documents[0])  # warm the index build
    fast_elapsed = _best_of(rounds, run_fast)

    suffix_array = dictionary.suffix_array
    jump_kind = suffix_array.jump_index_kind
    jump_active = jump_kind == "compact"
    streams_identical = fast_streams == seed_streams
    blobs = [
        encoder.encode_streams(positions, lengths) for positions, lengths in fast_streams
    ]
    decoded = decode_many(
        [encoder.decode_streams(blob) for blob in blobs], dictionary
    )
    roundtrip_ok = decoded == documents
    stats = suffix_array.acceleration_stats()
    jump_bytes_per_dict_byte = stats["jump_nbytes"] / len(dictionary)
    # What the same mapping would cost as the PR-1 hash dicts (measured
    # ~120 B per distinct key), for the memory-model comparison.
    dict_estimate = stats["jump_entries"] * 120
    speedup = seed_elapsed / fast_elapsed if fast_elapsed else 0.0

    table = ResultTable(
        title="Large-dictionary encode: compact jump index vs the frozen seed",
        headers=["Pipeline", "Seconds", "MB/s", "Speedup vs seed"],
    )
    table.add_row("encode/seed", seed_elapsed, _throughput(total, seed_elapsed), 1.0)
    table.add_row("encode/fast", fast_elapsed, _throughput(total, fast_elapsed), speedup)
    table.add_note(f"dictionary: {len(dictionary):,} bytes (> 1 MiB gate)")
    table.add_note(f"jump-start active (compact, no fallback): {jump_active}")
    table.add_note(f"factor streams byte-identical to seed: {streams_identical}")
    table.add_note(f"round-trip verified against corpus: {roundtrip_ok}")
    table.add_note(
        f"jump index: {stats['jump_entries']:,} keys in {stats['jump_nbytes']:,} bytes "
        f"({jump_bytes_per_dict_byte:.1f} B/dict byte; the PR-1 dicts would need "
        f"~{dict_estimate:,} bytes)"
    )
    table.add_note(
        f"queries: {len(documents)} documents, {total:,} bytes, scheme {scheme}"
    )

    if output_json is not None:
        record = {
            "benchmark": "fastpath-large-dict",
            "collection": collection.name,
            "total_bytes": total,
            "documents": len(documents),
            "dictionary_bytes": len(dictionary),
            "scheme": scheme,
            "rounds": rounds,
            "encode": {
                "seed_seconds": seed_elapsed,
                "fast_seconds": fast_elapsed,
                "seed_mb_per_s": _throughput(total, seed_elapsed),
                "fast_mb_per_s": _throughput(total, fast_elapsed),
                "speedup": speedup,
            },
            "jump_index": {
                "kind": jump_kind,
                "entries": stats["jump_entries"],
                "nbytes": stats["jump_nbytes"],
                "bytes_per_dictionary_byte": jump_bytes_per_dict_byte,
                "dict_estimate_nbytes": dict_estimate,
            },
            "verified": {
                "jump_active": jump_active,
                "streams_identical": streams_identical,
                "roundtrip_ok": roundtrip_ok,
            },
        }
        path = _append_json_record(output_json, record)
        table.add_note(f"JSON record appended to {path}")

    return table


def vectorized_benchmark(
    collection: Optional[DocumentCollection] = None,
    corpus_bytes: int = 32 << 20,
    dictionary_bytes: int = 8 << 20,
    rounds: int = 1,
    scale_label: str = "custom",
    output_json: Optional[str | Path] = None,
) -> ResultTable:
    """Single-bisect match engine vs the scalar accelerated loop.

    The vectorized engine (:meth:`repro.suffix.SuffixArray.match_stream`)
    resolves each factor with one lcp-aware binary search over its
    jump-start interval and batches cold jump-index probes through
    ``get_batch``; the scalar loop refines the interval key level by key
    level with one probe per factor.  Both are exact, so this experiment
    asserts byte-identical ``(positions, lengths)`` streams in the same
    run that it measures the speedup — the acceptance gate for the
    fast-path PR is the recorded ``speedup`` at paper scale.

    Records are appended to the same JSON history as
    :func:`fastpath_benchmark` with ``"benchmark": "fastpath-vectorized"``
    and a ``scale`` label from the load-testing taxonomy
    (:mod:`repro.bench.loadgen`); the frozen seed baselines are untouched.
    """
    from ..corpus import generate_gov_collection

    if collection is None:
        document_size = 18 * 1024
        num_documents = max(8, corpus_bytes // document_size)
        collection = generate_gov_collection(
            num_documents=num_documents,
            target_document_size=document_size,
            seed=42,
        )
    documents = [bytes(document.content) for document in collection]
    total_bytes = sum(len(document) for document in documents)

    config = DictionaryConfig(size=dictionary_bytes, sample_size=1024)
    dictionary = build_dictionary(collection, config)
    factorizer = RlzFactorizer(dictionary)
    suffix_array = dictionary.suffix_array

    scalar_streams: List[Tuple[List[int], List[int]]] = []
    engine_streams: List[Tuple[List[int], List[int]]] = []

    def run_scalar() -> None:
        scalar_streams.clear()
        scalar_streams.extend(
            factorizer.factorize_streams(document) for document in documents
        )

    def run_engine() -> None:
        engine_streams.clear()
        engine_streams.extend(
            factorizer.factorize_streams(document) for document in documents
        )

    try:
        suffix_array.vectorize = False
        scalar_elapsed = _best_of(rounds, run_scalar)
        suffix_array.vectorize = True
        engine_elapsed = _best_of(rounds, run_engine)
    finally:
        suffix_array.vectorize = None  # back to automatic routing

    identical = scalar_streams == engine_streams
    if not identical:
        raise AssertionError(
            "vectorized engine diverged from the scalar factorization"
        )
    probe = suffix_array.probe_cache_info()
    stats = suffix_array.acceleration_stats()

    scalar_mbs = _throughput(total_bytes, scalar_elapsed)
    engine_mbs = _throughput(total_bytes, engine_elapsed)
    speedup = scalar_elapsed / engine_elapsed if engine_elapsed > 0 else 0.0

    table = ResultTable(
        title="Vectorized factorization engine vs the scalar accelerated loop",
        headers=["Pipeline", "Seconds", "MB/s", "Speedup"],
    )
    table.add_row("encode/scalar", scalar_elapsed, scalar_mbs, 1.0)
    table.add_row("encode/vectorized", engine_elapsed, engine_mbs, speedup)
    table.add_note(
        f"corpus {total_bytes / 1e6:.1f} MB over {len(documents)} documents, "
        f"dictionary {len(dictionary) / 1e6:.1f} MB "
        f"(jump index: {suffix_array.jump_index_kind})"
    )
    table.add_note("factor streams byte-identical: True (asserted in-run)")
    table.add_note(
        f"batch probes: {probe['batch_hits']} hits / "
        f"{probe['batch_misses']} misses; scalar probe cache: "
        f"{probe['hits']} hits / {probe['misses']} misses"
    )

    if output_json is not None:
        record = {
            "benchmark": "fastpath-vectorized",
            "scale": scale_label,
            "collection": collection.name,
            "documents": len(documents),
            "corpus_bytes": total_bytes,
            "dictionary_bytes": len(dictionary),
            "rounds": rounds,
            "jump_index_kind": suffix_array.jump_index_kind,
            "scalar": {"seconds": scalar_elapsed, "mb_per_s": scalar_mbs},
            "vectorized": {"seconds": engine_elapsed, "mb_per_s": engine_mbs},
            "speedup": speedup,
            "verified": identical,
            "probe_cache": probe,
            "scalar_nbytes": stats["scalar_nbytes"],
        }
        path = _append_json_record(output_json, record)
        table.add_note(f"JSON record appended to {path}")

    return table
