"""Retrieval-rate measurement.

The paper reports retrieval speed in documents per second under two access
patterns (sequential and query log), wall-clock, on a machine where the
collections do not fit in memory and caches are dropped between runs.  At
reproduction scale everything fits in the page cache, so measured wall-clock
time alone would miss the disk behaviour that dominates the paper's numbers.
Each measurement therefore combines:

* the measured CPU time spent locating, reading and decoding documents, and
* the simulated I/O time charged to the store's :class:`DiskModel`.

``docs_per_second`` uses the combined time (the closest analogue of the
paper's wall-clock figure); ``cpu_docs_per_second`` and
``io_seconds`` are also reported so the two components can be inspected
separately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, Sequence

__all__ = ["RetrievalMeasurement", "measure_retrieval"]


class _DocumentStore(Protocol):
    """Minimal protocol every store in :mod:`repro.storage` satisfies."""

    def get(self, doc_id: int) -> bytes: ...

    @property
    def disk(self): ...  # pragma: no cover - structural typing only


@dataclass(frozen=True)
class RetrievalMeasurement:
    """Outcome of replaying one access pattern against one store."""

    requests: int
    bytes_retrieved: int
    cpu_seconds: float
    io_seconds: float

    @property
    def total_seconds(self) -> float:
        """CPU plus simulated I/O time."""
        return self.cpu_seconds + self.io_seconds

    @property
    def docs_per_second(self) -> float:
        """Documents per second including simulated disk time."""
        if self.total_seconds == 0:
            return 0.0
        return self.requests / self.total_seconds

    @property
    def cpu_docs_per_second(self) -> float:
        """Documents per second counting CPU (decode) time only."""
        if self.cpu_seconds == 0:
            return 0.0
        return self.requests / self.cpu_seconds


def measure_retrieval(store: _DocumentStore, requests: Sequence[int]) -> RetrievalMeasurement:
    """Replay ``requests`` (a list of document IDs) against ``store``."""
    disk = store.disk
    disk.reset()
    retrieved_bytes = 0
    start = time.perf_counter()
    for doc_id in requests:
        retrieved_bytes += len(store.get(doc_id))
    cpu_seconds = time.perf_counter() - start
    io_seconds = disk.elapsed
    # The store's get() path already spent a little real time on file reads;
    # that cost is part of cpu_seconds and is negligible next to the model.
    return RetrievalMeasurement(
        requests=len(requests),
        bytes_retrieved=retrieved_bytes,
        cpu_seconds=cpu_seconds,
        io_seconds=io_seconds,
    )
