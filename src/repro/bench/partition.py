"""Partitioned-serving benchmark: shards that own their arc vs replicas.

PR 5's cluster fans out over *replicas*: every server stores the whole
container, so a fleet of N costs N times the disk/page-cache footprint.
A *partitioned* fleet (``repro partition``) stores each document exactly
once — each shard's container holds only the doc ids its arc of the
consistent-hash ring owns — so the fleet footprint stays ~1x no matter
how many shards serve it.

This experiment measures what that trade buys and costs on one box:

* **footprint** — total container bytes a 2-replica fleet stores vs a
  2-way and a 4-way partition of the same collection;
* **throughput** — the same shuffled repeated-access query log replayed
  through a :class:`ClusterClient` over each fleet (``get_many`` batch
  fan-out), plus a sequential ``get`` loop and a full ``iter_documents``
  sweep (per-shard SCAN merge) per fleet.

Every pipeline is byte-verified against the corpus and a JSON record
(``"benchmark": "fastpath-partition"``) is appended to the same history
as the other fast-path experiments; the frozen seed baselines in
:mod:`repro.bench.fastpath` are untouched.
"""

from __future__ import annotations

import random
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..api import (
    ArchiveConfig,
    CacheSpec,
    DictionarySpec,
    EncodingSpec,
    PartitionSpec,
    RlzArchive,
)
from ..corpus.document import DocumentCollection
from ..serve import BackgroundServer, ClusterClient, build_partitioned_archives
from .corpora import gov_collection
from .fastpath import _append_json_record
from .reporting import ResultTable
from .scale import BenchScale, current_scale

__all__ = ["partition_benchmark"]


def _base_config(scale: BenchScale, dictionary_label: str, scheme: str, cache: int):
    return dict(
        dictionary=DictionarySpec(
            size=scale.dictionary_sizes[dictionary_label],
            sample_size=scale.default_sample_size,
        ),
        encoding=EncodingSpec(scheme=scheme),
        cache=CacheSpec(tier="lru", capacity=cache),
    )


def partition_benchmark(
    collection: Optional[DocumentCollection] = None,
    scale: Optional[BenchScale] = None,
    dictionary_label: str = "1.0",
    scheme: str = "ZZ",
    partition_ways: Sequence[int] = (2, 4),
    replica_count: int = 2,
    serving_repeats: int = 2,
    cache_capacity: int = 128,
    pipeline_window: int = 32,
    output_json: Optional[str | Path] = None,
) -> ResultTable:
    """Replica fleet vs 2/4-way partitioned fleets: footprint + throughput.

    Builds one full container and 2/4-way partitions of the same
    collection in a temporary directory, serves each fleet with one
    :class:`BackgroundServer` per container, replays the same shuffled
    query log through a :class:`ClusterClient` over each, and
    byte-verifies every pipeline.  Optionally appends a machine-readable
    record to ``output_json``.
    """
    scale = scale or current_scale()
    collection = collection if collection is not None else gov_collection(scale)
    contents = {document.doc_id: document.content for document in collection}

    base = _base_config(scale, dictionary_label, scheme, cache_capacity)
    doc_ids = sorted(contents)
    access_log = doc_ids * serving_repeats
    random.Random(0).shuffle(access_log)
    requests = len(access_log)
    serving_bytes = sum(len(contents[doc_id]) for doc_id in access_log)
    expected_batch = [contents[doc_id] for doc_id in access_log]
    expected_sweep = [(doc_id, contents[doc_id]) for doc_id in doc_ids]
    # The sequential-get leg is a sample, not the whole log: one socket
    # round trip per request is the slow shape the batch path replaces.
    get_sample = access_log[: max(1, min(len(access_log), 64))]
    verified: Dict[str, bool] = {}

    def rate(elapsed: float) -> float:
        return requests / elapsed if elapsed > 0 else 0.0

    def run_fleet(name: str, paths: List[Path], labels: List[str]):
        """Serve one container per path and replay the log; return timings."""
        servers = [BackgroundServer(path, ArchiveConfig(**base)) for path in paths]
        try:
            endpoints = []
            for label, background in zip(labels, servers):
                host, port = background.start()
                prefix = f"{label}@" if label else ""
                endpoints.append(f"{prefix}{host}:{port}")
            with ClusterClient(
                endpoints, pipeline_window=pipeline_window
            ) as cluster:
                start = time.perf_counter()
                served = cluster.get_many(access_log)
                batch_elapsed = time.perf_counter() - start
                verified[f"{name}_batch_identical"] = served == expected_batch

                start = time.perf_counter()
                sampled = [cluster.get(doc_id) for doc_id in get_sample]
                get_elapsed = time.perf_counter() - start
                verified[f"{name}_get_identical"] = sampled == [
                    contents[doc_id] for doc_id in get_sample
                ]

                start = time.perf_counter()
                swept = list(cluster.iter_documents())
                sweep_elapsed = time.perf_counter() - start
                verified[f"{name}_sweep_identical"] = swept == expected_sweep
            return batch_elapsed, get_elapsed, sweep_elapsed
        finally:
            for background in servers:
                try:
                    background.stop()
                except Exception:
                    pass

    fleets = []
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        full = tmp_path / "full.rlz"
        RlzArchive.build(collection, ArchiveConfig(**base), full).close()
        full_bytes = full.stat().st_size

        # -- replica fleet: every server stores the whole container -------
        replica_paths = [full] * replica_count
        fleets.append(
            (
                f"replicas-{replica_count}",
                full_bytes * replica_count,
                [""] * replica_count,
                replica_paths,
            )
        )

        # -- partitioned fleets: each shard stores only its arc -----------
        for ways in partition_ways:
            config = ArchiveConfig(**base, partition=PartitionSpec(shards=ways))
            shard_paths = build_partitioned_archives(
                collection, config, tmp_path / f"part{ways}"
            )
            stored = sum(path.stat().st_size for path in shard_paths.values())
            fleets.append(
                (
                    f"partitioned-{ways}",
                    stored,
                    list(shard_paths),
                    list(shard_paths.values()),
                )
            )

        runs = []
        for name, stored, labels, paths in fleets:
            batch_elapsed, get_elapsed, sweep_elapsed = run_fleet(
                name, paths, labels
            )
            runs.append((name, stored, batch_elapsed, get_elapsed, sweep_elapsed))

    table = ResultTable(
        title="Partitioned serving: shard-owned arcs vs full replicas",
        headers=[
            "Fleet",
            "Stored MiB",
            "Footprint vs 1x",
            "get_many s",
            "Requests/s",
            "Sweep s",
        ],
    )
    runs_json = []
    for name, stored, batch_elapsed, get_elapsed, sweep_elapsed in runs:
        table.add_row(
            f"serve/{name}",
            stored / (1024 * 1024),
            stored / full_bytes,
            batch_elapsed,
            rate(batch_elapsed),
            sweep_elapsed,
        )
        runs_json.append(
            {
                "fleet": name,
                "stored_bytes": stored,
                "footprint_vs_single": stored / full_bytes,
                "get_many_seconds": batch_elapsed,
                "get_many_requests_per_s": rate(batch_elapsed),
                "sequential_get_seconds": get_elapsed,
                "sequential_get_requests": len(get_sample),
                "sweep_seconds": sweep_elapsed,
            }
        )

    all_ok = all(verified.values())
    replica_stored = runs[0][1]
    partition_stored = {name: stored for name, stored, *_ in runs[1:]}
    table.add_note(f"served bytes verified against corpus: {all_ok}")
    for name, stored in partition_stored.items():
        table.add_note(
            f"{name} stores {stored / replica_stored:.2f}x the "
            f"{runs[0][0]} fleet's bytes "
            f"({stored / full_bytes:.2f}x one container)"
        )
    table.add_note(
        f"query log: {requests} requests over {len(doc_ids)} documents "
        f"(x{serving_repeats}), {serving_bytes:,} bytes served per fleet"
    )

    if output_json is not None:
        record = {
            "benchmark": "fastpath-partition",
            "scale": scale.name,
            "collection": collection.name,
            "documents": len(doc_ids),
            "requests": requests,
            "serving_repeats": serving_repeats,
            "bytes_served": serving_bytes,
            "scheme": scheme,
            "cache_capacity": cache_capacity,
            "pipeline_window": pipeline_window,
            "replica_count": replica_count,
            "partition_ways": list(partition_ways),
            "single_container_bytes": full_bytes,
            "fleets": runs_json,
            "verified": verified,
        }
        json_path = _append_json_record(output_json, record)
        table.add_note(f"JSON record appended to {json_path}")

    return table
