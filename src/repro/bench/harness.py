"""Top-level benchmark harness.

:func:`run_all` regenerates every table and figure of the paper's evaluation
(plus the ablations) at the current benchmark scale and writes the rendered
tables to a results file.  It is what the ``repro-bench`` console script and
the ``benchmarks/`` pytest targets call.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..search import AccessPatterns
from .corpora import gov_collection, gov_collection_url_sorted, wiki_collection
from .experiments import (
    acceleration_ablation_table,
    baseline_retrieval_table,
    codec_ablation_table,
    dictionary_statistics_table,
    dynamic_update_table,
    length_histogram_figure,
    pruning_ablation_table,
    rlz_retrieval_table,
    sampling_policy_ablation_table,
)
from .fastpath import (
    fastpath_benchmark,
    large_dictionary_benchmark,
    vectorized_benchmark,
)
from .chaos import chaos_benchmark
from .cluster import cluster_benchmark
from .partition import partition_benchmark
from .network import network_benchmark
from .search import search_benchmark
from .reporting import ResultTable
from .scale import current_scale
from .serving import serving_benchmark

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]


def _table2() -> ResultTable:
    return dictionary_statistics_table(
        gov_collection(), "Table 2: dictionary statistics on the GOV2-like corpus"
    )


def _table3() -> ResultTable:
    return dictionary_statistics_table(
        wiki_collection(), "Table 3: dictionary statistics on the Wikipedia-like corpus"
    )


def _figure3() -> ResultTable:
    return length_histogram_figure(gov_collection())


def _table4() -> ResultTable:
    return rlz_retrieval_table(
        gov_collection(), "Table 4: rlz on the GOV2-like corpus (crawl order)"
    )


def _table5() -> ResultTable:
    return rlz_retrieval_table(
        gov_collection_url_sorted(),
        "Table 5: rlz on the URL-sorted GOV2-like corpus",
    )


def _table6() -> ResultTable:
    return baseline_retrieval_table(
        gov_collection(), "Table 6: baselines on the GOV2-like corpus (crawl order)"
    )


def _table7() -> ResultTable:
    return baseline_retrieval_table(
        gov_collection_url_sorted(),
        "Table 7: baselines on the URL-sorted GOV2-like corpus",
    )


def _table8() -> ResultTable:
    return rlz_retrieval_table(
        wiki_collection(), "Table 8: rlz on the Wikipedia-like corpus"
    )


def _table9() -> ResultTable:
    return baseline_retrieval_table(
        wiki_collection(), "Table 9: baselines on the Wikipedia-like corpus"
    )


def _table10() -> ResultTable:
    return dynamic_update_table(wiki_collection())


def _ablation_acceleration() -> ResultTable:
    return acceleration_ablation_table(gov_collection())


def _ablation_codecs() -> ResultTable:
    return codec_ablation_table(gov_collection())


def _ablation_sampling() -> ResultTable:
    return sampling_policy_ablation_table(gov_collection())


def _ablation_pruning() -> ResultTable:
    return pruning_ablation_table(gov_collection())


def _fastpath() -> ResultTable:
    return fastpath_benchmark()


def _fastpath_large_dict() -> ResultTable:
    return large_dictionary_benchmark()


def _fastpath_serving() -> ResultTable:
    return serving_benchmark()


def _fastpath_vectorized() -> ResultTable:
    # CI-friendly sizes; the paper-scale acceptance runs go through
    # repro.bench.vectorized_benchmark with explicit corpus/dictionary.
    return vectorized_benchmark(corpus_bytes=4 << 20, dictionary_bytes=2 << 20)


def _fastpath_network() -> ResultTable:
    return network_benchmark()


def _fastpath_cluster() -> ResultTable:
    return cluster_benchmark()


def _fastpath_chaos() -> ResultTable:
    return chaos_benchmark()


def _fastpath_partition() -> ResultTable:
    return partition_benchmark()


def _fastpath_search() -> ResultTable:
    return search_benchmark()


#: Registry of experiment id -> function producing its result table.
EXPERIMENTS: Dict[str, Callable[[], ResultTable]] = {
    "table2": _table2,
    "table3": _table3,
    "figure3": _figure3,
    "table4": _table4,
    "table5": _table5,
    "table6": _table6,
    "table7": _table7,
    "table8": _table8,
    "table9": _table9,
    "table10": _table10,
    "ablation-acceleration": _ablation_acceleration,
    "ablation-codecs": _ablation_codecs,
    "ablation-sampling": _ablation_sampling,
    "ablation-pruning": _ablation_pruning,
    "fastpath": _fastpath,
    "fastpath-large-dict": _fastpath_large_dict,
    "fastpath-serving": _fastpath_serving,
    "fastpath-vectorized": _fastpath_vectorized,
    "fastpath-network": _fastpath_network,
    "fastpath-cluster": _fastpath_cluster,
    "fastpath-chaos": _fastpath_chaos,
    "fastpath-partition": _fastpath_partition,
    "fastpath-search": _fastpath_search,
}


def run_experiment(name: str) -> ResultTable:
    """Run one experiment by id (e.g. ``"table4"``)."""
    if name not in EXPERIMENTS:
        valid = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; valid ids: {valid}")
    return EXPERIMENTS[name]()


def run_all(
    output_path: Optional[str | Path] = None,
    experiments: Optional[List[str]] = None,
    echo: bool = True,
) -> List[ResultTable]:
    """Run the requested experiments (default: all) and collect their tables."""
    names = experiments or list(EXPERIMENTS)
    scale = current_scale()
    tables: List[ResultTable] = []
    for name in names:
        table = run_experiment(name)
        table.add_note(f"benchmark scale: {scale.name}")
        tables.append(table)
        if echo:
            table.print()
        if output_path is not None:
            table.save(output_path)
    return tables
