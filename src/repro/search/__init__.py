"""Search-engine substrate: inverted index, BM25, query-log access patterns.

The paper uses the Zettair search engine and the TREC 2009 Million Query
Track topics only to produce a realistic "query log" document request
pattern; this package provides a from-scratch equivalent (tokenizer,
inverted index, BM25 ranking, synthetic query generation) plus the request
list builders the retrieval benchmarks consume.
"""

from .access_patterns import AccessPatterns, query_log_pattern, sequential_pattern
from .inverted_index import InvertedIndex, Posting, SearchResult
from .query_log import QueryLogBuilder, generate_queries
from .tokenizer import STOPWORDS, strip_markup, tokenize_text

__all__ = [
    "AccessPatterns",
    "InvertedIndex",
    "Posting",
    "QueryLogBuilder",
    "STOPWORDS",
    "SearchResult",
    "generate_queries",
    "query_log_pattern",
    "sequential_pattern",
    "strip_markup",
    "tokenize_text",
]
