"""Search-engine substrate: inverted index, BM25, query-log access patterns.

The paper uses the Zettair search engine and the TREC 2009 Million Query
Track topics only to produce a realistic "query log" document request
pattern; this package provides a from-scratch equivalent (tokenizer,
inverted index, BM25 ranking, synthetic query generation) plus the request
list builders the retrieval benchmarks consume.

:mod:`repro.search.serving` adds the serving-side substrate: the on-disk
:class:`~repro.search.serving.PostingsStore` index the ``SEARCH`` wire
opcode ranks against, built at archive-build time from the same tokenizer
so local and remote searches agree term for term.
"""

from .access_patterns import AccessPatterns, query_log_pattern, sequential_pattern
from .inverted_index import (
    InvertedIndex,
    Posting,
    SearchResult,
    bm25_idf,
    rank_scores,
)
from .query_log import QueryLogBuilder, generate_queries
from .serving import (
    GlobalStats,
    PostingsStore,
    ScoredDoc,
    build_postings,
    index_sidecar_path,
    write_postings,
)
from .tokenizer import STOPWORDS, strip_markup, tokenize_text, tokenize_with_offsets

__all__ = [
    "AccessPatterns",
    "GlobalStats",
    "InvertedIndex",
    "Posting",
    "PostingsStore",
    "QueryLogBuilder",
    "STOPWORDS",
    "ScoredDoc",
    "SearchResult",
    "bm25_idf",
    "build_postings",
    "generate_queries",
    "index_sidecar_path",
    "query_log_pattern",
    "rank_scores",
    "sequential_pattern",
    "strip_markup",
    "tokenize_text",
    "tokenize_with_offsets",
    "write_postings",
]
