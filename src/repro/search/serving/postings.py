"""The on-disk inverted index served next to a compressed archive.

A :class:`PostingsStore` is one sidecar file (``<container>.idx``) written
at build time and loaded read-only at serving time:

    +-----------------------------------------------------------------+
    | magic "RPIX0001"                                                |
    | u64 doc_count · u64 total_doc_length · u64 term_count           |
    | u64 postings_len · u32 postings_crc                             |
    | u64 doclens_len  · u32 doclens_crc                              |
    | u32 header_crc  (over everything above)                         |
    +-----------------------------------------------------------------+
    | postings section: per term, sorted by term —                    |
    |   uvarint len(term) · term UTF-8 · uvarint df ·                 |
    |   df × (uvarint doc-id delta · uvarint tf · uvarint hit offset) |
    +-----------------------------------------------------------------+
    | doc-length section: per document, sorted by doc id —            |
    |   uvarint count · count × (uvarint doc-id delta · uvarint len)  |
    +-----------------------------------------------------------------+

Posting lists store doc-id *deltas* (ascending ids, first delta is the id
itself) so they varint-compress well; each posting also records the byte
offset of the term's first occurrence in the raw document, which is what
lets the server decode only a window around a hit
(:meth:`repro.storage.RlzStore.get_window`) instead of the whole document
when building query-biased snippets.

Integrity and atomicity mirror the RPRC2 container: every section carries
a CRC32 checked at open (a flipped bit raises
:class:`~repro.errors.CorruptArchiveError`, never a silently wrong
ranking), and writes go to a same-directory temporary that is fsync'd and
``os.replace``\\ d into place, so a crashed build leaves no torn index.

Scoring is doc-at-a-time Okapi BM25 over the shard-local lists, using
either the store's own statistics (a single unpartitioned archive) or
caller-provided :class:`GlobalStats` (a sharded fleet, after the stats
exchange) — the maths is shared with
:class:`repro.search.InvertedIndex`, so the two rankings agree exactly.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ...errors import CorruptArchiveError, SearchError, StorageError
from ..inverted_index import bm25_idf
from ..tokenizer import tokenize_text, tokenize_with_offsets

__all__ = [
    "GlobalStats",
    "PostingsStore",
    "ScoredDoc",
    "build_postings",
    "index_sidecar_path",
    "write_postings",
]

_MAGIC = b"RPIX0001"
_COUNTS = struct.Struct("<QQQ")
_SECTION = struct.Struct("<QI")
_U32 = struct.Struct("<I")


def index_sidecar_path(container_path: Union[str, Path]) -> Path:
    """Where the search index for a container lives: ``<container>.idx``."""
    container_path = Path(container_path)
    return container_path.with_name(container_path.name + ".idx")


@dataclass(frozen=True)
class GlobalStats:
    """Collection-wide statistics a sharded SEARCH is scored against.

    ``num_documents`` and ``total_doc_length`` cover the *whole*
    collection; ``document_frequencies`` maps each query term to its
    collection-wide df.  Plugging these into the shard-local scorer makes
    per-shard BM25 scores identical to what one big index over every
    document would compute — which is what lets a fan-out merge produce a
    globally correct ranking.
    """

    num_documents: int
    total_doc_length: int
    document_frequencies: Dict[str, int]


@dataclass(frozen=True)
class ScoredDoc:
    """One ranked hit from a :class:`PostingsStore` scoring pass.

    ``hit_offset`` is the smallest first-occurrence byte offset among the
    query terms that matched this document — the anchor a query-biased
    snippet window is centred on.
    """

    doc_id: int
    score: float
    hit_offset: int


# ----------------------------------------------------------------------
# Varints
# ----------------------------------------------------------------------
def _write_uvarint(buffer: bytearray, value: int) -> None:
    while value >= 0x80:
        buffer.append((value & 0x7F) | 0x80)
        value >>= 7
    buffer.append(value)


def _read_uvarint(blob: bytes, offset: int) -> Tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if offset >= len(blob):
            raise StorageError("postings index truncated inside a varint")
        byte = blob[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 63:
            raise StorageError("postings index varint overflows 64 bits")


# ----------------------------------------------------------------------
# Building and writing
# ----------------------------------------------------------------------
def build_postings(
    documents: Iterable[Tuple[int, Union[str, bytes]]],
) -> "PostingsStore":
    """Tokenise ``documents`` (``(doc_id, text)`` pairs) into an in-memory
    :class:`PostingsStore` ready to be written or queried.

    Text may be ``str`` or UTF-8 ``bytes`` (undecodable bytes are
    replaced, exactly like :meth:`repro.corpus.Document.text`).  Hit
    offsets are recorded as *byte* offsets into the raw document, so the
    serving side can hand them straight to
    :meth:`~repro.storage.RlzStore.get_window`.
    """
    postings: Dict[str, List[Tuple[int, int, int]]] = {}
    doc_lengths: Dict[int, int] = {}
    for doc_id, content in documents:
        doc_id = int(doc_id)
        if doc_id < 0:
            raise SearchError(f"cannot index negative doc id {doc_id}")
        if doc_id in doc_lengths:
            raise SearchError(f"document {doc_id} is already indexed")
        if isinstance(content, (bytes, bytearray)):
            text = bytes(content).decode("utf-8", errors="replace")
        else:
            text = content
        pairs = tokenize_with_offsets(text)
        doc_lengths[doc_id] = len(pairs)
        ascii_text = text.isascii()
        frequencies: Dict[str, Tuple[int, int]] = {}
        for term, char_offset in pairs:
            tf, first = frequencies.get(term, (0, char_offset))
            frequencies[term] = (tf + 1, first)
        for term, (tf, char_offset) in frequencies.items():
            if ascii_text:
                byte_offset = char_offset
            else:
                byte_offset = len(text[:char_offset].encode("utf-8"))
            postings.setdefault(term, []).append((doc_id, tf, byte_offset))
    for term_postings in postings.values():
        term_postings.sort()
    return PostingsStore(postings, doc_lengths)


def write_postings(
    documents: Iterable[Tuple[int, Union[str, bytes]]],
    path: Union[str, Path],
) -> Path:
    """Build an index over ``documents`` and persist it at ``path``."""
    return build_postings(documents).write(path)


class PostingsStore:
    """An inverted index with persistent form and BM25 scoring.

    Construct through :func:`build_postings` (from documents) or
    :meth:`open` (from a sidecar file); the constructor itself takes the
    already-assembled postings and doc-length maps.
    """

    def __init__(
        self,
        postings: Dict[str, List[Tuple[int, int, int]]],
        doc_lengths: Dict[int, int],
    ) -> None:
        self._postings = postings
        self._doc_lengths = doc_lengths
        self._total_doc_length = sum(doc_lengths.values())

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def num_documents(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_lengths)

    @property
    def num_terms(self) -> int:
        """Number of distinct terms."""
        return len(self._postings)

    @property
    def total_doc_length(self) -> int:
        """Sum of document lengths in terms (the avgdl numerator)."""
        return self._total_doc_length

    def document_frequency(self, term: str) -> int:
        """Number of indexed documents containing ``term``."""
        return len(self._postings.get(term, ()))

    def postings(self, term: str) -> Sequence[Tuple[int, int, int]]:
        """The ``(doc_id, tf, first_hit_offset)`` list for ``term``."""
        return self._postings.get(term, ())

    def doc_length(self, doc_id: int) -> int:
        """Length in terms of one indexed document."""
        return self._doc_lengths[doc_id]

    def term_stats(self, query: str) -> Tuple[int, int, Dict[str, int]]:
        """The stats-exchange leg of a sharded search.

        Returns this shard's ``(num_documents, total_doc_length,
        {term: df})`` for the query's terms; a cluster client sums these
        across shards into the :class:`GlobalStats` the scoring leg uses.
        """
        frequencies = {
            term: self.document_frequency(term)
            for term in set(tokenize_text(query))
        }
        return self.num_documents, self._total_doc_length, frequencies

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def search(
        self,
        query: str,
        top_k: int = 20,
        k1: float = 1.2,
        b: float = 0.75,
        global_stats: Optional[GlobalStats] = None,
    ) -> List[ScoredDoc]:
        """Doc-at-a-time BM25 over the shard-local postings lists.

        Without ``global_stats`` the store's own counters drive idf and
        avgdl (correct for an unpartitioned archive); with them, scores
        match a single index over the whole collection exactly.  Ties
        break by ascending doc id, the same rule as
        :func:`repro.search.rank_scores`.
        """
        if top_k <= 0:
            raise SearchError("top_k must be positive")
        terms = tokenize_text(query)
        if not terms:
            return []
        if global_stats is None:
            num_documents = self.num_documents
            total_length = self._total_doc_length
            frequency_of = self.document_frequency
        else:
            num_documents = global_stats.num_documents
            total_length = global_stats.total_doc_length
            frequency_of = lambda term: global_stats.document_frequencies.get(term, 0)
        average_length = (total_length / num_documents if num_documents else 0.0) or 1.0

        # One cursor per query term occurrence (duplicated terms score
        # twice, as they do in InvertedIndex.search); the merge visits
        # candidate documents in ascending doc-id order and, within one
        # document, accumulates term contributions in query order — the
        # identical floating-point summation order to the term-at-a-time
        # in-memory index, which is what keeps scores bit-equal.
        cursors: List[list] = []  # [idf, postings, next-position], mutable
        for term in terms:
            idf = bm25_idf(num_documents, frequency_of(term))
            if idf == 0.0:
                continue
            term_postings = self.postings(term)
            if term_postings:
                cursors.append([idf, term_postings, 0])
        results: List[ScoredDoc] = []
        while True:
            current = None
            for idf, term_postings, position in cursors:
                if position < len(term_postings):
                    doc_id = term_postings[position][0]
                    if current is None or doc_id < current:
                        current = doc_id
            if current is None:
                break
            score = 0.0
            hit_offset = None
            length_norm = 1.0 - b + b * (self._doc_lengths[current] / average_length)
            for cursor in cursors:
                idf, term_postings, position = cursor
                if position >= len(term_postings):
                    continue
                doc_id, tf, offset = term_postings[position]
                if doc_id != current:
                    continue
                tf_component = tf * (k1 + 1.0) / (tf + k1 * length_norm)
                score += idf * tf_component
                if hit_offset is None or offset < hit_offset:
                    hit_offset = offset
                cursor[2] = position + 1
            results.append(ScoredDoc(current, score, hit_offset or 0))
        results.sort(key=lambda hit: (-hit.score, hit.doc_id))
        return results[:top_k]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def write(self, path: Union[str, Path]) -> Path:
        """Persist the index at ``path`` (atomic tmp+fsync+replace)."""
        path = Path(path)
        postings_blob = bytearray()
        for term in sorted(self._postings):
            encoded = term.encode("utf-8")
            _write_uvarint(postings_blob, len(encoded))
            postings_blob += encoded
            term_postings = self._postings[term]
            _write_uvarint(postings_blob, len(term_postings))
            previous = 0
            for doc_id, tf, offset in term_postings:
                _write_uvarint(postings_blob, doc_id - previous)
                _write_uvarint(postings_blob, tf)
                _write_uvarint(postings_blob, offset)
                previous = doc_id
        doclens_blob = bytearray()
        _write_uvarint(doclens_blob, len(self._doc_lengths))
        previous = 0
        for doc_id in sorted(self._doc_lengths):
            _write_uvarint(doclens_blob, doc_id - previous)
            _write_uvarint(doclens_blob, self._doc_lengths[doc_id])
            previous = doc_id

        header = bytearray(_MAGIC)
        header += _COUNTS.pack(
            len(self._doc_lengths), self._total_doc_length, len(self._postings)
        )
        header += _SECTION.pack(len(postings_blob), zlib.crc32(postings_blob))
        header += _SECTION.pack(len(doclens_blob), zlib.crc32(doclens_blob))
        header += _U32.pack(zlib.crc32(header))

        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            with tmp.open("wb") as handle:
                handle.write(header)
                handle.write(postings_blob)
                handle.write(doclens_blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        return path

    @classmethod
    def open(cls, path: Union[str, Path]) -> "PostingsStore":
        """Load a sidecar index, verifying every section checksum."""
        path = Path(path)
        blob = path.read_bytes()
        head_size = len(_MAGIC) + _COUNTS.size + 2 * _SECTION.size + _U32.size
        if len(blob) < head_size:
            raise StorageError(f"{path} is too short to be a postings index")
        if blob[: len(_MAGIC)] != _MAGIC:
            raise StorageError(f"{path} is not a postings index (bad magic)")
        header = blob[: head_size - _U32.size]
        (header_crc,) = _U32.unpack_from(blob, head_size - _U32.size)
        if zlib.crc32(header) != header_crc:
            raise CorruptArchiveError(
                f"postings index {path}: header failed its CRC32 check"
            )
        offset = len(_MAGIC)
        doc_count, total_doc_length, term_count = _COUNTS.unpack_from(blob, offset)
        offset += _COUNTS.size
        postings_len, postings_crc = _SECTION.unpack_from(blob, offset)
        offset += _SECTION.size
        doclens_len, doclens_crc = _SECTION.unpack_from(blob, offset)
        if len(blob) != head_size + postings_len + doclens_len:
            raise StorageError(
                f"postings index {path}: recorded sections need "
                f"{head_size + postings_len + doclens_len} bytes, "
                f"file has {len(blob)}"
            )
        postings_blob = blob[head_size : head_size + postings_len]
        doclens_blob = blob[head_size + postings_len :]
        if zlib.crc32(postings_blob) != postings_crc:
            raise CorruptArchiveError(
                f"postings index {path}: postings section failed its CRC32 check"
            )
        if zlib.crc32(doclens_blob) != doclens_crc:
            raise CorruptArchiveError(
                f"postings index {path}: doc-length section failed its CRC32 check"
            )

        postings: Dict[str, List[Tuple[int, int, int]]] = {}
        position = 0
        for _ in range(term_count):
            length, position = _read_uvarint(postings_blob, position)
            if position + length > len(postings_blob):
                raise StorageError(f"postings index {path}: truncated term")
            term = postings_blob[position : position + length].decode("utf-8")
            position += length
            df, position = _read_uvarint(postings_blob, position)
            term_postings: List[Tuple[int, int, int]] = []
            doc_id = 0
            for _ in range(df):
                delta, position = _read_uvarint(postings_blob, position)
                doc_id += delta
                tf, position = _read_uvarint(postings_blob, position)
                hit, position = _read_uvarint(postings_blob, position)
                term_postings.append((doc_id, tf, hit))
            postings[term] = term_postings
        if position != len(postings_blob):
            raise StorageError(f"postings index {path}: trailing postings bytes")

        doc_lengths: Dict[int, int] = {}
        position = 0
        count, position = _read_uvarint(doclens_blob, position)
        doc_id = 0
        for _ in range(count):
            delta, position = _read_uvarint(doclens_blob, position)
            doc_id += delta
            length, position = _read_uvarint(doclens_blob, position)
            doc_lengths[doc_id] = length
        if position != len(doclens_blob):
            raise StorageError(f"postings index {path}: trailing doc-length bytes")
        if len(doc_lengths) != doc_count:
            raise StorageError(
                f"postings index {path}: doc-length table holds "
                f"{len(doc_lengths)} documents, header says {doc_count}"
            )
        store = cls(postings, doc_lengths)
        if store.total_doc_length != total_doc_length:
            raise StorageError(
                f"postings index {path}: doc lengths sum to "
                f"{store.total_doc_length}, header says {total_doc_length}"
            )
        return store
