"""Search *serving*: persistent posting lists next to compressed archives.

The in-memory :class:`repro.search.InvertedIndex` exists to generate
query-log access patterns; this package turns search into a first-class
serving workload.  :func:`build_postings` tokenises a collection at build
time and writes a :class:`PostingsStore` — an on-disk inverted index
(varint-delta posting lists, doc-length table, CRC-checked sections,
atomic tmp+fsync+replace writes like the RPRC2 container) that rides as a
sidecar file next to the ``.rlz`` container it indexes.  Servers load the
sidecar read-only and answer the protocol-v5 ``SEARCH`` opcode with
doc-at-a-time BM25 ranking against it; cluster clients fan a query out to
every shard, exchange global collection statistics so per-shard scores
are *exactly* what one big index would compute, and merge the per-shard
top-k into one globally ordered result.
"""

from .postings import (
    GlobalStats,
    PostingsStore,
    ScoredDoc,
    build_postings,
    index_sidecar_path,
    write_postings,
)

__all__ = [
    "GlobalStats",
    "PostingsStore",
    "ScoredDoc",
    "build_postings",
    "index_sidecar_path",
    "write_postings",
]
