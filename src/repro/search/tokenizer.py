"""Tokenisation for the search-engine substrate.

The search engine exists to reproduce the paper's *query-log access pattern*
(documents requested in the order a ranked retrieval system would fetch
them), so the tokenizer is a standard lightweight web-text tokenizer: HTML
tags are stripped, text is lower-cased, and alphanumeric runs become terms.
A small stopword list keeps the index size and scoring behaviour sensible.

Tag stripping is robust to real-web markup damage: nested tags
(``<a <b>>``) are stripped innermost-first until the text is stable, and a
tag left unterminated by a truncated document (``... <a href=``) is
stripped to end-of-text so attribute soup never leaks into the vocabulary.
A bare ``<`` used as text (``5 < 6``) is left alone.  Tags are replaced by
*equal-length* runs of spaces, so character offsets in the stripped text
are valid in the original — :func:`tokenize_with_offsets` relies on this
to hand the postings builder hit positions for snippet extraction.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Tuple

__all__ = ["tokenize_text", "tokenize_with_offsets", "strip_markup", "STOPWORDS"]

_TAG_PATTERN = re.compile(r"<[^<>]*>")
#: An unterminated tag open: ``<`` followed by a name/slash/bang character
#: and then no closing ``>`` before end-of-text.  The name-character
#: requirement keeps a bare ``<`` used as text (``5 < 6``) intact.
_UNTERMINATED_TAG = re.compile(r"<[/!a-zA-Z][^<>]*\Z")
_TERM_PATTERN = re.compile(r"[a-z0-9]+")

#: Minimal English stopword list (high-frequency terms that add noise to
#: BM25 scoring and bloat postings lists).
STOPWORDS = frozenset(
    """a an and are as at be by for from has he in is it its of on that the to
    was were will with this these those or not but they you your our their""".split()
)


def _blank(match: "re.Match[str]") -> str:
    return " " * len(match.group(0))


def strip_markup(text: str) -> str:
    """Remove HTML/XML tags, leaving the visible text.

    Each tag is replaced by spaces of the same length, so the result has
    exactly the length of the input and every surviving character keeps
    its original offset.  Nested tags are stripped innermost-first until
    no tag remains; a trailing unterminated tag is stripped to the end.
    """
    previous = None
    while previous != text:
        previous = text
        text = _TAG_PATTERN.sub(_blank, text)
    return _UNTERMINATED_TAG.sub(_blank, text)


def _offset_preserving_lower(text: str) -> str:
    """Lower-case ``text`` without changing its length.

    ``str.lower`` maps a handful of characters (e.g. ``İ``) to multi-
    character sequences, which would shift every following offset; those
    rare characters are left unchanged instead (they are not term
    characters anyway — terms are ASCII alphanumeric runs).
    """
    lowered = text.lower()
    if len(lowered) == len(text):
        return lowered
    characters = []
    for character in text:
        low = character.lower()
        characters.append(low if len(low) == 1 else character)
    return "".join(characters)


def tokenize_text(text: str, remove_stopwords: bool = True) -> List[str]:
    """Tokenise ``text`` into lower-case terms.

    Markup is stripped first so that tag and attribute names do not dominate
    the vocabulary of web documents.
    """
    stripped = strip_markup(text).lower()
    terms = _TERM_PATTERN.findall(stripped)
    if remove_stopwords:
        return [term for term in terms if term not in STOPWORDS]
    return terms


def tokenize_with_offsets(
    text: str, remove_stopwords: bool = True
) -> List[Tuple[str, int]]:
    """Tokenise ``text`` into ``(term, character_offset)`` pairs.

    Offsets index into the *original* text (markup blanking and lowering
    are both length-preserving), so the postings builder can record where
    a term first occurs and snippet extraction can decode just the bytes
    around a hit.
    """
    stripped = _offset_preserving_lower(strip_markup(text))
    pairs = []
    for match in _TERM_PATTERN.finditer(stripped):
        term = match.group()
        if remove_stopwords and term in STOPWORDS:
            continue
        pairs.append((term, match.start()))
    return pairs


def terms_of(documents: Iterable[str]) -> List[List[str]]:
    """Tokenise an iterable of documents (convenience for bulk indexing)."""
    return [tokenize_text(document) for document in documents]
