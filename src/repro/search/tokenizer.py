"""Tokenisation for the search-engine substrate.

The search engine exists to reproduce the paper's *query-log access pattern*
(documents requested in the order a ranked retrieval system would fetch
them), so the tokenizer is a standard lightweight web-text tokenizer: HTML
tags are stripped, text is lower-cased, and alphanumeric runs become terms.
A small stopword list keeps the index size and scoring behaviour sensible.
"""

from __future__ import annotations

import re
from typing import Iterable, List

__all__ = ["tokenize_text", "strip_markup", "STOPWORDS"]

_TAG_PATTERN = re.compile(r"<[^>]+>")
_TERM_PATTERN = re.compile(r"[a-z0-9]+")

#: Minimal English stopword list (high-frequency terms that add noise to
#: BM25 scoring and bloat postings lists).
STOPWORDS = frozenset(
    """a an and are as at be by for from has he in is it its of on that the to
    was were will with this these those or not but they you your our their""".split()
)


def strip_markup(text: str) -> str:
    """Remove HTML/XML tags, leaving the visible text."""
    return _TAG_PATTERN.sub(" ", text)


def tokenize_text(text: str, remove_stopwords: bool = True) -> List[str]:
    """Tokenise ``text`` into lower-case terms.

    Markup is stripped first so that tag and attribute names do not dominate
    the vocabulary of web documents.
    """
    stripped = strip_markup(text).lower()
    terms = _TERM_PATTERN.findall(stripped)
    if remove_stopwords:
        return [term for term in terms if term not in STOPWORDS]
    return terms


def terms_of(documents: Iterable[str]) -> List[List[str]]:
    """Tokenise an iterable of documents (convenience for bulk indexing)."""
    return [tokenize_text(document) for document in documents]
