"""In-memory inverted index with BM25 ranking.

This is the substrate standing in for the Zettair search engine the paper
uses to generate its query-log document requests: collections are indexed,
queries are run, and the ranked document IDs drive the retrieval benchmark.
The index is a classic term -> postings-list structure with document
frequencies and within-document term frequencies, scored with Okapi BM25.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..corpus.document import DocumentCollection
from ..errors import SearchError
from .tokenizer import tokenize_text

__all__ = ["Posting", "InvertedIndex", "SearchResult", "bm25_idf", "rank_scores"]


def bm25_idf(num_documents: int, document_frequency: int) -> float:
    """The BM25 inverse document frequency for one term.

    Shared by the in-memory index and the serving-side
    :class:`repro.search.serving.PostingsStore` scorer: when a sharded
    fleet plugs *global* statistics into this same expression, per-shard
    scores are bit-identical to a single-index run.
    """
    if document_frequency == 0:
        return 0.0
    return math.log(
        1.0 + (num_documents - document_frequency + 0.5) / (document_frequency + 0.5)
    )


def rank_scores(scores: Dict[int, float], top_k: int) -> List[SearchResult]:
    """Order accumulated BM25 scores into the final top-``top_k`` ranking.

    The sort key is ``(-score, doc_id)``: equal-score documents rank by
    ascending doc id, deterministically, regardless of accumulation order.
    Every ranked read path (``search``, ``search_many``, the serving-side
    scorer) funnels through this one function so tie-breaking can never
    drift between them.
    """
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return [SearchResult(doc_id=doc_id, score=score) for doc_id, score in ranked[:top_k]]


@dataclass(frozen=True)
class Posting:
    """One (document, term frequency) pair in a postings list."""

    doc_id: int
    term_frequency: int


@dataclass(frozen=True)
class SearchResult:
    """A ranked search hit."""

    doc_id: int
    score: float


class InvertedIndex:
    """Term -> postings inverted index with BM25 scoring.

    Parameters
    ----------
    k1, b:
        Standard BM25 parameters; defaults (1.2, 0.75) are the common
        textbook values.
    """

    def __init__(self, k1: float = 1.2, b: float = 0.75) -> None:
        self._postings: Dict[str, List[Posting]] = {}
        self._doc_lengths: Dict[int, int] = {}
        self._k1 = k1
        self._b = b

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def add_document(self, doc_id: int, text: str) -> None:
        """Tokenise and index one document."""
        if doc_id in self._doc_lengths:
            raise SearchError(f"document {doc_id} is already indexed")
        terms = tokenize_text(text)
        self._doc_lengths[doc_id] = len(terms)
        frequencies: Dict[str, int] = {}
        for term in terms:
            frequencies[term] = frequencies.get(term, 0) + 1
        for term, frequency in frequencies.items():
            self._postings.setdefault(term, []).append(Posting(doc_id, frequency))

    @classmethod
    def build(cls, collection: DocumentCollection, k1: float = 1.2, b: float = 0.75) -> "InvertedIndex":
        """Index every document of ``collection``."""
        index = cls(k1=k1, b=b)
        for document in collection:
            index.add_document(document.doc_id, document.text())
        return index

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def num_documents(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_lengths)

    @property
    def num_terms(self) -> int:
        """Number of distinct terms in the index."""
        return len(self._postings)

    @property
    def average_document_length(self) -> float:
        """Mean document length in terms."""
        if not self._doc_lengths:
            return 0.0
        return sum(self._doc_lengths.values()) / len(self._doc_lengths)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, ()))

    def postings(self, term: str) -> Sequence[Posting]:
        """The postings list for ``term`` (empty if unindexed)."""
        return self._postings.get(term, ())

    def vocabulary(self) -> List[str]:
        """All indexed terms (sorted)."""
        return sorted(self._postings)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def _idf(self, term: str) -> float:
        return bm25_idf(self.num_documents, self.document_frequency(term))

    def search(self, query: str, top_k: int = 20) -> List[SearchResult]:
        """Rank documents for ``query`` with BM25; return the top ``top_k``."""
        if top_k <= 0:
            raise SearchError("top_k must be positive")
        terms = tokenize_text(query)
        if not terms:
            return []
        average_length = self.average_document_length or 1.0
        scores: Dict[int, float] = {}
        for term in terms:
            idf = self._idf(term)
            if idf == 0.0:
                continue
            for posting in self.postings(term):
                length_norm = 1.0 - self._b + self._b * (
                    self._doc_lengths[posting.doc_id] / average_length
                )
                tf_component = (
                    posting.term_frequency * (self._k1 + 1.0)
                    / (posting.term_frequency + self._k1 * length_norm)
                )
                scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + idf * tf_component
        return rank_scores(scores, top_k)

    def search_many(self, queries: Iterable[str], top_k: int = 20) -> List[List[SearchResult]]:
        """Run a batch of queries."""
        return [self.search(query, top_k=top_k) for query in queries]
