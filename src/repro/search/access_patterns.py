"""Document access patterns used by the retrieval experiments.

Section 4 uses two request lists of 100,000 document IDs each:

* **sequential** — consecutive document IDs, modelling large-scale batch
  processing (and rewarding stores with good locality);
* **query log** — the concatenated top-20 results of real queries, modelling
  interactive retrieval (no locality, popularity skew).

:func:`sequential_pattern` and :func:`query_log_pattern` produce the two
lists for a collection, scaled to its size.
"""

from __future__ import annotations

from typing import List, Optional

from ..corpus.document import DocumentCollection
from ..errors import SearchError
from .inverted_index import InvertedIndex
from .query_log import QueryLogBuilder, generate_queries

__all__ = ["sequential_pattern", "query_log_pattern", "AccessPatterns"]


def sequential_pattern(collection: DocumentCollection, num_requests: int = 100_000) -> List[int]:
    """A list of ``num_requests`` document IDs in collection order (wrapping)."""
    doc_ids = collection.doc_ids()
    if not doc_ids:
        raise SearchError("cannot build an access pattern for an empty collection")
    requests: List[int] = []
    while len(requests) < num_requests:
        take = min(len(doc_ids), num_requests - len(requests))
        requests.extend(doc_ids[:take])
    return requests


def query_log_pattern(
    collection: DocumentCollection,
    num_requests: int = 100_000,
    num_queries: int = 2000,
    results_per_query: int = 20,
    seed: int = 0,
    index: Optional[InvertedIndex] = None,
) -> List[int]:
    """A query-log-driven request list built with the BM25 search engine."""
    if index is None:
        index = InvertedIndex.build(collection)
    queries = generate_queries(collection, num_queries=num_queries, seed=seed)
    builder = QueryLogBuilder(
        index, results_per_query=results_per_query, max_requests=num_requests
    )
    requests = builder.build(queries)
    if not requests:
        raise SearchError("query log produced no requests (empty index?)")
    # The paper caps at 100,000 requests; if the synthetic log is shorter,
    # repeat it (preserving its skew) until the cap is reached.
    while len(requests) < num_requests:
        requests.extend(requests[: num_requests - len(requests)])
    return requests[:num_requests]


class AccessPatterns:
    """Bundle of the two access patterns for one collection."""

    def __init__(
        self,
        collection: DocumentCollection,
        num_requests: int = 100_000,
        num_queries: int = 2000,
        seed: int = 0,
    ) -> None:
        self._collection = collection
        self._num_requests = num_requests
        self._num_queries = num_queries
        self._seed = seed
        self._sequential: Optional[List[int]] = None
        self._query_log: Optional[List[int]] = None
        self._index: Optional[InvertedIndex] = None

    @property
    def index(self) -> InvertedIndex:
        """The search index (built lazily, shared by both patterns)."""
        if self._index is None:
            self._index = InvertedIndex.build(self._collection)
        return self._index

    @property
    def sequential(self) -> List[int]:
        """The sequential request list."""
        if self._sequential is None:
            self._sequential = sequential_pattern(self._collection, self._num_requests)
        return self._sequential

    @property
    def query_log(self) -> List[int]:
        """The query-log request list."""
        if self._query_log is None:
            self._query_log = query_log_pattern(
                self._collection,
                num_requests=self._num_requests,
                num_queries=self._num_queries,
                seed=self._seed,
                index=self.index,
            )
        return self._query_log
