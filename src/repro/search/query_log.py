"""Query-log generation (the Million Query Track substitute).

The paper drives its "query log" access pattern with 40,000 topics from the
TREC 2009 Million Query Track, run through Zettair: for each query the top
20 document IDs are appended to a request list capped at 100,000 entries.
The track's topics are not redistributable here, so queries are synthesised
from the collection's own vocabulary with a Zipf-like popularity skew, which
produces the property the experiment actually depends on: a long request
list of document IDs with skewed popularity and no spatial locality.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..corpus.document import DocumentCollection
from ..errors import SearchError
from .inverted_index import InvertedIndex
from .tokenizer import tokenize_text

__all__ = ["generate_queries", "QueryLogBuilder"]


def generate_queries(
    collection: DocumentCollection,
    num_queries: int = 1000,
    terms_per_query: tuple[int, int] = (1, 4),
    seed: int = 0,
) -> List[str]:
    """Synthesise web-style queries from the collection's own text.

    Each query draws 1-4 terms from randomly chosen documents (favouring
    body text over markup because tokenisation strips tags), which mirrors
    how real query logs are dominated by terms that actually occur in the
    collection.
    """
    if len(collection) == 0:
        raise SearchError("cannot generate queries for an empty collection")
    if num_queries <= 0:
        raise SearchError("num_queries must be positive")
    rng = random.Random(seed)
    queries: List[str] = []
    documents = list(collection)
    while len(queries) < num_queries:
        document = rng.choice(documents)
        terms = tokenize_text(document.text())
        if not terms:
            continue
        count = rng.randint(*terms_per_query)
        query_terms = [rng.choice(terms) for _ in range(count)]
        queries.append(" ".join(query_terms))
    return queries


class QueryLogBuilder:
    """Build the paper's query-log document request list.

    The protocol follows Section 4: run each query, take the top
    ``results_per_query`` document IDs, concatenate them in query order and
    cap the list at ``max_requests`` entries.
    """

    def __init__(
        self,
        index: InvertedIndex,
        results_per_query: int = 20,
        max_requests: int = 100_000,
    ) -> None:
        if results_per_query <= 0:
            raise SearchError("results_per_query must be positive")
        if max_requests <= 0:
            raise SearchError("max_requests must be positive")
        self._index = index
        self._results_per_query = results_per_query
        self._max_requests = max_requests

    @property
    def index(self) -> InvertedIndex:
        """The search index queried to build the log."""
        return self._index

    def build(self, queries: Sequence[str]) -> List[int]:
        """Run ``queries`` and return the concatenated, capped request list."""
        requests: List[int] = []
        for query in queries:
            for result in self._index.search(query, top_k=self._results_per_query):
                requests.append(result.doc_id)
                if len(requests) >= self._max_requests:
                    return requests
        return requests
