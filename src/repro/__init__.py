"""repro — Relative Lempel-Ziv factorization for web-collection storage.

A from-scratch Python reproduction of

    Hoobin, Puglisi & Zobel,
    "Relative Lempel-Ziv Factorization for Efficient Storage and Retrieval
    of Web Collections", PVLDB 5(3), 2011.

The package is organised by subsystem:

* :mod:`repro.api` — the service facade: :class:`RlzArchive` /
  :class:`AsyncRlzArchive` serving fronts configured by one declarative
  :class:`ArchiveConfig`, all implementing the transport-agnostic
  :class:`ArchiveView` protocol;
* :mod:`repro.serve` — the network front: :class:`RlzServer` puts an
  archive behind a socket (framed binary protocol, backpressure, graceful
  shutdown) and :class:`RlzClient` / :class:`AsyncRlzClient` mirror the
  local :class:`ArchiveView` surface over the wire;
* :mod:`repro.core` — the RLZ compressor itself (dictionary sampling,
  suffix-array driven factorization, pair encodings, random-access decode);
* :mod:`repro.suffix` — suffix array construction and search;
* :mod:`repro.coding` — integer codecs (vbyte, u32, zlib, Elias, Simple-9,
  PForDelta);
* :mod:`repro.corpus` — synthetic GOV2-like and Wikipedia-like collections;
* :mod:`repro.storage` — on-disk stores with random access, pluggable
  decode-cache tiers, blocked baselines, and a disk latency model;
* :mod:`repro.baselines` — block-compressed and semi-static baselines;
* :mod:`repro.search` — the inverted-index search engine used to generate
  query-log access patterns;
* :mod:`repro.bench` — the experiment harness that regenerates the paper's
  tables and figures.

Quickstart::

    from repro import ArchiveConfig, RlzArchive, generate_gov_collection

    collection = generate_gov_collection(num_documents=200)
    archive = RlzArchive.build(collection, ArchiveConfig(), "crawl.rlz")
    print(archive.compression_percent())       # ~10-15 (% of original)
    text = archive.get(doc_id=0)               # random access
    texts = archive.get_many([0, 1, 2])        # batched random access

The pre-facade pipeline (:class:`RlzCompressor` → :meth:`RlzStore.write` →
:meth:`RlzStore.open`) remains fully supported for callers that need the
individual pieces.
"""

from .api import (
    ArchiveConfig,
    ArchiveView,
    AsyncArchiveView,
    AsyncRlzArchive,
    CacheSpec,
    DictionarySpec,
    EncodingSpec,
    ParallelSpec,
    PartitionSpec,
    RlzArchive,
    ServeSpec,
)
from .core import (
    CompressedCollection,
    CompressionReport,
    DictionaryConfig,
    Factor,
    Factorization,
    PairEncoder,
    RlzCompressor,
    RlzDictionary,
    RlzFactorizer,
    build_dictionary,
)
from .corpus import (
    Document,
    DocumentCollection,
    generate_gov_collection,
    generate_wikipedia_collection,
    url_sorted,
)
from .errors import (
    BenchmarkError,
    ConfigurationError,
    CorpusError,
    CorruptArchiveError,
    DeadlineExceededError,
    DecodingError,
    DictionaryError,
    EncodingError,
    FactorizationError,
    ProtocolError,
    ReproError,
    SearchError,
    ServerBusyError,
    StorageError,
    StoreClosedError,
    WrongShardError,
)
from .serve import (
    AsyncClusterClient,
    AsyncRlzClient,
    BackgroundServer,
    ClusterClient,
    RlzClient,
    RlzRouter,
    RlzServer,
    ShardMap,
)
from .storage import CacheTier, LruCache, NullCache, RlzStore, SharedMemoryCache
from .suffix import SuffixArray

__version__ = "1.3.0"

__all__ = [
    "ArchiveConfig",
    "ArchiveView",
    "AsyncArchiveView",
    "AsyncClusterClient",
    "AsyncRlzArchive",
    "AsyncRlzClient",
    "BackgroundServer",
    "BenchmarkError",
    "CacheSpec",
    "CacheTier",
    "ClusterClient",
    "CompressedCollection",
    "CompressionReport",
    "ConfigurationError",
    "CorpusError",
    "CorruptArchiveError",
    "DeadlineExceededError",
    "DecodingError",
    "DictionaryConfig",
    "DictionaryError",
    "DictionarySpec",
    "Document",
    "DocumentCollection",
    "EncodingError",
    "EncodingSpec",
    "Factor",
    "Factorization",
    "FactorizationError",
    "LruCache",
    "NullCache",
    "PairEncoder",
    "ParallelSpec",
    "PartitionSpec",
    "ProtocolError",
    "ReproError",
    "RlzArchive",
    "RlzClient",
    "RlzCompressor",
    "RlzDictionary",
    "RlzFactorizer",
    "RlzRouter",
    "RlzServer",
    "RlzStore",
    "SearchError",
    "ServeSpec",
    "ServerBusyError",
    "ShardMap",
    "SharedMemoryCache",
    "StorageError",
    "StoreClosedError",
    "SuffixArray",
    "WrongShardError",
    "build_dictionary",
    "generate_gov_collection",
    "generate_wikipedia_collection",
    "url_sorted",
    "__version__",
]
