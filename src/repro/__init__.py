"""repro — Relative Lempel-Ziv factorization for web-collection storage.

A from-scratch Python reproduction of

    Hoobin, Puglisi & Zobel,
    "Relative Lempel-Ziv Factorization for Efficient Storage and Retrieval
    of Web Collections", PVLDB 5(3), 2011.

The package is organised by subsystem:

* :mod:`repro.core` — the RLZ compressor itself (dictionary sampling,
  suffix-array driven factorization, pair encodings, random-access decode);
* :mod:`repro.suffix` — suffix array construction and search;
* :mod:`repro.coding` — integer codecs (vbyte, u32, zlib, Elias, Simple-9,
  PForDelta);
* :mod:`repro.corpus` — synthetic GOV2-like and Wikipedia-like collections;
* :mod:`repro.storage` — on-disk stores with random access, blocked
  baselines, and a disk latency model;
* :mod:`repro.baselines` — block-compressed and semi-static baselines;
* :mod:`repro.search` — the inverted-index search engine used to generate
  query-log access patterns;
* :mod:`repro.bench` — the experiment harness that regenerates the paper's
  tables and figures.

Quickstart::

    from repro import RlzCompressor, DictionaryConfig, generate_gov_collection

    collection = generate_gov_collection(num_documents=200)
    compressor = RlzCompressor(
        dictionary_config=DictionaryConfig(size=256 * 1024, sample_size=1024),
        scheme="ZV",
    )
    compressed = compressor.compress(collection)
    print(compressed.compression_ratio())        # ~10-15 (% of original)
    text = compressed.decode_document(doc_id=0)  # random access
"""

from .core import (
    CompressedCollection,
    CompressionReport,
    DictionaryConfig,
    Factor,
    Factorization,
    PairEncoder,
    RlzCompressor,
    RlzDictionary,
    RlzFactorizer,
    build_dictionary,
)
from .corpus import (
    Document,
    DocumentCollection,
    generate_gov_collection,
    generate_wikipedia_collection,
    url_sorted,
)
from .errors import (
    CorpusError,
    DecodingError,
    DictionaryError,
    EncodingError,
    FactorizationError,
    ReproError,
    SearchError,
    StorageError,
)
from .suffix import SuffixArray

__version__ = "1.0.0"

__all__ = [
    "CompressedCollection",
    "CompressionReport",
    "CorpusError",
    "DecodingError",
    "DictionaryConfig",
    "DictionaryError",
    "Document",
    "DocumentCollection",
    "EncodingError",
    "Factor",
    "Factorization",
    "FactorizationError",
    "PairEncoder",
    "ReproError",
    "RlzCompressor",
    "RlzDictionary",
    "RlzFactorizer",
    "SearchError",
    "StorageError",
    "SuffixArray",
    "build_dictionary",
    "generate_gov_collection",
    "generate_wikipedia_collection",
    "url_sorted",
    "__version__",
]
