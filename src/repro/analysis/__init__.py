"""Project-invariant static analysis for the repro codebase.

This package implements ``repro check``: an AST-based pass that walks the
``repro`` source tree and verifies invariants that ordinary unit tests cannot
see holistically — wire-protocol registry consistency, async purity of the
serving layer, lock discipline around shared mutable state, and public
API-surface drift.

The moving parts:

- :class:`~repro.analysis.core.Finding` — one diagnostic (check id,
  file, line, severity, message).
- :class:`~repro.analysis.core.Checker` — the protocol every checker
  implements (``check_id``, ``description``, ``run(project)``).
- :class:`~repro.analysis.core.Project` — the parsed source tree handed
  to checkers (one ``ast.parse`` per file, shared by all checkers).
- :func:`~repro.analysis.runner.run_checks` — loads the project, runs
  the registered checkers, applies ``# repro: ignore[check-id]``
  suppressions and the optional baseline file, and returns an
  :class:`~repro.analysis.runner.AnalysisReport`.

New checkers register themselves in ``repro.analysis.checks.ALL_CHECKERS``.
"""

from __future__ import annotations

from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    SourceModule,
    load_baseline,
    parse_suppressions,
    write_baseline,
)
from repro.analysis.runner import AnalysisReport, run_checks
from repro.analysis.checks import ALL_CHECKERS, default_checkers

__all__ = [
    "ALL_CHECKERS",
    "AnalysisReport",
    "Checker",
    "Finding",
    "Project",
    "SourceModule",
    "default_checkers",
    "load_baseline",
    "parse_suppressions",
    "run_checks",
    "write_baseline",
]
