"""Core datatypes for the static-analysis pass.

Everything here is deliberately dependency-free: checkers operate on plain
``ast`` trees and return :class:`Finding` values; the runner owns file
walking, suppression filtering, and baseline bookkeeping.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Protocol, Set, Tuple, runtime_checkable

__all__ = [
    "Checker",
    "Finding",
    "Project",
    "SourceModule",
    "load_baseline",
    "parse_suppressions",
    "write_baseline",
]

#: Matches ``# repro: ignore`` and ``# repro: ignore[check-a, check-b]``.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([^\]]*)\])?")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic emitted by a checker.

    ``path`` is POSIX-style and relative to the analysis root (the ``repro``
    package directory), so fingerprints are stable across machines.
    """

    path: str
    line: int
    check_id: str
    message: str
    severity: str = "error"

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def fingerprint(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers are deliberately excluded so that
        unrelated edits above a known finding do not un-baseline it."""
        return (self.check_id, self.path, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "check": self.check_id,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class SourceModule:
    """One parsed source file."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    #: line -> set of suppressed check ids, or None meaning "all checks".
    suppressions: Dict[int, Optional[Set[str]]] = field(default_factory=dict)

    def is_suppressed(self, line: int, check_id: str) -> bool:
        ids = self.suppressions.get(line, _MISSING)
        if ids is _MISSING:
            return False
        return ids is None or check_id in ids


_MISSING: object = object()


def parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Extract ``# repro: ignore[...]`` comments, keyed by 1-based line.

    A bare ``# repro: ignore`` suppresses every check on that line; the
    bracketed form suppresses only the listed check ids.
    """
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = match.group(1)
        if ids is None:
            out[lineno] = None
        else:
            parsed = {part.strip() for part in ids.split(",") if part.strip()}
            out[lineno] = parsed or None
    return out


class Project:
    """The parsed source tree handed to every checker.

    Each ``*.py`` file under ``root`` is parsed exactly once; checkers share
    the trees.  Files that fail to parse become ``parse-error`` findings
    rather than aborting the run.
    """

    def __init__(
        self,
        root: Path,
        modules: List[SourceModule],
        snapshot_path: Optional[Path] = None,
    ) -> None:
        self.root = root
        self.modules = modules
        self.snapshot_path = snapshot_path
        self.parse_failures: List[Finding] = []
        self._by_relpath = {module.relpath: module for module in modules}

    @classmethod
    def load(cls, root: Path, snapshot_path: Optional[Path] = None) -> "Project":
        root = Path(root)
        modules: List[SourceModule] = []
        failures: List[Finding] = []
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            relpath = path.relative_to(root).as_posix()
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                failures.append(
                    Finding(
                        path=relpath,
                        line=exc.lineno or 1,
                        check_id="parse-error",
                        message=f"file does not parse: {exc.msg}",
                    )
                )
                continue
            modules.append(
                SourceModule(
                    path=path,
                    relpath=relpath,
                    source=source,
                    tree=tree,
                    suppressions=parse_suppressions(source),
                )
            )
        project = cls(root, modules, snapshot_path=snapshot_path)
        project.parse_failures = failures
        return project

    def module(self, relpath: str) -> Optional[SourceModule]:
        return self._by_relpath.get(relpath)

    def iter_modules(self, prefix: str = "") -> Iterable[SourceModule]:
        for module in self.modules:
            if module.relpath.startswith(prefix):
                yield module


@runtime_checkable
class Checker(Protocol):
    """Every checker exposes an id, a one-line description, and ``run``."""

    check_id: str
    description: str

    def run(self, project: Project) -> Iterable[Finding]: ...


# ---------------------------------------------------------------------------
# Baseline files
# ---------------------------------------------------------------------------

BASELINE_VERSION = 1


def load_baseline(path: Path) -> List[Tuple[str, str, str]]:
    """Read a baseline file; returns the recorded fingerprints.

    Baselines identify findings by (check, path, message) — not line — so
    they survive unrelated edits.  An unreadable or wrong-version file raises
    ``ValueError`` so a stale baseline cannot silently mask findings.
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline file: {path}")
    out: List[Tuple[str, str, str]] = []
    for entry in data.get("findings", []):
        out.append((str(entry["check"]), str(entry["path"]), str(entry["message"])))
    return out


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    entries = [
        {"check": f.check_id, "path": f.path, "message": f.message}
        for f in sorted(findings)
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
