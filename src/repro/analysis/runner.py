"""Run the registered checkers over a source tree and report.

The runner owns everything around the checkers: loading/parsing the tree
once, filtering ``# repro: ignore[...]`` suppressions, applying the
baseline, and shaping the report the CLI renders (text or JSON).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.core import Checker, Finding, Project, load_baseline

__all__ = ["AnalysisReport", "default_root", "default_snapshot_path", "run_checks"]

JSON_SCHEMA_VERSION = 1


@dataclass
class AnalysisReport:
    """Outcome of one analysis run.

    ``findings`` are the *new* findings (not suppressed, not baselined) —
    the ones that should fail CI.
    """

    root: str
    checkers: List[str]
    findings: List[Finding]
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": JSON_SCHEMA_VERSION,
            "root": self.root,
            "checkers": list(self.checkers),
            "findings": [f.to_dict() for f in sorted(self.findings)],
            "counts": {
                "new": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": self.suppressed,
            },
        }

    def render_text(self) -> str:
        lines = []
        for finding in sorted(self.findings):
            lines.append(
                f"{finding.location}: {finding.severity}: "
                f"[{finding.check_id}] {finding.message}"
            )
        noun = "finding" if len(self.findings) == 1 else "findings"
        summary = f"{len(self.findings)} new {noun}"
        extras = []
        if self.baselined:
            extras.append(f"{len(self.baselined)} baselined")
        if self.suppressed:
            extras.append(f"{self.suppressed} suppressed")
        if extras:
            summary += f" ({', '.join(extras)})"
        lines.append(summary)
        return "\n".join(lines)


def default_root() -> Path:
    """The tree to analyse: ``src/repro`` when run from a checkout,
    otherwise the installed package directory."""
    checkout = Path("src") / "repro"
    if checkout.is_dir():
        return checkout
    return Path(__file__).resolve().parent.parent


def default_snapshot_path(root: Path) -> Optional[Path]:
    """Locate ``tests/test_api_surface.py`` next to the analysed tree."""
    candidates = (
        Path("tests") / "test_api_surface.py",
        Path(root).resolve().parent.parent / "tests" / "test_api_surface.py",
    )
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None


def run_checks(
    root: Path,
    checkers: Optional[Sequence[Checker]] = None,
    baseline_path: Optional[Path] = None,
    snapshot_path: Optional[Path] = None,
) -> AnalysisReport:
    if checkers is None:
        from repro.analysis.checks import default_checkers

        checkers = default_checkers()
    root = Path(root)
    if snapshot_path is None:
        snapshot_path = default_snapshot_path(root)
    project = Project.load(root, snapshot_path=snapshot_path)

    raw: List[Finding] = list(project.parse_failures)
    for checker in checkers:
        raw.extend(checker.run(project))

    suppressed = 0
    visible: List[Finding] = []
    for finding in raw:
        module = project.module(finding.path)
        if module is not None and module.is_suppressed(finding.line, finding.check_id):
            suppressed += 1
        else:
            visible.append(finding)

    baselined: List[Finding] = []
    if baseline_path is not None and Path(baseline_path).is_file():
        budget = Counter(load_baseline(Path(baseline_path)))
        remaining: List[Finding] = []
        for finding in visible:
            key = finding.fingerprint()
            if budget[key] > 0:
                budget[key] -= 1
                baselined.append(finding)
            else:
                remaining.append(finding)
        visible = remaining

    return AnalysisReport(
        root=str(root),
        checkers=[checker.check_id for checker in checkers],
        findings=visible,
        baselined=baselined,
        suppressed=suppressed,
    )
