"""Small AST helpers shared by the checkers."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "dotted_name",
    "flatten_add",
    "import_maps",
    "iter_scope",
]


def dotted_name(node: ast.expr) -> Optional[str]:
    """Render ``a.b.c`` for Name/Attribute chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def flatten_add(node: ast.expr) -> List[ast.expr]:
    """Flatten a ``a + b + c`` chain into its operand list."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return flatten_add(node.left) + flatten_add(node.right)
    return [node]


def iter_scope(func: ast.AST) -> Iterator[ast.AST]:
    """Yield the nodes lexically inside ``func``'s own body, without
    descending into nested ``def``/``async def``/``lambda`` scopes.

    This is what makes executor thunks (``run_in_executor(None, lambda: ...)``
    or a nested sync ``def`` handed to a thread pool) invisible to the
    async-purity checker: their bodies run off the event loop.
    """
    stack: List[ast.AST] = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def import_maps(tree: ast.Module) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Resolve local import aliases.

    Returns ``(root_alias, from_map)``: ``import time as t`` yields
    ``root_alias["t"] == "time"``; ``from time import sleep as s`` yields
    ``from_map["s"] == "time.sleep"``.
    """
    root_alias: Dict[str, str] = {}
    from_map: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                root_alias[local] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                from_map[local] = f"{node.module}.{alias.name}"
    return root_alias, from_map
