"""Wire-protocol registry consistency.

The protocol module is a bag of hand-maintained parallel registries: the
``Opcode`` byte namespace, the ``ERROR_CODES`` map onto ``repro.errors``
classes, and ``struct`` formats whose sizes are re-stated as integer
literals in the framing helpers (``_LEN.pack(5 + len(payload)) + ...``).
Each of those duplications is a place where an append-only edit can silently
collide; this checker cross-references them all.
"""

from __future__ import annotations

import ast
import struct as struct_mod
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.astutil import dotted_name, flatten_add
from repro.analysis.core import Finding, Project

__all__ = ["ProtocolRegistryChecker"]

CHECK_ID = "protocol-registry"

PROTOCOL_MODULE = "serve/protocol.py"
ERRORS_MODULE = "errors.py"
ERRORS_ROOT_CLASS = "ReproError"


class ProtocolRegistryChecker:
    check_id = CHECK_ID
    description = (
        "opcodes and wire error codes are unique, every repro.errors class "
        "has exactly one wire code, and struct sizes match length literals"
    )

    def run(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        proto = project.module(PROTOCOL_MODULE)
        if proto is None:
            return findings
        findings.extend(self._check_opcodes(proto.tree))
        struct_sizes = self._collect_struct_sizes(proto.tree, findings)
        findings.extend(self._check_length_literals(proto.tree, struct_sizes))
        errors_mod = project.module(ERRORS_MODULE)
        error_classes = (
            self._error_classes(errors_mod.tree) if errors_mod is not None else None
        )
        findings.extend(self._check_error_codes(proto.tree, error_classes, errors_mod))
        return findings

    # -- opcodes ----------------------------------------------------------
    def _check_opcodes(self, tree: ast.Module) -> Iterable[Finding]:
        opcode_class = _find_class(tree, "Opcode")
        if opcode_class is None:
            yield Finding(PROTOCOL_MODULE, 1, CHECK_ID, "Opcode class not found")
            return
        seen: Dict[int, str] = {}
        for stmt in opcode_class.body:
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if not (isinstance(stmt.value, ast.Constant) and isinstance(stmt.value.value, int)):
                continue
            name, value = target.id, stmt.value.value
            if not 0 <= value <= 0xFF:
                yield Finding(
                    PROTOCOL_MODULE,
                    stmt.lineno,
                    CHECK_ID,
                    f"Opcode.{name} = {value:#x} does not fit in one wire byte",
                )
            if value in seen:
                yield Finding(
                    PROTOCOL_MODULE,
                    stmt.lineno,
                    CHECK_ID,
                    f"Opcode.{name} reuses value {value:#04x} already assigned to "
                    f"Opcode.{seen[value]}",
                )
            else:
                seen[value] = name

    # -- error codes ------------------------------------------------------
    def _error_classes(self, errors_tree: ast.Module) -> Dict[str, int]:
        """Classes in errors.py transitively derived from ReproError
        (including the root), mapped to their definition line."""
        bases: Dict[str, List[str]] = {}
        lines: Dict[str, int] = {}
        for stmt in errors_tree.body:
            if isinstance(stmt, ast.ClassDef):
                bases[stmt.name] = [
                    b.id for b in stmt.bases if isinstance(b, ast.Name)
                ]
                lines[stmt.name] = stmt.lineno
        derived: Set[str] = {ERRORS_ROOT_CLASS} if ERRORS_ROOT_CLASS in bases else set()
        changed = True
        while changed:
            changed = False
            for name, base_names in bases.items():
                if name not in derived and any(b in derived for b in base_names):
                    derived.add(name)
                    changed = True
        return {name: lines[name] for name in derived}

    def _check_error_codes(
        self,
        proto_tree: ast.Module,
        error_classes: Optional[Dict[str, int]],
        errors_mod,
    ) -> Iterable[Finding]:
        registry = _find_assign(proto_tree, "ERROR_CODES")
        if registry is None or not isinstance(registry.value, ast.Dict):
            yield Finding(
                PROTOCOL_MODULE, 1, CHECK_ID, "ERROR_CODES dict literal not found"
            )
            return
        codes: Dict[int, str] = {}
        names: Dict[str, int] = {}
        for key, value in zip(registry.value.keys, registry.value.values):
            if key is None:
                continue
            key_name = dotted_name(key)
            cls_name = key_name.split(".")[-1] if key_name else "<?>"
            lineno = key.lineno
            if cls_name in names:
                yield Finding(
                    PROTOCOL_MODULE,
                    lineno,
                    CHECK_ID,
                    f"ERROR_CODES lists {cls_name} more than once",
                )
            names[cls_name] = lineno
            if not (isinstance(value, ast.Constant) and isinstance(value.value, int)):
                yield Finding(
                    PROTOCOL_MODULE,
                    lineno,
                    CHECK_ID,
                    f"ERROR_CODES[{cls_name}] is not an integer literal",
                )
                continue
            code = value.value
            if code in codes:
                yield Finding(
                    PROTOCOL_MODULE,
                    lineno,
                    CHECK_ID,
                    f"wire code {code} assigned to both {codes[code]} and {cls_name}",
                )
            else:
                codes[code] = cls_name
        if error_classes is None:
            return
        for cls_name, lineno in sorted(error_classes.items(), key=lambda kv: kv[1]):
            if cls_name not in names:
                yield Finding(
                    ERRORS_MODULE,
                    lineno,
                    CHECK_ID,
                    f"exception class {cls_name} has no wire code in ERROR_CODES",
                )
        for cls_name, lineno in sorted(names.items(), key=lambda kv: kv[1]):
            if cls_name not in error_classes:
                yield Finding(
                    PROTOCOL_MODULE,
                    lineno,
                    CHECK_ID,
                    f"ERROR_CODES entry {cls_name} is not an exception class "
                    f"defined in repro/errors.py",
                )

    # -- struct formats and length literals -------------------------------
    def _collect_struct_sizes(
        self, tree: ast.Module, findings: List[Finding]
    ) -> Dict[str, int]:
        sizes: Dict[str, int] = {}
        for stmt in tree.body:
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            call = stmt.value
            if not (
                isinstance(call, ast.Call)
                and dotted_name(call.func) in ("struct.Struct", "Struct")
                and call.args
                and isinstance(call.args[0], ast.Constant)
                and isinstance(call.args[0].value, str)
            ):
                continue
            fmt = call.args[0].value
            try:
                sizes[target.id] = struct_mod.calcsize(fmt)
            except struct_mod.error as exc:
                findings.append(
                    Finding(
                        PROTOCOL_MODULE,
                        stmt.lineno,
                        CHECK_ID,
                        f"invalid struct format {fmt!r} for {target.id}: {exc}",
                    )
                )
        return sizes

    def _check_length_literals(
        self, tree: ast.Module, struct_sizes: Dict[str, int]
    ) -> Iterable[Finding]:
        """Verify ``_LEN.pack(K + len(x)) + _Y.pack(...) + x`` chains.

        The integer literal K restates the combined fixed size of the other
        struct packs in the same concatenation; drifting one without the
        other corrupts every frame on the wire.
        """
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for node in ast.walk(tree):
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add)):
                continue
            parent = parents.get(node)
            if isinstance(parent, ast.BinOp) and isinstance(parent.op, ast.Add):
                continue  # only inspect maximal chains
            operands = flatten_add(node)
            literal = self._find_length_literal(operands, struct_sizes)
            if literal is None:
                continue
            length_call, k = literal
            expected = 0
            for operand in operands:
                if operand is length_call:
                    continue
                size = self._pack_size(operand, struct_sizes)
                if size is not None:
                    expected += size
            if expected and expected != k:
                yield Finding(
                    PROTOCOL_MODULE,
                    length_call.lineno,
                    CHECK_ID,
                    f"length literal {k} disagrees with the {expected}-byte fixed "
                    f"header packed alongside it",
                )

    def _find_length_literal(self, operands, struct_sizes):
        """A ``_X.pack(K + len(...))`` operand, if the chain has one."""
        for operand in operands:
            if not (isinstance(operand, ast.Call) and len(operand.args) == 1):
                continue
            name = dotted_name(operand.func)
            if not name:
                continue
            parts = name.split(".")
            if parts[-1] != "pack" or parts[0] not in struct_sizes:
                continue
            arg_terms = flatten_add(operand.args[0])
            consts = [
                t.value
                for t in arg_terms
                if isinstance(t, ast.Constant) and isinstance(t.value, int)
            ]
            has_len = any(
                isinstance(t, ast.Call)
                and isinstance(t.func, ast.Name)
                and t.func.id == "len"
                for t in arg_terms
            )
            if len(consts) == 1 and has_len:
                return operand, consts[0]
        return None

    def _pack_size(self, operand: ast.expr, struct_sizes: Dict[str, int]) -> Optional[int]:
        if not isinstance(operand, ast.Call):
            return None
        name = dotted_name(operand.func)
        if not name:
            return None
        parts = name.split(".")
        if parts[-1] == "pack" and parts[0] in struct_sizes:
            return struct_sizes[parts[0]]
        return None


def _find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == name:
            return stmt
    return None


def _find_assign(tree: ast.Module, name: str) -> Optional[ast.Assign]:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == name:
                # Normalise to the Assign shape the callers expect.
                fake = ast.Assign(targets=[stmt.target], value=stmt.value)
                fake.lineno = stmt.lineno
                return fake if stmt.value is not None else None
    return None
