"""Checker registry.

Each checker lives in its own module and is instantiated once here.  To add
a checker: implement the :class:`repro.analysis.core.Checker` protocol in a
new module and append an instance to :data:`ALL_CHECKERS`; ``repro check
--list`` and the runner pick it up automatically.
"""

from __future__ import annotations

from typing import List

from repro.analysis.core import Checker
from repro.analysis.checks.api_surface import ApiSurfaceChecker
from repro.analysis.checks.async_purity import AsyncPurityChecker
from repro.analysis.checks.lock_discipline import LockDisciplineChecker
from repro.analysis.checks.protocol_registry import ProtocolRegistryChecker

__all__ = [
    "ALL_CHECKERS",
    "ApiSurfaceChecker",
    "AsyncPurityChecker",
    "LockDisciplineChecker",
    "ProtocolRegistryChecker",
    "default_checkers",
]

ALL_CHECKERS = (
    ProtocolRegistryChecker(),
    AsyncPurityChecker(),
    LockDisciplineChecker(),
    ApiSurfaceChecker(),
)


def default_checkers() -> List[Checker]:
    return list(ALL_CHECKERS)
