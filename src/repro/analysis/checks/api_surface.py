"""Public API-surface drift.

``tests/test_api_surface.py`` pins the intended public surface of the four
exported packages as set literals.  At runtime that test catches drift only
when it runs; this checker catches it statically, by parsing the ``__all__``
list literals out of the package ``__init__`` files and diffing them against
the snapshot sets — so ``repro check`` flags an undocumented export before
the test suite is ever invoked, and with a file:line pointing at the
``__all__`` that drifted.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.core import Finding, Project

__all__ = ["ApiSurfaceChecker"]

CHECK_ID = "api-surface"

#: package __init__ (relative to the repro package) -> snapshot set name in
#: tests/test_api_surface.py.
SURFACES: Tuple[Tuple[str, str], ...] = (
    ("__init__.py", "TOP_LEVEL_EXPORTS"),
    ("api/__init__.py", "API_EXPORTS"),
    ("serve/__init__.py", "SERVE_EXPORTS"),
    ("storage/__init__.py", "STORAGE_EXPORTS"),
)


class ApiSurfaceChecker:
    check_id = CHECK_ID
    description = (
        "package __all__ lists match the public-surface snapshot in "
        "tests/test_api_surface.py (no undocumented additions/removals)"
    )

    def run(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        snapshots = self._load_snapshots(project)
        for relpath, snapshot_name in SURFACES:
            module = project.module(relpath)
            if module is None:
                continue
            parsed = _parse_all(module.tree)
            if parsed is None:
                findings.append(
                    Finding(
                        relpath,
                        1,
                        CHECK_ID,
                        "__all__ is not a literal list of strings (cannot "
                        "be audited statically)",
                    )
                )
                continue
            names, lineno = parsed
            seen = set()
            for name in names:
                if name in seen:
                    findings.append(
                        Finding(
                            relpath,
                            lineno,
                            CHECK_ID,
                            f"__all__ lists {name!r} more than once",
                        )
                    )
                seen.add(name)
            if snapshots is None:
                continue
            snapshot = snapshots.get(snapshot_name)
            if snapshot is None:
                findings.append(
                    Finding(
                        relpath,
                        lineno,
                        CHECK_ID,
                        f"snapshot set {snapshot_name} not found in "
                        f"{project.snapshot_path}",
                    )
                )
                continue
            for name in sorted(seen - snapshot):
                findings.append(
                    Finding(
                        relpath,
                        lineno,
                        CHECK_ID,
                        f"export {name!r} is not in the {snapshot_name} snapshot "
                        f"(update tests/test_api_surface.py deliberately)",
                    )
                )
            for name in sorted(snapshot - seen):
                findings.append(
                    Finding(
                        relpath,
                        lineno,
                        CHECK_ID,
                        f"export {name!r} was removed but is still in the "
                        f"{snapshot_name} snapshot",
                    )
                )
        return findings

    def _load_snapshots(self, project: Project) -> Optional[Dict[str, set]]:
        """Parse the snapshot sets; None when no snapshot file is available
        (e.g. running against an installed package without the test tree)."""
        path = project.snapshot_path
        if path is None or not path.exists():
            return None
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError:
            return {}
        snapshots: Dict[str, set] = {}
        for stmt in tree.body:
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if isinstance(stmt.value, ast.Set):
                values = {
                    elt.value
                    for elt in stmt.value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                }
                snapshots[target.id] = values
        return snapshots


def _parse_all(tree: ast.Module) -> Optional[Tuple[List[str], int]]:
    """Collect the module's literal ``__all__`` (including ``+=`` extends)."""
    names: List[str] = []
    lineno: Optional[int] = None
    for stmt in tree.body:
        value = None
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
        ):
            value = stmt.value
            names = []  # reassignment replaces
        elif (
            isinstance(stmt, ast.AugAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__all__"
            and isinstance(stmt.op, ast.Add)
        ):
            value = stmt.value
        if value is None:
            continue
        if lineno is None:
            lineno = stmt.lineno
        if not isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            return None
        for elt in value.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                return None
            names.append(elt.value)
    if lineno is None:
        return None
    return names, lineno
