"""Lock discipline around shared mutable state.

For the cache and shared-memory modules the rule is: if an attribute is
ever mutated under ``with self._lock``, then *every* mutation of it must
hold the lock.  Two escape hatches keep the rule honest rather than noisy:

- ``__init__`` (and helpers reachable only from it) run before the object
  is shared, so their mutations are exempt;
- a private helper whose every call site is itself lock-held (e.g. a
  ``_bump`` with a "caller holds the lock" contract) is treated as
  lock-held, computed as a fixpoint over the class's ``self.X()`` calls.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.astutil import dotted_name
from repro.analysis.core import Finding, Project

__all__ = ["LockDisciplineChecker"]

CHECK_ID = "lock-discipline"

#: Modules holding lock-guarded shared state.
TARGET_MODULES = (
    "storage/cache.py",
    "core/shm.py",
    "suffix/jump_index.py",
    "core/parallel.py",
)

LOCK_FACTORIES = {"threading.Lock", "threading.RLock", "Lock", "RLock"}


class LockDisciplineChecker:
    check_id = CHECK_ID
    description = (
        "attributes mutated under 'with self._lock' anywhere are mutated "
        "under it everywhere (outside __init__/lock-held helpers)"
    )

    def __init__(self, target_modules: Tuple[str, ...] = TARGET_MODULES) -> None:
        self.target_modules = target_modules

    def run(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for relpath in self.target_modules:
            module = project.module(relpath)
            if module is None:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    findings.extend(self._check_class(relpath, node))
        return findings

    def _check_class(self, relpath: str, cls: ast.ClassDef) -> Iterable[Finding]:
        lock_attrs = self._lock_attrs(cls)
        if not lock_attrs:
            return
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # Per method: mutations [(attr, line, locked)] and self-calls
        # [(callee, locked)].
        mutations: Dict[str, List[Tuple[str, int, bool]]] = {}
        calls: Dict[str, List[Tuple[str, bool]]] = {}
        for method in methods:
            muts, self_calls = self._scan_method(method, lock_attrs)
            mutations[method.name] = muts
            calls[method.name] = self_calls

        guarded: Set[str] = set()
        for muts in mutations.values():
            guarded.update(attr for attr, _, locked in muts if locked)
        if not guarded:
            return

        # Call sites per callee: (caller, locked-at-site).
        sites: Dict[str, List[Tuple[str, bool]]] = {}
        for caller, self_calls in calls.items():
            for callee, locked in self_calls:
                sites.setdefault(callee, []).append((caller, locked))

        # Fixpoint: a method is lock-held if it has call sites and each one
        # either holds the lock, comes from __init__ (pre-sharing), or comes
        # from another lock-held method.
        lock_held: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for method in methods:
                name = method.name
                if name == "__init__" or name in lock_held:
                    continue
                method_sites = sites.get(name)
                if not method_sites:
                    continue
                if all(
                    locked or caller == "__init__" or caller in lock_held
                    for caller, locked in method_sites
                ):
                    lock_held.add(name)
                    changed = True

        lock_name = sorted(lock_attrs)[0]
        for method in methods:
            if method.name == "__init__" or method.name in lock_held:
                continue
            for attr, lineno, locked in mutations[method.name]:
                if locked or attr not in guarded:
                    continue
                yield Finding(
                    relpath,
                    lineno,
                    CHECK_ID,
                    f"{cls.name}.{method.name} mutates self.{attr} without "
                    f"holding self.{lock_name} (guarded elsewhere by "
                    f"'with self.{lock_name}')",
                )

    def _lock_attrs(self, cls: ast.ClassDef) -> Set[str]:
        attrs: Set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            if not (
                isinstance(node.value, ast.Call)
                and dotted_name(node.value.func) in LOCK_FACTORIES
            ):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
        return attrs

    def _scan_method(self, method, lock_attrs):
        """Walk one method, tracking whether each statement sits inside a
        ``with self.<lock>`` block."""
        mutations: List[Tuple[str, int, bool]] = []
        self_calls: List[Tuple[str, bool]] = []

        def is_lock_with(item: ast.withitem) -> bool:
            name = dotted_name(item.context_expr)
            return name is not None and name.startswith("self.") and (
                name.split(".")[1] in lock_attrs
            )

        def visit(node: ast.AST, locked: bool) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = locked or any(is_lock_with(item) for item in node.items)
                for item in node.items:
                    visit(item.context_expr, locked)
                for stmt in node.body:
                    visit(stmt, inner)
                return
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    for attr in _self_attr_targets(target):
                        mutations.append((attr, node.lineno, locked))
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name and name.startswith("self.") and name.count(".") == 1:
                    self_calls.append((name.split(".")[1], locked))
            for child in ast.iter_child_nodes(node):
                visit(child, locked)

        for stmt in method.body:
            visit(stmt, False)
        return mutations, self_calls


def _self_attr_targets(target: ast.expr) -> List[str]:
    """The first attribute after ``self`` in an assignment target, so both
    ``self._header = ...`` and ``self._segment.buf[a:b] = ...`` resolve to
    the owning slot (``_header`` / ``_segment``)."""
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for element in target.elts:
            out.extend(_self_attr_targets(element))
        return out
    while isinstance(target, (ast.Subscript, ast.Starred)):
        target = target.value
    chain: List[str] = []
    while isinstance(target, ast.Attribute):
        chain.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name) and target.id == "self" and chain:
        return [chain[-1]]
    return []
