"""Async purity: no blocking calls lexically inside ``async def`` bodies.

The serving layer's contract is that anything touching the disk, the
network (other than asyncio primitives), or a sleep goes through
``loop.run_in_executor`` / ``asyncio.to_thread``.  Executor thunks are
nested sync ``def``s or lambdas, so the scan simply never descends into
nested function scopes: a blocking name that appears there is fine, the
same name directly in the coroutine body is not.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.astutil import dotted_name, import_maps, iter_scope
from repro.analysis.core import Finding, Project

__all__ = ["AsyncPurityChecker"]

CHECK_ID = "async-purity"

#: Directories (relative to the repro package) whose coroutines must be pure.
SCOPE_PREFIXES = ("serve/", "api/")

#: Fully-qualified calls that block the event loop.
BLOCKING_CALLS = {
    "time.sleep",
    "os.replace",
    "os.rename",
    "os.fsync",
    "os.fdatasync",
}

#: Any call rooted at these modules blocks (socket.create_connection,
#: subprocess.run, ...).
BLOCKING_MODULES = {"socket", "subprocess"}

#: ``<Class>.open(...)`` / ``<Class>.open_many(...)`` — synchronous archive
#: and store constructors that read headers and dictionaries off disk.
BLOCKING_OPENERS = {
    "RlzStore",
    "RlzArchive",
    "AsyncRlzArchive",
    "RlzServer",
    "RawStore",
    "BlockedStore",
    "PostingsStore",
}

#: ``store.get(...)``-style synchronous reads; matched by the receiver's
#: final name so ``dict.get`` / ``cache.get`` stay out of scope.
STORE_RECEIVERS = {"store", "_store"}
STORE_METHODS = {"get", "get_many", "get_window"}


class AsyncPurityChecker:
    check_id = CHECK_ID
    description = (
        "no blocking calls (sleep, socket, file/subprocess I/O, sync store "
        "reads) directly inside async def bodies in serve/ and api/"
    )

    def run(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            if not module.relpath.startswith(SCOPE_PREFIXES):
                continue
            root_alias, from_map = import_maps(module.tree)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    findings.extend(
                        self._scan_coroutine(
                            module.relpath, node, root_alias, from_map
                        )
                    )
        return findings

    def _scan_coroutine(self, relpath, func, root_alias, from_map):
        for node in iter_scope(func):
            if not isinstance(node, ast.Call):
                continue
            label = self._blocking_label(node, root_alias, from_map)
            if label is not None:
                yield Finding(
                    relpath,
                    node.lineno,
                    CHECK_ID,
                    f"blocking call {label} inside 'async def {func.name}'; "
                    f"route it through run_in_executor/to_thread",
                )

    def _blocking_label(self, call, root_alias, from_map):
        name = dotted_name(call.func)
        if name is None:
            return None
        parts = name.split(".")
        # Resolve import aliases: `import time as t; t.sleep` and
        # `from time import sleep; sleep` both normalise to time.sleep.
        if len(parts) == 1:
            resolved = from_map.get(parts[0], parts[0])
        else:
            root = root_alias.get(parts[0], parts[0])
            resolved = ".".join([root] + parts[1:])
        resolved_parts = resolved.split(".")
        if resolved == "open":
            return "open()"
        if resolved in BLOCKING_CALLS:
            return f"{resolved}()"
        if len(resolved_parts) > 1 and resolved_parts[0] in BLOCKING_MODULES:
            return f"{resolved}()"
        if (
            len(parts) >= 2
            and parts[-1] in ("open", "open_many")
            and parts[-2] in BLOCKING_OPENERS
        ):
            return f"{'.'.join(parts[-2:])}()"
        if (
            len(parts) >= 2
            and parts[-1] in STORE_METHODS
            and parts[-2] in STORE_RECEIVERS
        ):
            return f"{'.'.join(parts[-2:])}()"
        return None
