"""Collection orderings: natural crawl order and URL sorting.

Section 3.5 of the paper discusses URL sorting (Ferragina & Manzini, 2010):
sorting pages by URL clusters pages from the same host/path together, which
substantially improves block-oriented compressors (more redundancy inside
each block) and also speeds up RLZ sequential decoding through cache
locality of shared factors.  These helpers produce re-ordered *views* of a
collection while preserving document IDs, so access patterns generated
against one ordering remain meaningful for another.
"""

from __future__ import annotations

import random
from typing import Optional

from .document import Document, DocumentCollection

__all__ = ["url_sort_key", "url_sorted", "crawl_order", "shuffled"]


def url_sort_key(document: Document) -> tuple:
    """Sort key used for URL ordering.

    URLs are sorted by reversed host components (so ``www.agency.gov`` and
    ``portal.agency.gov`` cluster together), then by path.  This mirrors the
    host-grouping behaviour of the URL sorting used in the paper and in
    Bigtable-style storage systems.
    """
    rest = document.url.split("//", 1)[-1]
    host, _, path = rest.partition("/")
    reversed_host = ".".join(reversed(host.split(".")))
    return (reversed_host, path)


def url_sorted(collection: DocumentCollection, name: Optional[str] = None) -> DocumentCollection:
    """Return a URL-sorted view of ``collection``."""
    return collection.reordered(
        url_sort_key, name=name or f"{collection.name}-urlsorted"
    )


def crawl_order(collection: DocumentCollection, name: Optional[str] = None) -> DocumentCollection:
    """Return the collection ordered by document ID (natural crawl order)."""
    return collection.reordered(
        lambda document: document.doc_id, name=name or f"{collection.name}-crawl"
    )


def shuffled(
    collection: DocumentCollection, seed: int = 0, name: Optional[str] = None
) -> DocumentCollection:
    """Return a randomly permuted view of ``collection`` (worst-case locality)."""
    rng = random.Random(seed)
    documents = list(collection)
    rng.shuffle(documents)
    return DocumentCollection(documents, name=name or f"{collection.name}-shuffled")
