"""Document and collection models.

A :class:`Document` is an identified blob of bytes with web-style metadata
(URL and host).  A :class:`DocumentCollection` is an ordered sequence of
documents; order matters because the paper evaluates both natural crawl
order and URL-sorted order, and because the RLZ dictionary is sampled from
the *concatenation* of the collection in its current order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from ..errors import CorpusError

__all__ = ["Document", "DocumentCollection"]


@dataclass(frozen=True)
class Document:
    """A single document in a web collection.

    Attributes
    ----------
    doc_id:
        Stable identifier assigned at generation/ingest time.  Document IDs
        are preserved across re-orderings so access patterns remain valid
        after URL sorting.
    url:
        Source URL (synthetic generators produce realistic-looking URLs so
        URL sorting exercises the same host-clustering effect as the paper).
    content:
        Raw document bytes (HTML / wiki markup plus text).
    """

    doc_id: int
    url: str
    content: bytes

    @property
    def host(self) -> str:
        """Host component of the URL (empty if the URL has no ``//``)."""
        rest = self.url.split("//", 1)[-1]
        return rest.split("/", 1)[0]

    @property
    def size(self) -> int:
        """Document size in bytes."""
        return len(self.content)

    def text(self, encoding: str = "utf-8", errors: str = "replace") -> str:
        """Decode the content to text (for the search-engine substrate)."""
        return self.content.decode(encoding, errors=errors)


class DocumentCollection:
    """An ordered collection of documents.

    The collection offers the handful of operations the rest of the library
    needs: iteration in order, lookup by document ID, concatenation into a
    single byte string (for dictionary sampling), and re-ordering (crawl
    order vs URL order).
    """

    def __init__(self, documents: Iterable[Document], name: str = "collection") -> None:
        self._documents: List[Document] = list(documents)
        self._name = name
        self._by_id = {doc.doc_id: index for index, doc in enumerate(self._documents)}
        if len(self._by_id) != len(self._documents):
            raise CorpusError("duplicate document IDs in collection")

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human-readable collection name (used in benchmark reports)."""
        return self._name

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __getitem__(self, index: int) -> Document:
        return self._documents[index]

    def document_by_id(self, doc_id: int) -> Document:
        """Return the document with the given ID.

        Raises
        ------
        repro.errors.CorpusError
            If no document has that ID.
        """
        try:
            return self._documents[self._by_id[doc_id]]
        except KeyError as exc:
            raise CorpusError(f"unknown document id {doc_id}") from exc

    def doc_ids(self) -> List[int]:
        """Document IDs in the collection's current order."""
        return [doc.doc_id for doc in self._documents]

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    @property
    def total_size(self) -> int:
        """Total size of the collection in bytes."""
        return sum(doc.size for doc in self._documents)

    @property
    def average_document_size(self) -> float:
        """Mean document size in bytes (0.0 for an empty collection)."""
        if not self._documents:
            return 0.0
        return self.total_size / len(self._documents)

    # ------------------------------------------------------------------
    # Views used by the compressors
    # ------------------------------------------------------------------
    def concatenate(self) -> bytes:
        """Concatenate all documents (in order) into one byte string."""
        return b"".join(doc.content for doc in self._documents)

    def boundaries(self) -> List[int]:
        """Byte offsets of each document start in :meth:`concatenate` output.

        The returned list has ``len(self) + 1`` entries; the final entry is
        the total size, so ``boundaries()[i + 1] - boundaries()[i]`` is the
        size of document ``i``.
        """
        offsets = [0]
        for doc in self._documents:
            offsets.append(offsets[-1] + doc.size)
        return offsets

    def prefix(self, fraction: float, name: Optional[str] = None) -> "DocumentCollection":
        """A new collection containing the first ``fraction`` of documents.

        Used by the dynamic-update experiment (Table 10): dictionaries are
        built from a prefix of the collection and then used to compress the
        whole collection.
        """
        if not 0.0 < fraction <= 1.0:
            raise CorpusError(f"prefix fraction must be in (0, 1], got {fraction}")
        count = max(1, int(round(len(self._documents) * fraction)))
        return DocumentCollection(
            self._documents[:count],
            name=name or f"{self._name}[prefix {fraction:.0%}]",
        )

    def reordered(
        self, key: Callable[[Document], object], name: Optional[str] = None
    ) -> "DocumentCollection":
        """A new collection with documents sorted by ``key`` (stable)."""
        return DocumentCollection(
            sorted(self._documents, key=key), name=name or self._name
        )

    def subset(self, doc_ids: Sequence[int], name: Optional[str] = None) -> "DocumentCollection":
        """A new collection restricted to ``doc_ids`` (in the given order)."""
        return DocumentCollection(
            [self.document_by_id(doc_id) for doc_id in doc_ids],
            name=name or f"{self._name}[subset]",
        )
