"""Synthetic GOV2-like web crawl generator.

TREC GOV2 is a 426 GB crawl of the ``.gov`` domain: roughly 25 million HTML
pages averaging 18 KB, dominated by per-site boilerplate (headers, footers,
navigation menus) wrapped around modest amounts of body text, with frequent
near-duplicates and mirrored pages.  This generator produces a scaled-down
collection with the same *structural* properties, which are what drive the
paper's results:

* a set of synthetic hosts, each with its own page template (boilerplate
  shared by every page of that host — global redundancy an adaptive
  compressor with a small window cannot reach);
* body text with Zipf word distribution and phrase reuse;
* within-document repetition (repeated table rows / list items), which is
  what makes the paper's per-document ``Z`` pair coding effective;
* a configurable fraction of near-duplicate pages (mirrors), emitted in
  *crawl order* (host-interleaved) so that URL sorting changes locality the
  same way it does for real crawls.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from .document import Document, DocumentCollection
from .vocabulary import TextGenerator, Vocabulary

__all__ = ["GovCrawlConfig", "GovCrawlGenerator", "generate_gov_collection"]


@dataclass(frozen=True)
class GovCrawlConfig:
    """Tuning knobs for the synthetic .gov crawl.

    The defaults produce documents of roughly 18 KB, matching GOV2's average
    document size, and a collection of ~18 MB with 1,000 documents.
    """

    num_documents: int = 1000
    num_hosts: int = 40
    target_document_size: int = 18 * 1024
    duplicate_fraction: float = 0.08
    vocabulary_size: int = 20000
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_documents <= 0:
            raise ValueError("num_documents must be positive")
        if self.num_hosts <= 0:
            raise ValueError("num_hosts must be positive")
        if not 0.0 <= self.duplicate_fraction < 1.0:
            raise ValueError("duplicate_fraction must be in [0, 1)")


_GOV_HOST_THEMES = (
    "energy", "treasury", "transport", "health", "justice", "labor",
    "commerce", "education", "agriculture", "interior", "defense", "state",
    "veterans", "housing", "epa", "nasa", "noaa", "census", "irs", "fema",
)


class GovCrawlGenerator:
    """Generate a synthetic GOV2-like :class:`DocumentCollection`."""

    def __init__(self, config: GovCrawlConfig | None = None) -> None:
        self._config = config or GovCrawlConfig()
        self._vocabulary = Vocabulary(self._config.vocabulary_size, seed=self._config.seed)
        self._text = TextGenerator(self._vocabulary, seed=self._config.seed + 1)
        self._rng = random.Random(self._config.seed + 2)
        self._hosts = self._make_hosts()

    @property
    def config(self) -> GovCrawlConfig:
        """The generator configuration."""
        return self._config

    # ------------------------------------------------------------------
    # Host templates
    # ------------------------------------------------------------------
    def _make_hosts(self) -> List[dict]:
        hosts = []
        for index in range(self._config.num_hosts):
            theme = _GOV_HOST_THEMES[index % len(_GOV_HOST_THEMES)]
            name = f"www.{theme}{index:02d}.gov"
            menu_items = [
                self._vocabulary.sample_word(self._rng).capitalize()
                for _ in range(self._rng.randint(8, 16))
            ]
            menu = "\n".join(
                f'      <li><a href="/{item.lower()}/index.html">{item}</a></li>'
                for item in menu_items
            )
            header = (
                "<!DOCTYPE html>\n"
                '<html lang="en">\n<head>\n'
                f"  <title>{name} — Official {theme.capitalize()} Portal</title>\n"
                '  <meta charset="utf-8"/>\n'
                '  <meta name="viewport" content="width=device-width, initial-scale=1.0"/>\n'
                f'  <link rel="stylesheet" href="https://{name}/static/css/agency-{theme}.css"/>\n'
                f'  <script src="https://{name}/static/js/analytics.js" defer></script>\n'
                "</head>\n<body>\n"
                '  <header class="usa-banner">\n'
                '    <div class="usa-banner-inner">An official website of the United States government</div>\n'
                "  </header>\n"
                f'  <nav class="site-navigation" data-host="{name}">\n'
                "    <ul>\n" + menu + "\n    </ul>\n"
                "  </nav>\n"
                '  <main class="main-content">\n'
            )
            footer = (
                "  </main>\n"
                '  <footer class="site-footer">\n'
                f"    <p>Contact the {theme.capitalize()} Office of Public Affairs | "
                "Freedom of Information Act | Privacy Policy | Accessibility | "
                "No FEAR Act Data | Office of the Inspector General</p>\n"
                f'    <p>&copy; {name} — content reviewed by the web governance board.</p>\n'
                "  </footer>\n</body>\n</html>\n"
            )
            hosts.append({"name": name, "header": header, "footer": footer, "theme": theme})
        return hosts

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def _document_body(self, rng: random.Random, host: dict, target_size: int) -> str:
        """Body content sized to roughly ``target_size`` bytes."""
        local_phrases = [
            " ".join(self._vocabulary.sample_word(rng) for _ in range(rng.randint(4, 9)))
            for _ in range(rng.randint(2, 6))
        ]
        sections: List[str] = []
        size = 0
        section_index = 0
        while size < target_size:
            section_index += 1
            title_words = self._text.tokens(rng, rng.randint(2, 6))
            title = " ".join(word.capitalize() for word in title_words)
            paragraphs = [
                f"    <p>{self._text.paragraph(rng, rng.randint(3, 7), local_phrases)}</p>"
                for _ in range(rng.randint(1, 4))
            ]
            block = [f'  <section id="section-{section_index}">', f"    <h2>{title}</h2>"]
            block.extend(paragraphs)
            # Occasionally emit a table whose rows repeat a template — this is
            # the within-document redundancy the Z pair coding exploits.
            if rng.random() < 0.4:
                rows = []
                row_label = self._vocabulary.sample_word(rng)
                for row_index in range(rng.randint(5, 25)):
                    value = rng.randint(100, 99999)
                    rows.append(
                        f'      <tr class="data-row"><td>{row_label}-{row_index:04d}</td>'
                        f"<td>{value}</td><td>FY{rng.randint(1998, 2011)}</td></tr>"
                    )
                block.append('    <table class="data-table"><tbody>')
                block.extend(rows)
                block.append("    </tbody></table>")
            block.append("  </section>")
            text = "\n".join(block) + "\n"
            sections.append(text)
            size += len(text)
        return "".join(sections)

    def _make_document(self, doc_id: int, host: dict, rng: random.Random) -> Document:
        # Document sizes follow a log-normal-ish spread around the target.
        target = max(2048, int(rng.gauss(self._config.target_document_size, self._config.target_document_size * 0.35)))
        chrome = len(host["header"]) + len(host["footer"])
        body = self._document_body(rng, host, max(512, target - chrome))
        path_parts = [self._vocabulary.sample_word(rng) for _ in range(rng.randint(1, 3))]
        url = f"http://{host['name']}/" + "/".join(path_parts) + f"/page{doc_id:06d}.html"
        content = (host["header"] + body + host["footer"]).encode("utf-8")
        return Document(doc_id=doc_id, url=url, content=content)

    def generate(self) -> DocumentCollection:
        """Generate the collection in natural crawl order."""
        config = self._config
        rng = self._rng
        documents: List[Document] = []
        recent: List[Document] = []
        for doc_id in range(config.num_documents):
            if recent and rng.random() < config.duplicate_fraction:
                # Near-duplicate / mirrored page: copy an earlier page onto a
                # different host with a tiny perturbation.
                source = rng.choice(recent)
                host = rng.choice(self._hosts)
                perturbation = f"<!-- mirrored copy {doc_id} retrieved {rng.randint(1, 28):02d}/0{rng.randint(1, 9)}/2004 -->\n"
                url = f"http://{host['name']}/mirror/page{doc_id:06d}.html"
                content = source.content + perturbation.encode("utf-8")
                document = Document(doc_id=doc_id, url=url, content=content)
            else:
                host = rng.choice(self._hosts)
                document = self._make_document(doc_id, host, rng)
            documents.append(document)
            recent.append(document)
            if len(recent) > 200:
                recent.pop(0)
        return DocumentCollection(documents, name="gov2-like")


def generate_gov_collection(
    num_documents: int = 1000,
    target_document_size: int = 18 * 1024,
    seed: int = 42,
    **kwargs,
) -> DocumentCollection:
    """Convenience wrapper: generate a GOV2-like collection in one call."""
    config = GovCrawlConfig(
        num_documents=num_documents,
        target_document_size=target_document_size,
        seed=seed,
        **kwargs,
    )
    return GovCrawlGenerator(config).generate()
