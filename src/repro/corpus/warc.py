"""Minimal WARC-like persistence for document collections.

Real web crawls are distributed as WARC files; this module implements a
simplified record format with the same flavour (a textual header per record
followed by the raw payload) so collections can be written to disk once and
re-read by benchmarks without regenerating them.  The format is intentionally
simple and self-describing:

.. code-block:: text

    REPRO-WARC/1.0
    Doc-Id: 42
    Target-URI: http://www.energy03.gov/page000042.html
    Content-Length: 18231
    <blank line>
    <payload bytes>
    <blank line>

All headers are ASCII; payloads are raw bytes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List

from ..errors import CorpusError
from .document import Document, DocumentCollection

__all__ = ["write_warc", "read_warc", "iter_warc_records"]

_MAGIC = b"REPRO-WARC/1.0"


def write_warc(collection: DocumentCollection, path: str | Path) -> int:
    """Write ``collection`` to ``path``; returns the number of bytes written."""
    path = Path(path)
    written = 0
    with path.open("wb") as handle:
        for document in collection:
            header = (
                _MAGIC
                + b"\n"
                + f"Doc-Id: {document.doc_id}\n".encode("ascii")
                + f"Target-URI: {document.url}\n".encode("ascii")
                + f"Content-Length: {len(document.content)}\n".encode("ascii")
                + b"\n"
            )
            handle.write(header)
            handle.write(document.content)
            handle.write(b"\n")
            written += len(header) + len(document.content) + 1
    return written


def iter_warc_records(path: str | Path) -> Iterator[Document]:
    """Yield documents from a REPRO-WARC file one at a time."""
    path = Path(path)
    with path.open("rb") as handle:
        while True:
            magic = handle.readline()
            if not magic:
                return
            if magic.strip() != _MAGIC:
                raise CorpusError(f"bad WARC record magic: {magic!r}")
            headers = {}
            while True:
                line = handle.readline()
                if not line:
                    raise CorpusError("truncated WARC header")
                line = line.strip()
                if not line:
                    break
                key, _, value = line.decode("ascii").partition(":")
                headers[key.strip().lower()] = value.strip()
            try:
                doc_id = int(headers["doc-id"])
                url = headers["target-uri"]
                length = int(headers["content-length"])
            except (KeyError, ValueError) as exc:
                raise CorpusError(f"invalid WARC headers: {headers}") from exc
            payload = handle.read(length)
            if len(payload) != length:
                raise CorpusError("truncated WARC payload")
            handle.read(1)  # trailing newline
            yield Document(doc_id=doc_id, url=url, content=payload)


def read_warc(path: str | Path, name: str | None = None) -> DocumentCollection:
    """Read an entire REPRO-WARC file into a :class:`DocumentCollection`."""
    documents: List[Document] = list(iter_warc_records(path))
    return DocumentCollection(documents, name=name or Path(path).stem)
