"""Synthetic vocabulary and natural-language-like text generation.

Both synthetic collections (the GOV2-like crawl and the Wikipedia-like
snapshot) need body text that behaves like English web text from a
compression standpoint:

* a Zipf-distributed vocabulary, so a small number of words dominate;
* phrase-level reuse, so documents on the same topic share multi-word
  strings (this is what gives RLZ factors their length);
* a long tail of rare words and "non-words" (identifiers, dates, numbers),
  mirroring the paper's observation about the ClueWeb09 lexicon.

The generator is deterministic for a given seed, which the test-suite and
benchmark harness rely on.
"""

from __future__ import annotations

import random
import string
from typing import List, Sequence

__all__ = ["Vocabulary", "TextGenerator"]

# A compact list of high-frequency English words used to seed the head of
# the Zipf distribution so that the generated text looks plausibly English.
_COMMON_WORDS = (
    "the of and to in a is that for it as was with be by on not he this are "
    "or his from at which but have an had they you were their one all we can "
    "her has there been if more when will would who so no said what up its "
    "about into than them only other new some could time these two may then "
    "do first any my now such like our over man me even most made after also "
    "did many before must through years where much your way well down should "
    "because each just those people how too little state good very make world "
    "still own see men work long get here between both life being under never "
    "day same another know while last might us great old year off come since "
    "against go came right used take three government department public report "
    "information service national agency federal office management program "
    "development research policy health data system security review committee "
    "section article history page edit links external references category"
).split()


class Vocabulary:
    """A Zipf-distributed vocabulary of words with a long synthetic tail."""

    def __init__(self, size: int = 20000, seed: int = 0) -> None:
        if size < len(_COMMON_WORDS):
            size = len(_COMMON_WORDS)
        rng = random.Random(seed)
        words: List[str] = list(_COMMON_WORDS)
        seen = set(words)
        while len(words) < size:
            length = rng.randint(3, 12)
            word = "".join(rng.choice(string.ascii_lowercase) for _ in range(length))
            if word not in seen:
                seen.add(word)
                words.append(word)
        self._words = words
        self._size = len(words)

    def __len__(self) -> int:
        return self._size

    @property
    def words(self) -> Sequence[str]:
        """All words, ordered from most to least frequent."""
        return self._words

    def sample_word(self, rng: random.Random, skew: float = 1.1) -> str:
        """Draw one word from an (approximate) Zipf distribution.

        A Pareto draw over ranks is used instead of an exact Zipf sampler;
        it is much cheaper and produces the same head-heavy behaviour that
        matters for compression.
        """
        rank = int(rng.paretovariate(skew)) - 1
        if rank >= self._size:
            rank = rng.randrange(self._size)
        return self._words[rank]


class TextGenerator:
    """Generate sentences and paragraphs with phrase-level redundancy.

    A pool of multi-word *phrases* is pre-generated; sentences are built by
    mixing fresh Zipf-sampled words with phrases drawn from the pool (and,
    optionally, from a document-local pool to create within-document
    repetition, the effect Section 3.4 of the paper exploits with the ``Z``
    pair coding).
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        seed: int = 0,
        phrase_pool_size: int = 2000,
        phrase_words: int = 8,
        phrase_probability: float = 0.35,
    ) -> None:
        self._vocabulary = vocabulary
        self._rng = random.Random(seed)
        self._phrase_probability = phrase_probability
        self._phrases = [
            " ".join(
                vocabulary.sample_word(self._rng)
                for _ in range(self._rng.randint(3, phrase_words))
            )
            for _ in range(phrase_pool_size)
        ]

    @property
    def phrases(self) -> Sequence[str]:
        """The shared phrase pool (topic phrases reused across documents)."""
        return self._phrases

    def sentence(self, rng: random.Random, local_phrases: Sequence[str] = ()) -> str:
        """Produce one sentence mixing words, global phrases and local phrases."""
        parts: List[str] = []
        length = rng.randint(6, 18)
        while sum(part.count(" ") + 1 for part in parts) < length:
            draw = rng.random()
            if local_phrases and draw < 0.15:
                parts.append(rng.choice(local_phrases))
            elif draw < self._phrase_probability:
                parts.append(rng.choice(self._phrases))
            else:
                parts.append(self._vocabulary.sample_word(rng))
        sentence = " ".join(parts)
        return sentence[0].upper() + sentence[1:] + "."

    def paragraph(
        self,
        rng: random.Random,
        sentences: int = 6,
        local_phrases: Sequence[str] = (),
    ) -> str:
        """Produce a paragraph of the requested number of sentences."""
        return " ".join(self.sentence(rng, local_phrases) for _ in range(sentences))

    def tokens(self, rng: random.Random, count: int) -> List[str]:
        """Draw ``count`` independent Zipf-sampled words (used for queries)."""
        return [self._vocabulary.sample_word(rng) for _ in range(count)]
