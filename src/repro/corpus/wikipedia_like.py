"""Synthetic Wikipedia-like snapshot generator.

The paper's second collection is a 256 GB English Wikipedia snapshot from
ClueWeb09 (~6 million documents, ~45 KB average size).  Compared with the
.gov crawl, Wikipedia pages are larger, carry heavier uniform site chrome,
and contain highly regular intra-document structure (infoboxes, citation
templates, category footers).  Those are the characteristics the paper uses
to explain why ZZ/ZV pair coding is relatively stronger on Wikipedia, so the
generator reproduces them:

* one global page skin shared by *every* article (stronger global
  redundancy than the per-host .gov templates);
* infobox and citation templates with repeated field scaffolding;
* long article bodies averaging ~45 KB;
* inter-article links drawn from a shared title pool, so anchor markup
  repeats across articles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from .document import Document, DocumentCollection
from .vocabulary import TextGenerator, Vocabulary

__all__ = ["WikipediaConfig", "WikipediaGenerator", "generate_wikipedia_collection"]


@dataclass(frozen=True)
class WikipediaConfig:
    """Tuning knobs for the synthetic Wikipedia snapshot."""

    num_documents: int = 400
    target_document_size: int = 45 * 1024
    vocabulary_size: int = 20000
    title_pool_size: int = 3000
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_documents <= 0:
            raise ValueError("num_documents must be positive")
        if self.target_document_size <= 0:
            raise ValueError("target_document_size must be positive")


_SKIN_HEADER = """<!DOCTYPE html>
<html class="client-nojs" lang="en" dir="ltr">
<head>
  <meta charset="UTF-8"/>
  <title>{title} - Encyclopedia</title>
  <meta name="generator" content="MediaWiki 1.15"/>
  <link rel="stylesheet" href="/skins/monobook/main.css"/>
  <link rel="stylesheet" href="/skins/common/shared.css"/>
  <script src="/skins/common/wikibits.js"></script>
</head>
<body class="mediawiki ltr ns-0 skin-monobook">
  <div id="globalWrapper">
    <div id="column-content"><div id="content">
      <a id="top"></a>
      <h1 id="firstHeading" class="firstHeading">{title}</h1>
      <div id="bodyContent">
        <h3 id="siteSub">From the free encyclopedia</h3>
        <div id="contentSub"></div>
        <div id="jump-to-nav">Jump to: <a href="#column-one">navigation</a>, <a href="#searchInput">search</a></div>
"""

_SKIN_FOOTER = """      </div>
    </div></div>
    <div id="column-one">
      <div class="portlet" id="p-logo"><a href="/wiki/Main_Page" title="Visit the main page"></a></div>
      <div class="portlet" id="p-navigation">
        <h5>Navigation</h5>
        <ul>
          <li><a href="/wiki/Main_Page">Main page</a></li>
          <li><a href="/wiki/Portal:Contents">Contents</a></li>
          <li><a href="/wiki/Portal:Featured_content">Featured content</a></li>
          <li><a href="/wiki/Portal:Current_events">Current events</a></li>
          <li><a href="/wiki/Special:Random">Random article</a></li>
        </ul>
      </div>
      <div class="portlet" id="p-search"><h5>Search</h5><input id="searchInput" type="text"/></div>
      <div class="portlet" id="p-tb">
        <h5>Toolbox</h5>
        <ul>
          <li><a href="/wiki/Special:WhatLinksHere">What links here</a></li>
          <li><a href="/wiki/Special:RecentChangesLinked">Related changes</a></li>
          <li><a href="/wiki/Special:SpecialPages">Special pages</a></li>
          <li><a href="/wiki/Special:Cite">Cite this page</a></li>
        </ul>
      </div>
    </div>
    <div id="footer">
      <ul id="f-list">
        <li>This page was last modified on 12 January 2009.</li>
        <li>All text is available under the terms of the GNU Free Documentation License.</li>
        <li><a href="/wiki/Encyclopedia:Privacy_policy">Privacy policy</a></li>
        <li><a href="/wiki/Encyclopedia:About">About</a></li>
        <li><a href="/wiki/Encyclopedia:General_disclaimer">Disclaimers</a></li>
      </ul>
    </div>
  </div>
</body>
</html>
"""


class WikipediaGenerator:
    """Generate a synthetic Wikipedia-like :class:`DocumentCollection`."""

    def __init__(self, config: WikipediaConfig | None = None) -> None:
        self._config = config or WikipediaConfig()
        self._vocabulary = Vocabulary(self._config.vocabulary_size, seed=self._config.seed)
        self._text = TextGenerator(self._vocabulary, seed=self._config.seed + 1)
        self._rng = random.Random(self._config.seed + 2)
        self._titles = self._make_title_pool()

    @property
    def config(self) -> WikipediaConfig:
        """The generator configuration."""
        return self._config

    def _make_title_pool(self) -> List[str]:
        titles = []
        for _ in range(self._config.title_pool_size):
            words = self._text.tokens(self._rng, self._rng.randint(1, 4))
            titles.append("_".join(word.capitalize() for word in words))
        return titles

    def _infobox(self, rng: random.Random, title: str) -> str:
        fields = [
            ("name", title.replace("_", " ")),
            ("native_name", title.replace("_", " ").lower()),
            ("image", f"{title}.svg"),
            ("caption", self._text.sentence(rng)),
            ("established", str(rng.randint(1066, 2008))),
            ("population", f"{rng.randint(1000, 9000000):,}"),
            ("area_km2", f"{rng.randint(1, 100000)}"),
            ("website", f"http://www.{title.lower()}.example.org"),
        ]
        rows = "\n".join(
            f'    <tr><th scope="row" class="infobox-label">{key}</th>'
            f'<td class="infobox-data">{value}</td></tr>'
            for key, value in fields
        )
        return (
            '        <table class="infobox vcard" cellspacing="3">\n'
            f'          <caption class="infobox-title">{title.replace("_", " ")}</caption>\n'
            f"{rows}\n"
            "        </table>\n"
        )

    def _citation(self, rng: random.Random, number: int) -> str:
        author = self._vocabulary.sample_word(rng).capitalize()
        year = rng.randint(1950, 2009)
        journal = " ".join(w.capitalize() for w in self._text.tokens(rng, 3))
        return (
            f'          <li id="cite_note-{number}"><span class="reference-text">'
            f"{author}, A. ({year}). \"{self._text.sentence(rng)}\" "
            f"<i>{journal}</i> {rng.randint(1, 80)}({rng.randint(1, 12)}): "
            f"{rng.randint(1, 400)}-{rng.randint(401, 900)}.</span></li>"
        )

    def _article_body(self, rng: random.Random, title: str, target_size: int) -> str:
        local_phrases = [
            " ".join(self._vocabulary.sample_word(rng) for _ in range(rng.randint(4, 10)))
            for _ in range(rng.randint(3, 8))
        ]
        parts: List[str] = [self._infobox(rng, title)]
        size = len(parts[0])
        section_names = ("History", "Geography", "Demographics", "Economy", "Culture",
                         "Education", "Transport", "Government", "Notable_people", "See_also")
        section_index = 0
        while size < target_size:
            name = section_names[section_index % len(section_names)]
            section_index += 1
            paragraphs = []
            for _ in range(rng.randint(2, 5)):
                sentences = []
                for _ in range(rng.randint(3, 8)):
                    sentence = self._text.sentence(rng, local_phrases)
                    # Sprinkle wiki-style links into the prose.
                    if rng.random() < 0.5:
                        target = rng.choice(self._titles)
                        sentence += (
                            f' <a href="/wiki/{target}" title="{target.replace("_", " ")}">'
                            f'{target.replace("_", " ")}</a>.'
                        )
                    sentences.append(sentence)
                paragraphs.append("        <p>" + " ".join(sentences) + "</p>")
            block = (
                f'        <h2><span class="mw-headline" id="{name}_{section_index}">'
                f'{name.replace("_", " ")}</span></h2>\n' + "\n".join(paragraphs) + "\n"
            )
            parts.append(block)
            size += len(block)
        # References and category footer — highly templated structure.
        citations = "\n".join(self._citation(rng, i + 1) for i in range(rng.randint(5, 30)))
        categories = " | ".join(
            f'<a href="/wiki/Category:{rng.choice(self._titles)}">Category</a>'
            for _ in range(rng.randint(3, 8))
        )
        parts.append(
            '        <h2><span class="mw-headline" id="References">References</span></h2>\n'
            '        <ol class="references">\n' + citations + "\n        </ol>\n"
            f'        <div id="catlinks" class="catlinks">{categories}</div>\n'
        )
        return "".join(parts)

    def generate(self) -> DocumentCollection:
        """Generate the collection in snapshot (crawl) order."""
        config = self._config
        rng = self._rng
        documents: List[Document] = []
        for doc_id in range(config.num_documents):
            title = self._titles[doc_id % len(self._titles)] + f"_{doc_id}"
            target = max(
                4096,
                int(rng.gauss(config.target_document_size, config.target_document_size * 0.3)),
            )
            header = _SKIN_HEADER.format(title=title.replace("_", " "))
            footer = _SKIN_FOOTER
            body = self._article_body(rng, title, max(1024, target - len(header) - len(footer)))
            content = (header + body + footer).encode("utf-8")
            url = f"http://en.encyclopedia.example.org/wiki/{title}"
            documents.append(Document(doc_id=doc_id, url=url, content=content))
        return DocumentCollection(documents, name="wikipedia-like")


def generate_wikipedia_collection(
    num_documents: int = 400,
    target_document_size: int = 45 * 1024,
    seed: int = 7,
    **kwargs,
) -> DocumentCollection:
    """Convenience wrapper: generate a Wikipedia-like collection in one call."""
    config = WikipediaConfig(
        num_documents=num_documents,
        target_document_size=target_document_size,
        seed=seed,
        **kwargs,
    )
    return WikipediaGenerator(config).generate()
