"""Corpus substrate: documents, synthetic web collections, ordering, persistence.

The paper evaluates on TREC GOV2 (426 GB) and a ClueWeb09 English Wikipedia
snapshot (256 GB); neither is available offline, so this package provides
scaled-down synthetic generators that reproduce the structural properties
that drive the paper's results (per-site boilerplate, Zipf text, template
reuse, near-duplicates, URL-sortable hosts).  See DESIGN.md for the full
substitution rationale.
"""

from .document import Document, DocumentCollection
from .govlike import GovCrawlConfig, GovCrawlGenerator, generate_gov_collection
from .ordering import crawl_order, shuffled, url_sort_key, url_sorted
from .vocabulary import TextGenerator, Vocabulary
from .warc import iter_warc_records, read_warc, write_warc
from .wikipedia_like import (
    WikipediaConfig,
    WikipediaGenerator,
    generate_wikipedia_collection,
)

__all__ = [
    "Document",
    "DocumentCollection",
    "GovCrawlConfig",
    "GovCrawlGenerator",
    "TextGenerator",
    "Vocabulary",
    "WikipediaConfig",
    "WikipediaGenerator",
    "crawl_order",
    "generate_gov_collection",
    "generate_wikipedia_collection",
    "iter_warc_records",
    "read_warc",
    "shuffled",
    "url_sort_key",
    "url_sorted",
    "write_warc",
]
