"""Partition manifests and the rebalance sidecar for partitioned stores.

A *partitioned* archive splits one collection across N per-shard RPRC2
containers: each shard's container holds only the documents whose
consistent-hash arc it owns.  Everything a server (or an offline tool)
needs to know about the split rides in the container's metadata JSON under
the :data:`PARTITION_KEY` key, as a :class:`PartitionManifest`:

``epoch``
    The version of the shard map the container was written under.  Every
    rebalance bumps it; servers refuse doc ids they no longer own with
    the epoch they are at, and clients adopt whichever map carries the
    highest epoch.
``shard``
    This container's own *ring id* — the logical shard name whose hash
    arc it owns (e.g. ``"shard2"``).
``shards``
    Every ring label in the map, in order (order is part of the map:
    hash-ring tie-breaks are positional).  Labels are either bare ring
    ids or ``ringid@host:port`` once transports are known.
``virtual_nodes``
    Consistent-hash points per shard.
``doc_order``
    The *global* collection doc-id order.  It is identical in every
    shard and invariant across rebalances (rebalancing moves documents,
    it never adds or removes them), so any one shard can answer
    ``DOC_IDS`` for the whole fleet and scan-merges stay in exact store
    order.

During a live rebalance the recipient stages incoming documents in a
*sidecar* container next to its store (``<store>.rebalance``, a ``raw``
container rewritten atomically per batch), so a crashed handoff resumes
from the last acked document instead of restarting.  Committing a new
epoch rewrites the store itself via :func:`rewrite_partition_store`:
surviving documents' encoded blobs are copied verbatim (the dictionary is
shared, so bytes are identical), staged documents are encoded in, shed
documents are dropped, and the new manifest is recorded — all behind the
container writer's atomic temp + fsync + rename.

This module deliberately knows nothing about hash rings or servers: the
caller decides *which* doc ids to keep and add; this module makes the
on-disk state match.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple

from ..core.dictionary import RlzDictionary
from ..core.encoder import PairEncoder
from ..core.factorizer import RlzFactorizer
from ..errors import StorageError
from .container import read_container_header, write_container
from .document_map import DocumentEntry, DocumentMap

__all__ = [
    "PARTITION_KEY",
    "PartitionManifest",
    "read_manifest",
    "overlay_path",
    "write_overlay",
    "read_overlay",
    "clear_overlay",
    "rewrite_partition_store",
]

#: Container-metadata key the manifest is stored under.
PARTITION_KEY = "partition"


def _ring_id(label: str) -> str:
    """The placement identity of a shard label (the part before ``@``)."""
    return label.partition("@")[0]


@dataclass(frozen=True)
class PartitionManifest:
    """The partition facts recorded in a shard container's metadata."""

    epoch: int
    shard: str
    shards: Tuple[str, ...]
    virtual_nodes: int
    doc_order: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise StorageError(f"partition epoch must be >= 1, got {self.epoch}")
        if self.virtual_nodes < 1:
            raise StorageError(
                f"partition virtual_nodes must be >= 1, got {self.virtual_nodes}"
            )
        ring_ids = [_ring_id(label) for label in self.shards]
        if len(set(ring_ids)) != len(ring_ids):
            raise StorageError(f"duplicate shard ring ids: {ring_ids}")
        # ``shard`` may be absent from ``shards``: that is a *joining*
        # shard (a rebalance recipient written by write_spare_shard) —
        # under the recorded map it owns nothing and serves only staged
        # overlay documents until an INSTALL_MAP adds it to the ring.

    def to_metadata(self) -> Dict[str, Any]:
        """The JSON-safe dict stored under :data:`PARTITION_KEY`."""
        return {
            "epoch": self.epoch,
            "shard": self.shard,
            "shards": list(self.shards),
            "virtual_nodes": self.virtual_nodes,
            "doc_order": list(self.doc_order),
        }

    @classmethod
    def from_metadata(cls, metadata: Dict[str, Any]) -> Optional["PartitionManifest"]:
        """Parse a container-metadata dict; ``None`` if not partitioned."""
        raw = metadata.get(PARTITION_KEY)
        if raw is None:
            return None
        if not isinstance(raw, dict):
            raise StorageError(f"malformed partition manifest: {type(raw).__name__}")
        try:
            return cls(
                epoch=int(raw["epoch"]),
                shard=str(raw["shard"]),
                shards=tuple(str(label) for label in raw["shards"]),
                virtual_nodes=int(raw["virtual_nodes"]),
                doc_order=tuple(int(doc_id) for doc_id in raw["doc_order"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"malformed partition manifest: {exc}") from exc

    def with_map(
        self, epoch: int, shards: Iterable[str], virtual_nodes: int
    ) -> "PartitionManifest":
        """This shard's manifest under a new map (doc order is invariant)."""
        return PartitionManifest(
            epoch=epoch,
            shard=self.shard,
            shards=tuple(shards),
            virtual_nodes=virtual_nodes,
            doc_order=self.doc_order,
        )


def read_manifest(path: str | Path) -> Optional[PartitionManifest]:
    """The partition manifest of a container (``None`` if not partitioned)."""
    return PartitionManifest.from_metadata(read_container_header(Path(path)).metadata)


# ----------------------------------------------------------------------
# Rebalance sidecar (staged documents on the recipient)
# ----------------------------------------------------------------------
def overlay_path(store_path: str | Path) -> Path:
    """Where a store's rebalance sidecar lives."""
    store_path = Path(store_path)
    return store_path.with_name(store_path.name + ".rebalance")


def write_overlay(store_path: str | Path, documents: Dict[int, bytes]) -> Path:
    """Persist the staged documents next to the store (atomic rewrite).

    The sidecar is a ``raw`` container: dumb, checksummed, and rewritten
    whole on every batch — at rebalance batch sizes the rewrite is cheap
    and buys crash-safe resume for free.
    """
    path = overlay_path(store_path)
    document_map = DocumentMap()
    payload = bytearray()
    for doc_id in sorted(documents):
        data = documents[doc_id]
        document_map.add(
            DocumentEntry(doc_id=doc_id, offset=len(payload), length=len(data))
        )
        payload += data
    write_container(
        path,
        "raw",
        {"kind": "rebalance-overlay", "store": Path(store_path).name},
        document_map,
        b"",
        bytes(payload),
    )
    return path


def read_overlay(store_path: str | Path) -> Dict[int, bytes]:
    """Load the staged documents from a store's sidecar (empty if none)."""
    path = overlay_path(store_path)
    if not path.exists():
        return {}
    header = read_container_header(path)
    documents: Dict[int, bytes] = {}
    with path.open("rb") as handle:
        for entry in header.document_map:
            handle.seek(header.payload_offset + entry.offset)
            data = handle.read(entry.length)
            if len(data) != entry.length:
                raise StorageError(f"{path}: overlay payload truncated")
            header.check_extent(entry.offset, entry.length, data)
            documents[entry.doc_id] = data
    return documents


def clear_overlay(store_path: str | Path) -> None:
    """Remove the sidecar once its documents are committed to the store."""
    try:
        overlay_path(store_path).unlink()
    except FileNotFoundError:
        pass


# ----------------------------------------------------------------------
# Epoch commit: rewrite a shard store to its new owned set
# ----------------------------------------------------------------------
def rewrite_partition_store(
    path: str | Path,
    keep_ids: Iterable[int],
    add_docs: Dict[int, bytes],
    manifest: PartitionManifest,
) -> Path:
    """Rewrite a shard container so it holds exactly ``keep ∪ add``.

    ``keep_ids`` are documents already in the store whose encoded blobs
    are copied *verbatim* (the dictionary does not change, so the bytes
    cannot either); ``add_docs`` maps doc ids to raw document bytes that
    are encoded against the store's dictionary; everything else currently
    in the store is dropped.  ``original_size`` is adjusted exactly:
    dropped documents are decoded once to learn their length, added
    documents contribute ``len(bytes)``.  Store order follows the
    manifest's global ``doc_order``.  The rewrite is atomic (temp +
    fsync + rename), so a reader holding the old file handle keeps
    reading the old, complete container.
    """
    path = Path(path)
    header = read_container_header(path)
    if header.store_type != "rlz":
        raise StorageError(
            f"cannot rewrite a {header.store_type!r} container as a partition shard"
        )
    dictionary = RlzDictionary(header.dictionary)
    encoder = PairEncoder(header.metadata["scheme"])

    keep = set(keep_ids)
    present = set(header.document_map.doc_ids())
    missing = sorted(keep - present - set(add_docs))
    if missing:
        raise StorageError(f"cannot keep documents absent from the store: {missing}")

    blobs: Dict[int, bytes] = {}
    original_size = int(header.metadata["original_size"])
    with path.open("rb") as handle:
        for entry in header.document_map:
            handle.seek(header.payload_offset + entry.offset)
            blob = handle.read(entry.length)
            if len(blob) != entry.length:
                raise StorageError(f"{path}: payload truncated during rewrite")
            header.check_extent(entry.offset, entry.length, blob)
            if entry.doc_id in keep and entry.doc_id not in add_docs:
                blobs[entry.doc_id] = blob
            else:
                # Dropped (or superseded by a staged copy): read its factor
                # lengths once so original_size stays the exact sum of
                # stored documents (length-0 factors are 1-byte literals).
                _, lengths = encoder.decode_streams(blob)
                original_size -= sum(length if length else 1 for length in lengths)

    factorizer = RlzFactorizer(dictionary) if add_docs else None
    for doc_id in sorted(add_docs):
        data = add_docs[doc_id]
        blobs[doc_id] = encoder.encode(factorizer.factorize(data))
        original_size += len(data)

    order = [doc_id for doc_id in manifest.doc_order if doc_id in blobs]
    stray = sorted(set(blobs) - set(order))
    if stray:
        raise StorageError(f"documents outside the manifest doc order: {stray}")

    document_map = DocumentMap()
    payload = bytearray()
    for doc_id in order:
        blob = blobs[doc_id]
        document_map.add(
            DocumentEntry(doc_id=doc_id, offset=len(payload), length=len(blob))
        )
        payload += blob

    metadata = dict(header.metadata)
    metadata["original_size"] = original_size
    metadata[PARTITION_KEY] = manifest.to_metadata()
    write_container(
        path,
        header.store_type,
        metadata,
        document_map,
        header.dictionary,
        bytes(payload),
    )
    return path
