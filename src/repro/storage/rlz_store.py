"""RLZ document store with random access (the paper's retrieval path).

:class:`RlzStore` persists a :class:`repro.core.CompressedCollection` to a
container file and serves documents from it the way the paper's system
does: the dictionary is loaded once and kept resident in memory, the
document map gives the on-disk extent of each encoded document, and a
request reads exactly that extent, decodes the pair streams and copies the
factors out of the in-memory dictionary.

All reads are charged to a :class:`repro.storage.DiskModel`, so the
benchmark harness can report retrieval rates in the disk-bound regime of
the paper as well as pure CPU decode rates.

Decoded-document caching is delegated to a pluggable
:class:`repro.storage.CacheTier` (``cache=``): :class:`NullCache` (default,
every get decodes — the paper-faithful measurement mode),
:class:`LruCache` (in-process) or :class:`SharedMemoryCache`
(cross-process).  The legacy ``decode_cache_size=N`` knob still works as a
deprecated shim that builds the equivalent ``LruCache``.
"""

from __future__ import annotations

import threading
import warnings
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.compressor import CompressedCollection
from ..core.decoder import decode_many, decode_pairs
from ..core.dictionary import RlzDictionary
from ..core.encoder import PairEncoder
from ..errors import StorageError, StoreClosedError
from .cache import CacheTier, LruCache, NullCache
from .container import ContainerHeader, read_container_header, write_container
from .disk_model import DiskModel
from .document_map import DocumentEntry, DocumentMap

__all__ = ["RlzStore"]


class RlzStore:
    """On-disk RLZ store: one container file, random access per document."""

    store_type = "rlz"

    def __init__(
        self,
        header: ContainerHeader,
        disk: Optional[DiskModel] = None,
        decode_cache_size: Optional[int] = None,
        cache: Optional[CacheTier] = None,
    ) -> None:
        if header.store_type != self.store_type:
            raise StorageError(
                f"container holds a {header.store_type!r} store, expected 'rlz'"
            )
        self._header = header
        self._dictionary = RlzDictionary(header.dictionary)
        self._scheme_name = header.metadata["scheme"]
        self._encoder = PairEncoder(self._scheme_name)
        self._disk = disk if disk is not None else DiskModel()
        self._cache = self._resolve_cache(cache, decode_cache_size)
        self._handle = header.path.open("rb")
        self._closed = False
        # Bytes actually materialised by factor decoding (cache hits are
        # free); get_window charges only the factors covering the window,
        # which is how tests and benchmarks verify partial decode pays.
        self._decoded_bytes = 0
        # get()/get_many() may be driven concurrently by the async front's
        # thread pool; the shared file handle's seek+read must be atomic.
        self._io_lock = threading.Lock()

    @staticmethod
    def _resolve_cache(
        cache: Optional[CacheTier], decode_cache_size: Optional[int]
    ) -> CacheTier:
        if cache is not None:
            if decode_cache_size is not None:
                raise StorageError(
                    "pass either cache= (a CacheTier) or the legacy "
                    "decode_cache_size=, not both"
                )
            return cache
        if decode_cache_size is None:
            return NullCache()
        warnings.warn(
            "decode_cache_size= is deprecated; pass cache=LruCache(n) or open "
            "the archive through repro.api.RlzArchive with "
            "ArchiveConfig(cache=CacheSpec(tier='lru', capacity=n))",
            DeprecationWarning,
            stacklevel=3,
        )
        if decode_cache_size < 0:
            raise StorageError("decode_cache_size must be >= 0")
        if decode_cache_size == 0:
            return NullCache()
        return LruCache(decode_cache_size)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def write(
        cls,
        compressed: CompressedCollection,
        path: str | Path,
        extra_metadata: Optional[Dict] = None,
    ) -> Path:
        """Persist a compressed collection to ``path`` and return the path.

        ``extra_metadata`` entries are merged into the container's metadata
        dict (the partition manifest rides here); they must not collide
        with the store's own keys and are ignored by readers that do not
        know them.
        """
        path = Path(path)
        document_map = DocumentMap()
        payload = bytearray()
        for document in compressed.documents:
            document_map.add(
                DocumentEntry(
                    doc_id=document.doc_id,
                    offset=len(payload),
                    length=len(document.data),
                )
            )
            payload += document.data
        metadata = {
            "scheme": compressed.scheme_name,
            "collection": compressed.collection_name,
            "original_size": compressed.original_size,
        }
        if extra_metadata:
            overlap = sorted(metadata.keys() & extra_metadata.keys())
            if overlap:
                raise StorageError(f"extra_metadata collides with store keys: {overlap}")
            metadata.update(extra_metadata)
        write_container(
            path,
            cls.store_type,
            metadata,
            document_map,
            compressed.dictionary.data,
            bytes(payload),
        )
        return path

    @classmethod
    def open(
        cls,
        path: str | Path,
        disk: Optional[DiskModel] = None,
        decode_cache_size: Optional[int] = None,
        cache: Optional[CacheTier] = None,
    ) -> "RlzStore":
        """Open an existing RLZ container for reading.

        ``cache`` plugs in a decode-cache tier (see
        :mod:`repro.storage.cache`); repeated-access serving workloads hit
        it instead of re-reading and re-decoding.  ``decode_cache_size=N``
        is the deprecated spelling of ``cache=LruCache(N)``.
        """
        return cls(
            read_container_header(Path(path)),
            disk=disk,
            decode_cache_size=decode_cache_size,
            cache=cache,
        )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def dictionary(self) -> RlzDictionary:
        """The in-memory dictionary used for decoding."""
        return self._dictionary

    @property
    def scheme_name(self) -> str:
        """Pair-coding scheme of the stored encoding."""
        return self._scheme_name

    @property
    def disk(self) -> DiskModel:
        """The disk model charged for payload reads."""
        return self._disk

    @property
    def document_map(self) -> DocumentMap:
        """The document map."""
        return self._header.document_map

    @property
    def stored_size(self) -> int:
        """Size of the container file on disk."""
        return self._header.path.stat().st_size

    @property
    def original_size(self) -> int:
        """Total uncompressed size recorded at write time."""
        return int(self._header.metadata["original_size"])

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def cache(self) -> CacheTier:
        """The decode-cache tier serving this store."""
        return self._cache

    def compression_percent(self, include_dictionary: bool = False) -> float:
        """Stored payload (optionally plus dictionary) as % of original size."""
        payload = sum(entry.length for entry in self._header.document_map)
        if include_dictionary:
            payload += len(self._dictionary)
        if self.original_size == 0:
            return 0.0
        return 100.0 * payload / self.original_size

    def doc_ids(self) -> List[int]:
        """All stored document IDs in store order."""
        return self._header.document_map.doc_ids()

    def __len__(self) -> int:
        return len(self._header.document_map)

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreClosedError(
                f"store {self._header.path} is closed; reopen it before reading"
            )

    def _read_blob(self, entry: DocumentEntry) -> bytes:
        with self._io_lock:
            self._ensure_open()
            self._disk.charge_read(
                self._header.payload_offset + entry.offset, entry.length
            )
            self._handle.seek(self._header.payload_offset + entry.offset)
            blob = self._handle.read(entry.length)
        if len(blob) != entry.length:
            raise StorageError("payload truncated while reading document")
        self._header.check_extent(entry.offset, entry.length, blob)
        return blob

    @property
    def cache_info(self) -> Dict[str, int]:
        """Decoded-document cache counters (hits, misses, size, capacity)."""
        return self._cache.cache_info()

    @property
    def decoded_bytes(self) -> int:
        """Cumulative bytes materialised by factor decoding.

        Whole-document reads charge the document size; :meth:`get_window`
        charges only the output of the factors intersecting the window.
        Comparing deltas of this counter is how the snippet path proves it
        decodes strictly less than a full-document decode.
        """
        return self._decoded_bytes

    def get(self, doc_id: int) -> bytes:
        """Random access: decode one document."""
        self._ensure_open()
        cached = self._cache.get(doc_id)
        if cached is not None:
            return cached
        entry = self._header.document_map.lookup(doc_id)
        blob = self._read_blob(entry)
        positions, lengths = self._encoder.decode_streams(blob)
        document = decode_pairs(positions, lengths, self._dictionary)
        self._decoded_bytes += len(document)
        self._cache.put(doc_id, document)
        return document

    def get_window(self, doc_id: int, start: int, length: int) -> bytes:
        """Partial decode: ``length`` bytes of one document from ``start``.

        Only the factors whose output intersects ``[start, start+length)``
        are materialised — the factor streams are decoded (cheap varint
        headers), per-factor output lengths prefix-summed, and
        :func:`repro.core.decode_pairs` runs on the covering sub-range,
        with the partial head/tail factors trimmed afterwards.  The window
        is clamped to the document, so over-long requests return what
        exists; a window entirely past the end returns ``b""``.

        This is the snippet-serving path: a SEARCH hit knows the byte
        offset of its first matching term, and the server decodes a window
        around it instead of the whole document.
        """
        self._ensure_open()
        if start < 0 or length < 0:
            raise StorageError(
                f"get_window needs non-negative start/length, "
                f"got start={start} length={length}"
            )
        entry = self._header.document_map.lookup(doc_id)
        blob = self._read_blob(entry)
        positions, lengths = self._encoder.decode_streams(blob)
        # A literal factor (length 0) outputs exactly one byte.
        total = sum(factor_length or 1 for factor_length in lengths)
        end = min(start + length, total)
        if start >= end:
            return b""
        first = last = None
        skip = 0
        running = 0
        for index, factor_length in enumerate(lengths):
            factor_end = running + (factor_length or 1)
            if first is None and factor_end > start:
                first = index
                skip = start - running
            if factor_end >= end:
                last = index
                break
            running = factor_end
        window = decode_pairs(
            positions[first : last + 1], lengths[first : last + 1], self._dictionary
        )
        self._decoded_bytes += len(window)
        return bytes(window[skip : skip + (end - start)])

    def get_many(self, doc_ids: Sequence[int]) -> List[bytes]:
        """Batch random access: decode several documents in one pass.

        The decode work is batched — IDs that are not already cached are
        read once and batch-decoded with :func:`repro.core.decode_many`
        (one vectorized gather for the whole batch, repeated IDs decoded
        only once) — but the cache *accounting* replays the accesses in
        request order through exactly the :meth:`get` code path: the same
        sequence of IDs produces the same hit/miss counters, the same cache
        contents and the same recency whether it is issued through ``get``
        or ``get_many``.  Only the disk reads are deduplicated.  The result
        order matches ``doc_ids``.
        """
        self._ensure_open()
        # Pass 1 — peek (no counter or recency side effects) to find the IDs
        # that will need a decode, then batch-decode them in one call.
        to_decode: List[int] = []
        seen: set = set()
        for doc_id in doc_ids:
            if doc_id in seen:
                continue
            seen.add(doc_id)
            if not self._cache.peek(doc_id):
                to_decode.append(doc_id)
        decoded: Dict[int, bytes] = {}
        if to_decode:
            streams = []
            for doc_id in to_decode:
                entry = self._header.document_map.lookup(doc_id)
                blob = self._read_blob(entry)
                streams.append(self._encoder.decode_streams(blob))
            for doc_id, document in zip(to_decode, decode_many(streams, self._dictionary)):
                decoded[doc_id] = document
                self._decoded_bytes += len(document)
        # Pass 2 — replay the accesses in order with get's exact accounting.
        results: List[bytes] = []
        for doc_id in doc_ids:
            cached = self._cache.get(doc_id)
            if cached is not None:
                results.append(cached)
                continue
            document = decoded.get(doc_id)
            if document is None:
                # The ID was cached at peek time but evicted during this
                # replay (possible only when the batch overflows a small
                # cache): decode it individually, exactly as ``get`` would.
                entry = self._header.document_map.lookup(doc_id)
                blob = self._read_blob(entry)
                positions, lengths = self._encoder.decode_streams(blob)
                document = decode_pairs(positions, lengths, self._dictionary)
                decoded[doc_id] = document
                self._decoded_bytes += len(document)
            results.append(document)
            self._cache.put(doc_id, document)
        return results

    def iter_documents(self) -> Iterator[Tuple[int, bytes]]:
        """Sequential access: decode every document in store order."""
        self._ensure_open()
        for entry in self._header.document_map:
            blob = self._read_blob(entry)
            positions, lengths = self._encoder.decode_streams(blob)
            document = decode_pairs(positions, lengths, self._dictionary)
            self._decoded_bytes += len(document)
            yield entry.doc_id, document

    def close(self) -> None:
        """Close the file handle and the cache tier (idempotent)."""
        if self._closed:
            return
        with self._io_lock:
            self._closed = True
            self._handle.close()
        self._cache.close()

    def __enter__(self) -> "RlzStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
