"""On-disk container format shared by all stores.

A container file holds four sections behind a short header::

    magic          b"RPRC1\\n"
    store type     vbyte length + ASCII name ("rlz", "blocked", "raw")
    metadata       u64 length + UTF-8 JSON (store-specific parameters)
    document map   u64 length + DocumentMap.to_bytes()
    dictionary     u64 length + raw bytes (empty for non-RLZ stores)
    payload        the remainder of the file

Offsets recorded in the document map are relative to the start of the
payload section, so the header can change size (e.g. when metadata grows)
without invalidating them.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Dict

from ..errors import StorageError
from .document_map import DocumentMap

__all__ = ["ContainerHeader", "write_container", "read_container_header", "open_payload"]

_MAGIC = b"RPRC1\n"


@dataclass
class ContainerHeader:
    """Parsed header of a container file."""

    store_type: str
    metadata: Dict[str, Any]
    document_map: DocumentMap
    dictionary: bytes
    payload_offset: int
    path: Path


def write_container(
    path: str | Path,
    store_type: str,
    metadata: Dict[str, Any],
    document_map: DocumentMap,
    dictionary: bytes,
    payload: bytes,
) -> int:
    """Write a complete container file; returns total bytes written."""
    path = Path(path)
    encoded_type = store_type.encode("ascii")
    metadata_bytes = json.dumps(metadata, sort_keys=True).encode("utf-8")
    map_bytes = document_map.to_bytes()
    with path.open("wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<H", len(encoded_type)))
        handle.write(encoded_type)
        handle.write(struct.pack("<Q", len(metadata_bytes)))
        handle.write(metadata_bytes)
        handle.write(struct.pack("<Q", len(map_bytes)))
        handle.write(map_bytes)
        handle.write(struct.pack("<Q", len(dictionary)))
        handle.write(dictionary)
        handle.write(payload)
        return handle.tell()


def read_container_header(path: str | Path) -> ContainerHeader:
    """Read and parse the header sections of a container file."""
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(len(_MAGIC))
        if magic != _MAGIC:
            raise StorageError(f"{path} is not a repro container (bad magic {magic!r})")
        (type_length,) = struct.unpack("<H", _read_exact(handle, 2))
        store_type = _read_exact(handle, type_length).decode("ascii")
        (metadata_length,) = struct.unpack("<Q", _read_exact(handle, 8))
        metadata = json.loads(_read_exact(handle, metadata_length).decode("utf-8"))
        (map_length,) = struct.unpack("<Q", _read_exact(handle, 8))
        document_map = DocumentMap.from_bytes(_read_exact(handle, map_length))
        (dictionary_length,) = struct.unpack("<Q", _read_exact(handle, 8))
        dictionary = _read_exact(handle, dictionary_length)
        payload_offset = handle.tell()
    return ContainerHeader(
        store_type=store_type,
        metadata=metadata,
        document_map=document_map,
        dictionary=dictionary,
        payload_offset=payload_offset,
        path=path,
    )


def open_payload(header: ContainerHeader) -> BinaryIO:
    """Open the container for payload reads (caller seeks relative to payload)."""
    return header.path.open("rb")


def _read_exact(handle: BinaryIO, length: int) -> bytes:
    data = handle.read(length)
    if len(data) != length:
        raise StorageError("container file truncated")
    return data
