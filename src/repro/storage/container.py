"""On-disk container format shared by all stores.

A container file holds five sections behind a short header::

    magic          b"RPRC2\\n"
    store type     vbyte length + ASCII name ("rlz", "blocked", "raw")
    metadata       u64 length + UTF-8 JSON (store-specific parameters)
    document map   u64 length + DocumentMap.to_bytes()
    dictionary     u64 length + raw bytes (empty for non-RLZ stores)
    checksums      u64 length + CRC32 table (see below)
    payload        the remainder of the file

Offsets recorded in the document map are relative to the start of the
payload section, so the header can change size (e.g. when metadata grows)
without invalidating them.

The checksum section makes corruption *detectable* instead of silent:

* one CRC32 over every header byte before the checksum section (magic,
  store type, metadata, document map, dictionary — lengths included),
  verified when the header is parsed and *before* anything is decoded —
  a flipped byte anywhere in the header fails the open with
  :class:`repro.errors.CorruptArchiveError`;
* a table of ``(offset, length, crc32)`` entries covering every payload
  extent a reader will ever fetch (per document for ``rlz``/``raw``, per
  compressed block for ``blocked``).  Stores check the CRC on every
  positioned read, and :func:`verify_container` scans the whole table
  offline (``repro verify``).

Containers written by earlier versions start with ``b"RPRC1\\n"`` and have
no checksum section; they still open and read (``checksums`` is ``None``)
but cannot be verified.

Writes are atomic: the container is built in a same-directory temporary
file, fsync'd, then :func:`os.replace`\\ d into place — a build killed
mid-write leaves no openable partial archive, only a stray ``*.tmp``.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO, Dict, Iterable, List, Optional, Tuple

from ..errors import CorruptArchiveError, StorageError
from .document_map import DocumentMap

__all__ = [
    "ContainerHeader",
    "write_container",
    "read_container_header",
    "open_payload",
    "verify_container",
]

_MAGIC = b"RPRC2\n"
_MAGIC_V1 = b"RPRC1\n"
_CHECKSUM_HEAD = struct.Struct("<II")  # header crc, extent count
_CHECKSUM_EXTENT = struct.Struct("<QQI")  # payload offset, length, crc


@dataclass
class ContainerHeader:
    """Parsed header of a container file."""

    store_type: str
    metadata: Dict[str, Any]
    document_map: DocumentMap
    dictionary: bytes
    payload_offset: int
    path: Path
    #: ``(offset, length) -> crc32`` over payload extents; ``None`` for
    #: legacy RPRC1 containers that carry no checksum section.
    checksums: Optional[Dict[Tuple[int, int], int]] = field(default=None)

    def expected_crc(self, offset: int, length: int) -> Optional[int]:
        """CRC recorded for the payload extent, or ``None`` if unknown."""
        if not self.checksums:
            return None
        return self.checksums.get((offset, length))

    def check_extent(self, offset: int, length: int, data: bytes) -> None:
        """Verify one payload read against the checksum table.

        No-op when the container predates checksums or the extent is not
        in the table; raises :class:`CorruptArchiveError` on mismatch.
        """
        expected = self.expected_crc(offset, length)
        if expected is not None and zlib.crc32(data) != expected:
            raise CorruptArchiveError(
                f"{self.path}: payload extent at offset {offset} "
                f"({length} bytes) failed its CRC32 check"
            )


def _derive_extents(document_map: DocumentMap) -> List[Tuple[int, int]]:
    extents: List[Tuple[int, int]] = []
    for entry in document_map:
        if entry.block_index != -1:
            raise StorageError(
                "blocked document maps record within-block offsets; pass the "
                "block extents to write_container(checksum_extents=...) explicitly"
            )
        extents.append((entry.offset, entry.length))
    return extents


def write_container(
    path: str | Path,
    store_type: str,
    metadata: Dict[str, Any],
    document_map: DocumentMap,
    dictionary: bytes,
    payload: bytes,
    checksum_extents: Optional[Iterable[Tuple[int, int]]] = None,
) -> int:
    """Write a complete container file atomically; returns bytes written.

    ``checksum_extents`` names the payload extents to checksum (what the
    store's read path will fetch).  By default they are taken from the
    document map — correct for stores whose entries are direct payload
    extents (``rlz``, ``raw``); blocked stores must pass their block table.

    The file appears at ``path`` only after the full container (including
    checksums) has been written and fsync'd to a same-directory temporary,
    so readers never observe a torn write.
    """
    path = Path(path)
    encoded_type = store_type.encode("ascii")
    metadata_bytes = json.dumps(metadata, sort_keys=True).encode("utf-8")
    map_bytes = document_map.to_bytes()

    if checksum_extents is None:
        extents = _derive_extents(document_map)
    else:
        extents = [(int(offset), int(length)) for offset, length in checksum_extents]

    header = b"".join(
        (
            _MAGIC,
            struct.pack("<H", len(encoded_type)),
            encoded_type,
            struct.pack("<Q", len(metadata_bytes)),
            metadata_bytes,
            struct.pack("<Q", len(map_bytes)),
            map_bytes,
            struct.pack("<Q", len(dictionary)),
            dictionary,
        )
    )
    table = bytearray(_CHECKSUM_HEAD.pack(zlib.crc32(header), len(extents)))
    for offset, length in extents:
        if offset < 0 or length < 0 or offset + length > len(payload):
            raise StorageError(
                f"checksum extent ({offset}, {length}) is outside the payload"
            )
        table += _CHECKSUM_EXTENT.pack(
            offset, length, zlib.crc32(payload[offset : offset + length])
        )

    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with tmp.open("wb") as handle:
            handle.write(header)
            handle.write(struct.pack("<Q", len(table)))
            handle.write(bytes(table))
            handle.write(payload)
            total = handle.tell()
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return total


def _parse_checksums(table: bytes, path: Path, header_bytes: bytes) -> Dict[Tuple[int, int], int]:
    if len(table) < _CHECKSUM_HEAD.size:
        raise StorageError(f"{path}: checksum section truncated")
    header_crc, count = _CHECKSUM_HEAD.unpack_from(table, 0)
    if zlib.crc32(header_bytes) != header_crc:
        raise CorruptArchiveError(
            f"{path}: container header failed its CRC32 check"
        )
    expected_size = _CHECKSUM_HEAD.size + count * _CHECKSUM_EXTENT.size
    if len(table) != expected_size:
        raise StorageError(f"{path}: checksum section truncated")
    checksums: Dict[Tuple[int, int], int] = {}
    position = _CHECKSUM_HEAD.size
    for _ in range(count):
        offset, length, crc = _CHECKSUM_EXTENT.unpack_from(table, position)
        position += _CHECKSUM_EXTENT.size
        checksums[(offset, length)] = crc
    return checksums


def read_container_header(path: str | Path) -> ContainerHeader:
    """Read and parse the header sections of a container file.

    For RPRC2 containers the whole header (every byte before the checksum
    section) is CRC-verified *before* the metadata or document map is
    parsed, so a flipped header byte raises :class:`CorruptArchiveError`
    instead of producing a parse error — or worse, a quietly wrong
    archive.
    """
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(len(_MAGIC))
        if magic not in (_MAGIC, _MAGIC_V1):
            raise StorageError(f"{path} is not a repro container (bad magic {magic!r})")
        # Read the header sections raw first; parsing waits until the
        # header CRC has vouched for the bytes.
        type_length_raw = _read_exact(handle, 2)
        (type_length,) = struct.unpack("<H", type_length_raw)
        type_bytes = _read_exact(handle, type_length)
        metadata_length_raw = _read_exact(handle, 8)
        (metadata_length,) = struct.unpack("<Q", metadata_length_raw)
        metadata_bytes = _read_exact(handle, metadata_length)
        map_length_raw = _read_exact(handle, 8)
        (map_length,) = struct.unpack("<Q", map_length_raw)
        map_bytes = _read_exact(handle, map_length)
        dictionary_length_raw = _read_exact(handle, 8)
        (dictionary_length,) = struct.unpack("<Q", dictionary_length_raw)
        dictionary = _read_exact(handle, dictionary_length)
        checksums: Optional[Dict[Tuple[int, int], int]] = None
        if magic == _MAGIC:
            header_bytes = b"".join(
                (
                    magic,
                    type_length_raw,
                    type_bytes,
                    metadata_length_raw,
                    metadata_bytes,
                    map_length_raw,
                    map_bytes,
                    dictionary_length_raw,
                    dictionary,
                )
            )
            (table_length,) = struct.unpack("<Q", _read_exact(handle, 8))
            table = _read_exact(handle, table_length)
            checksums = _parse_checksums(table, path, header_bytes)
        payload_offset = handle.tell()
    try:
        store_type = type_bytes.decode("ascii")
        metadata = json.loads(metadata_bytes.decode("utf-8"))
        document_map = DocumentMap.from_bytes(map_bytes)
    except CorruptArchiveError:
        raise
    except Exception as exc:
        # Unverifiable (legacy) containers can still present damaged
        # sections; surface one typed error instead of a parser traceback.
        raise StorageError(f"{path}: container header does not parse: {exc}") from exc
    return ContainerHeader(
        store_type=store_type,
        metadata=metadata,
        document_map=document_map,
        dictionary=dictionary,
        payload_offset=payload_offset,
        path=path,
        checksums=checksums,
    )


def verify_container(path: str | Path) -> Dict[str, Any]:
    """Scan a container end-to-end against its checksum table.

    Parses the header (which CRC-verifies the metadata, document-map and
    dictionary sections), then reads every checksummed payload extent and
    recomputes its CRC32.  A single flipped byte anywhere in a covered
    extent raises :class:`CorruptArchiveError`; structural damage
    (truncation, bad magic) raises :class:`StorageError`.

    Returns a report::

        {"path", "store_type", "format", "documents",
         "extents_checked", "bytes_checked", "verifiable"}

    Legacy RPRC1 containers parse but carry no checksums; they come back
    with ``verifiable=False`` and nothing checked.
    """
    path = Path(path)
    header = read_container_header(path)
    report: Dict[str, Any] = {
        "path": str(path),
        "store_type": header.store_type,
        "format": "RPRC2" if header.checksums is not None else "RPRC1",
        "documents": len(header.document_map),
        "extents_checked": 0,
        "bytes_checked": 0,
        "verifiable": header.checksums is not None,
    }
    if header.checksums is None:
        return report
    file_size = path.stat().st_size
    with path.open("rb") as handle:
        for (offset, length), crc in header.checksums.items():
            if header.payload_offset + offset + length > file_size:
                raise StorageError(
                    f"{path}: payload truncated (extent at offset {offset} "
                    f"extends past end of file)"
                )
            handle.seek(header.payload_offset + offset)
            data = _read_exact(handle, length)
            if zlib.crc32(data) != crc:
                raise CorruptArchiveError(
                    f"{path}: payload extent at offset {offset} "
                    f"({length} bytes) failed its CRC32 check"
                )
            report["extents_checked"] += 1
            report["bytes_checked"] += length
    return report


def open_payload(header: ContainerHeader) -> BinaryIO:
    """Open the container for payload reads (caller seeks relative to payload)."""
    return header.path.open("rb")


def _read_exact(handle: BinaryIO, length: int) -> bytes:
    data = handle.read(length)
    if len(data) != length:
        raise StorageError("container file truncated")
    return data
