"""Document map: locate each encoded document inside a container file.

"Store a document map which provides the position on disk of each encoded
file.  This component is common to all large scale file compression
systems." (Section 3.1.)  The same structure is used by the blocked
baselines, where it additionally records which block a document lives in and
its index within the block.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

from ..errors import StorageError

__all__ = ["DocumentEntry", "DocumentMap"]

_ENTRY_FORMAT = "<qqqqq"  # doc_id, offset, length, block_index, index_in_block
_ENTRY_SIZE = struct.calcsize(_ENTRY_FORMAT)


@dataclass(frozen=True)
class DocumentEntry:
    """Location of one document inside a store.

    ``offset``/``length`` address the byte range holding the document's
    encoded form (for RLZ and raw stores) or the block containing it (for
    blocked stores).  ``block_index`` and ``index_in_block`` are -1 for
    stores that do not use blocks.
    """

    doc_id: int
    offset: int
    length: int
    block_index: int = -1
    index_in_block: int = -1


class DocumentMap:
    """Ordered collection of :class:`DocumentEntry` with binary serialisation."""

    def __init__(self, entries: Sequence[DocumentEntry] = ()) -> None:
        self._entries: List[DocumentEntry] = list(entries)
        self._by_id: Dict[int, DocumentEntry] = {e.doc_id: e for e in self._entries}
        if len(self._by_id) != len(self._entries):
            raise StorageError("duplicate document ids in document map")

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DocumentEntry]:
        return iter(self._entries)

    def add(self, entry: DocumentEntry) -> None:
        """Append an entry (document IDs must remain unique)."""
        if entry.doc_id in self._by_id:
            raise StorageError(f"document id {entry.doc_id} already mapped")
        self._entries.append(entry)
        self._by_id[entry.doc_id] = entry

    def lookup(self, doc_id: int) -> DocumentEntry:
        """Find the entry for ``doc_id``.

        Raises
        ------
        repro.errors.StorageError
            If the document is not in the map.
        """
        try:
            return self._by_id[doc_id]
        except KeyError as exc:
            raise StorageError(f"document id {doc_id} not in document map") from exc

    def doc_ids(self) -> List[int]:
        """All document IDs in map order."""
        return [entry.doc_id for entry in self._entries]

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise the map to a compact fixed-width binary form."""
        out = bytearray(struct.pack("<q", len(self._entries)))
        for entry in self._entries:
            out += struct.pack(
                _ENTRY_FORMAT,
                entry.doc_id,
                entry.offset,
                entry.length,
                entry.block_index,
                entry.index_in_block,
            )
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DocumentMap":
        """Reconstruct a map from :meth:`to_bytes` output."""
        if len(data) < 8:
            raise StorageError("document map data too short")
        (count,) = struct.unpack_from("<q", data, 0)
        expected = 8 + count * _ENTRY_SIZE
        if len(data) < expected:
            raise StorageError("document map data truncated")
        entries = []
        for index in range(count):
            fields = struct.unpack_from(_ENTRY_FORMAT, data, 8 + index * _ENTRY_SIZE)
            entries.append(DocumentEntry(*fields))
        return cls(entries)
