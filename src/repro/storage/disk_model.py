"""Analytical disk latency model.

The paper's retrieval experiments are dominated by disk behaviour: the
compressed collections are much larger than RAM, caches are dropped between
runs, and the authors note that "disk seek and read latency ... are the
dominant cost in document retrieval".  Re-running on today's hardware (and
at a much smaller scale, where everything fits in the page cache) would not
reproduce that regime, so the stores in this package charge their I/O to an
explicit :class:`DiskModel` configured with the characteristics of the
paper's 7200 RPM SATA disk.  Sequential access is charged transfer time
plus an occasional seek; random access pays a seek + rotational latency per
request, which is exactly the asymmetry that produces the paper's large gap
between sequential and query-log retrieval rates.

The model is deliberately simple (constant seek + rotational latency,
constant transfer rate, optional read-ahead window) but sufficient to
preserve the orderings reported in Tables 4-9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DiskModel", "DiskAccounting"]


@dataclass
class DiskAccounting:
    """Accumulated simulated I/O cost."""

    seeks: int = 0
    bytes_read: int = 0
    seconds: float = 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.seeks = 0
        self.bytes_read = 0
        self.seconds = 0.0


@dataclass
class DiskModel:
    """Charge simulated time for disk reads.

    Default parameters approximate the paper's Seagate 7200 RPM disk:
    ~8.5 ms average seek, ~4.16 ms average rotational latency (half a
    revolution at 7200 RPM) and ~100 MB/s sustained transfer.

    Attributes
    ----------
    seek_time:
        Average seek time in seconds, charged for every discontiguous read.
    rotational_latency:
        Average rotational latency in seconds, charged with each seek.
    transfer_rate:
        Sustained sequential transfer rate in bytes per second.
    readahead:
        Two reads within this many bytes of each other are treated as
        sequential (no seek charged), modelling OS read-ahead and on-disk
        caching.
    """

    seek_time: float = 0.0085
    rotational_latency: float = 0.00416
    transfer_rate: float = 100 * 1024 * 1024
    readahead: int = 256 * 1024
    accounting: DiskAccounting = field(default_factory=DiskAccounting)

    def __post_init__(self) -> None:
        if self.transfer_rate <= 0:
            raise ValueError("transfer_rate must be positive")
        self._position: int | None = None

    def reset(self) -> None:
        """Clear accumulated accounting and forget the head position."""
        self.accounting.reset()
        self._position = None

    @property
    def elapsed(self) -> float:
        """Total simulated seconds charged so far."""
        return self.accounting.seconds

    def charge_read(self, offset: int, length: int) -> float:
        """Charge a read of ``length`` bytes at byte ``offset``; returns its cost."""
        cost = 0.0
        sequential = (
            self._position is not None
            and 0 <= offset - self._position <= self.readahead
        )
        if not sequential:
            cost += self.seek_time + self.rotational_latency
            self.accounting.seeks += 1
        cost += length / self.transfer_rate
        self._position = offset + length
        self.accounting.bytes_read += length
        self.accounting.seconds += cost
        return cost
