"""Storage substrate: on-disk stores, document maps and the disk model.

Three store types implement the systems compared in the paper's evaluation:

* :class:`RlzStore` — the paper's system: per-document RLZ encodings, an
  in-memory dictionary, and a document map for random access;
* :class:`BlockedStore` — the zlib / lzma block-compressed baselines (and,
  with ``compressor="none"``, a blocked uncompressed store);
* :class:`RawStore` — the uncompressed "ascii" baseline.

All stores charge their reads to a :class:`DiskModel`, which reproduces the
disk-bound retrieval regime of the paper's experiments at laptop scale.

Containers are written atomically (temp + fsync + rename) and carry CRC32
checksums over every section and payload extent; stores verify them on
read, and :func:`verify_container` (``repro verify``) scans a file offline.
"""

from .blocked import BlockedStore, BlockedStoreConfig
from .cache import CacheTier, LruCache, NullCache, SharedMemoryCache
from .container import (
    ContainerHeader,
    read_container_header,
    verify_container,
    write_container,
)
from .disk_model import DiskAccounting, DiskModel
from .document_map import DocumentEntry, DocumentMap
from .partition import PartitionManifest
from .raw_store import RawStore
from .rlz_store import RlzStore

__all__ = [
    "BlockedStore",
    "BlockedStoreConfig",
    "CacheTier",
    "ContainerHeader",
    "DiskAccounting",
    "DiskModel",
    "DocumentEntry",
    "DocumentMap",
    "LruCache",
    "NullCache",
    "PartitionManifest",
    "RawStore",
    "RlzStore",
    "SharedMemoryCache",
    "read_container_header",
    "verify_container",
    "write_container",
]
