"""Uncompressed document store (the paper's "ascii" baseline).

"The first baseline is simply a raw concatenation of uncompressed documents
with a map specifying offsets to each document location." (Section 4.)
Random access needs one positioned read of exactly the document's extent;
there is no decompression cost, but every byte of the document must cross
the (simulated) disk interface, which is why this baseline loses to the
compressed stores on sequential throughput despite doing no CPU work.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from ..corpus.document import DocumentCollection
from ..errors import StorageError
from .container import ContainerHeader, read_container_header, write_container
from .disk_model import DiskModel
from .document_map import DocumentEntry, DocumentMap

__all__ = ["RawStore"]


class RawStore:
    """Raw concatenation of documents plus a document map."""

    store_type = "raw"

    def __init__(self, header: ContainerHeader, disk: Optional[DiskModel] = None) -> None:
        if header.store_type != self.store_type:
            raise StorageError(
                f"container holds a {header.store_type!r} store, expected 'raw'"
            )
        self._header = header
        self._disk = disk if disk is not None else DiskModel()
        self._handle = header.path.open("rb")

    @classmethod
    def build(cls, collection: DocumentCollection, path: str | Path) -> Path:
        """Write ``collection`` uncompressed to a container at ``path``."""
        path = Path(path)
        document_map = DocumentMap()
        payload = bytearray()
        for document in collection:
            document_map.add(
                DocumentEntry(
                    doc_id=document.doc_id,
                    offset=len(payload),
                    length=document.size,
                )
            )
            payload += document.content
        metadata = {
            "collection": collection.name,
            "original_size": collection.total_size,
        }
        write_container(path, cls.store_type, metadata, document_map, b"", bytes(payload))
        return path

    @classmethod
    def open(cls, path: str | Path, disk: Optional[DiskModel] = None) -> "RawStore":
        """Open an existing raw container for reading."""
        return cls(read_container_header(Path(path)), disk=disk)

    @property
    def disk(self) -> DiskModel:
        """The disk model charged for document reads."""
        return self._disk

    @property
    def original_size(self) -> int:
        """Total uncompressed collection size."""
        return int(self._header.metadata["original_size"])

    def compression_percent(self) -> float:
        """Always 100.0: the store holds the documents verbatim."""
        return 100.0

    def doc_ids(self) -> List[int]:
        """All stored document IDs in store order."""
        return self._header.document_map.doc_ids()

    def __len__(self) -> int:
        return len(self._header.document_map)

    def get(self, doc_id: int) -> bytes:
        """Random access: one positioned read of the document's extent."""
        entry = self._header.document_map.lookup(doc_id)
        self._disk.charge_read(self._header.payload_offset + entry.offset, entry.length)
        self._handle.seek(self._header.payload_offset + entry.offset)
        data = self._handle.read(entry.length)
        if len(data) != entry.length:
            raise StorageError("payload truncated while reading document")
        self._header.check_extent(entry.offset, entry.length, data)
        return data

    def iter_documents(self) -> Iterator[Tuple[int, bytes]]:
        """Sequential access over all documents in store order."""
        for doc_id in self.doc_ids():
            yield doc_id, self.get(doc_id)

    def close(self) -> None:
        """Close the underlying file handle."""
        self._handle.close()

    def __enter__(self) -> "RawStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
