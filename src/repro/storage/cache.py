"""Pluggable decode-cache tiers for the serving path.

The paper's serving story is CPU-cheap random access; a decode cache on top
of it turns repeated-access query logs (the dominant web-archive workload)
into memory reads.  PR 1 hardcoded that cache into :class:`RlzStore` as a
private ``OrderedDict``; this module extracts it behind a small protocol so
the facade (:mod:`repro.api`) can plug in different tiers per deployment:

* :class:`NullCache` — no caching; every request decodes.  This is the
  paper-faithful default: the benchmark tables keep measuring cold decodes.
* :class:`LruCache` — the in-process LRU of decoded documents, semantics
  identical to the PR-1 store cache (move-to-end on hit, evict-oldest on
  overflow, hit/miss counters).
* :class:`SharedMemoryCache` — a cross-process tier: a fixed-slot ring of
  decoded documents in one ``multiprocessing.shared_memory`` segment, so
  every reader process serving the same archive shares one decode cache
  instead of each warming its own.

Every tier implements :class:`CacheTier`: ``get`` (counted lookup),
``peek`` (uncounted presence check, used by ``get_many``'s planning pass),
``put``, ``cache_info``, ``clear`` and ``close``.

Cross-process memory model
--------------------------

:class:`SharedMemoryCache` is deliberately lock-free across processes.  The
segment holds a header (magic, geometry, ring cursor, and the shared stats
block), four ``int64`` metadata arrays (``doc_id``, version, length,
checksum per slot), an open-addressing **slot index** (two ``int64`` arrays
of ``table_size >= 2 x slots`` entries mapping doc id -> slot, linear
probing with Fibonacci hashing — the :class:`repro.suffix.CompactJumpIndex`
scheme), and the slot data.  Writers claim the next ring slot, force the
slot's version to an *odd* value, invalidate the doc id, copy the bytes,
then publish length, checksum, doc id and the next *even* version — a
seqlock — and finally point an index entry at the slot.  Readers **probe**
the index by doc id (O(1), not O(slots)), snapshot the version (odd means
"write in progress": skip), copy the bytes out, and re-check version and
doc id; any change discards the copy and the probe continues (a stale
index entry — its slot since recycled for another document — fails that
same validation, so staleness costs a probe step, never a wrong answer).
Index entries are reclaimed in place: an insert claims the first empty,
same-id or stale entry on its probe path.

The header also carries a **shared stats block** — machine-wide ``hits``/
``misses``/``stores``/``rejected``/``evictions`` counters folded into
``cache_info()`` as ``shared_*`` keys — so a fleet of reader processes
observes one hit rate instead of each handle guessing from its own.
Cross-process increments are not atomic (a racing pair can lose a count);
the shared block is observability, not accounting the correctness of
anything rests on.

The seqlock alone cannot order two *processes* writing the same slot (the
cursor bump and version arithmetic are not cross-process atomic, and two
racing writers can publish the same version value around interleaved byte
copies), so correctness does not rest on it: every slot also stores the
CRC-32 of its document, and a reader only serves bytes whose checksum
matches.  Writer races therefore cost a lost ``put`` or a spurious miss —
never served torn data.  Documents larger than ``slot_bytes`` are simply
not cached.

The *creator* of the segment owns its name and unlinks it on ``close()``;
attaching processes (same ``name=``) only borrow it, via the
tracker-suppressing attach shared with the parallel-encode pipeline
(:mod:`repro.core.shm`).
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from typing import Dict, Optional, Protocol, runtime_checkable

import numpy as np

from ..core.shm import attach_segment, release_segment
from ..errors import StorageError

__all__ = [
    "CacheTier",
    "NullCache",
    "LruCache",
    "SharedMemoryCache",
]


@runtime_checkable
class CacheTier(Protocol):
    """Protocol every decode-cache tier implements.

    ``get`` is the *counted* lookup (it moves hit/miss statistics and any
    recency state); ``peek`` answers "would ``get`` hit right now?" without
    side effects, which batch planning (``RlzStore.get_many``) needs to
    stage decodes without disturbing the accounting of the replay pass.
    """

    def get(self, doc_id: int) -> Optional[bytes]:
        """Counted lookup: the cached document, or ``None`` on a miss."""
        ...

    def peek(self, doc_id: int) -> bool:
        """Uncounted presence check (no counter or recency side effects)."""
        ...

    def put(self, doc_id: int, document: bytes) -> None:
        """Offer a decoded document to the tier (may be declined)."""
        ...

    def cache_info(self) -> Dict[str, int]:
        """Counters; always includes ``hits``/``misses``/``size``/``capacity``."""
        ...

    def clear(self) -> None:
        """Drop all cached documents (counters keep accumulating)."""
        ...

    def close(self) -> None:
        """Release any resources held by the tier (idempotent)."""
        ...


class NullCache:
    """The no-op tier: never stores, never hits, never counts.

    Matches the pre-facade behaviour of ``decode_cache_size=0``, where the
    store skipped the cache entirely (misses were *not* counted), so the
    paper-faithful benchmark numbers are untouched by the refactor.
    """

    def get(self, doc_id: int) -> Optional[bytes]:
        return None

    def peek(self, doc_id: int) -> bool:
        return False

    def put(self, doc_id: int, document: bytes) -> None:
        pass

    def items(self) -> list:
        """Cached ``(doc_id, document)`` pairs — always empty here."""
        return []

    def cache_info(self) -> Dict[str, int]:
        return {"hits": 0, "misses": 0, "size": 0, "capacity": 0}

    def clear(self) -> None:
        pass

    def close(self) -> None:
        pass


class LruCache:
    """In-process LRU of decoded documents (the PR-1 store cache, extracted).

    Semantics are exactly the old ``RlzStore`` private cache: hits move the
    entry to the most-recent end, stores evict from the least-recent end
    while over capacity, and the counters only move through :meth:`get`.
    A lock makes the tier safe under the async front's thread pool.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise StorageError("LruCache capacity must be positive (use NullCache)")
        self._capacity = capacity
        self._entries: "OrderedDict[int, bytes]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        """Maximum number of cached documents."""
        return self._capacity

    def get(self, doc_id: int) -> Optional[bytes]:
        with self._lock:
            document = self._entries.get(doc_id)
            if document is None:
                self._misses += 1
                return None
            self._entries.move_to_end(doc_id)
            self._hits += 1
            return document

    def peek(self, doc_id: int) -> bool:
        with self._lock:
            return doc_id in self._entries

    def put(self, doc_id: int, document: bytes) -> None:
        with self._lock:
            self._entries[doc_id] = document
            self._entries.move_to_end(doc_id)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def items(self) -> list:
        """Cached ``(doc_id, document)`` pairs, least-recent first."""
        with self._lock:
            return list(self._entries.items())

    def cache_info(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._entries),
                "capacity": self._capacity,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def close(self) -> None:
        # Nothing to release in-process; contents stay inspectable through
        # cache_info() after the owning store closes (matching the PR-1
        # store cache, whose counters survived close()).
        pass


class SharedMemoryCache:
    """Cross-process decode cache: a fixed-slot ring in shared memory.

    Parameters
    ----------
    slots:
        Number of document slots in the ring (the tier's capacity).
    slot_bytes:
        Bytes reserved per slot.  Documents larger than this are served but
        not cached (counted under ``rejected``).
    name:
        Segment name.  ``None`` creates an anonymous segment this process
        owns.  With a name, the first process to arrive *creates* (and owns)
        the segment; later processes with the same name *attach* to it and
        share its contents — that is how several reader processes share one
        cache over one archive.  ``slots``/``slot_bytes`` of an attacher are
        ignored in favour of the creator's geometry.

    The creator unlinks the segment on :meth:`close`; attachers only close
    their mapping.  See the module docstring for the seqlock memory model.
    """

    _MAGIC = 0x524C5A43_41434832  # "RLZCACH2": v2 layout (slot index + stats)
    #: magic, slots, slot_bytes, ring cursor, table_size, then the shared
    #: stats block: hits, misses, stores, rejected, evictions.
    _HEADER_WORDS = 10
    _H_CURSOR = 3
    _H_TABLE = 4
    _H_HITS = 5
    _H_MISSES = 6
    _H_STORES = 7
    _H_REJECTED = 8
    _H_EVICTIONS = 9
    #: Fibonacci-hashing multiplier (odd, ~2**64 / golden ratio), the same
    #: spreading trick as :class:`repro.suffix.CompactJumpIndex`.
    _FIB_MULTIPLIER = 0x9E3779B97F4A7C15
    _MASK_64 = (1 << 64) - 1

    def __init__(
        self,
        slots: int = 256,
        slot_bytes: int = 64 * 1024,
        name: Optional[str] = None,
    ) -> None:
        from multiprocessing import shared_memory

        if slots <= 0:
            raise StorageError("SharedMemoryCache slots must be positive")
        if slot_bytes <= 0:
            raise StorageError("SharedMemoryCache slot_bytes must be positive")
        self._closed = False
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._rejected = 0
        self._lock = threading.Lock()
        size = self._segment_size(slots, slot_bytes)
        if name is None:
            self._segment = shared_memory.SharedMemory(create=True, size=size)
            self._owner = True
        else:
            try:
                self._segment = shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
                self._owner = True
            except FileExistsError:
                self._segment = attach_segment(name)
                self._owner = False
        try:
            self._map_views(initialize=self._owner, slots=slots, slot_bytes=slot_bytes)
        except Exception:
            self._release_views()
            release_segment(self._segment, unlink=self._owner)
            raise

    @classmethod
    def _table_size(cls, slots: int) -> int:
        """Open-addressing table entries: a power of two >= 2 x slots."""
        size = 8
        while size < 2 * slots:
            size *= 2
        return size

    @classmethod
    def _segment_size(cls, slots: int, slot_bytes: int) -> int:
        return (
            8 * (cls._HEADER_WORDS + 4 * slots + 2 * cls._table_size(slots))
            + slots * slot_bytes
        )

    def _map_views(self, initialize: bool, slots: int, slot_bytes: int) -> None:
        buf = self._segment.buf
        header = np.frombuffer(buf, dtype=np.int64, count=self._HEADER_WORDS)
        if initialize:
            header[0] = self._MAGIC
            header[1] = slots
            header[2] = slot_bytes
            header[3:] = 0
            header[self._H_TABLE] = self._table_size(slots)
        elif int(header[0]) != self._MAGIC:
            raise StorageError(
                f"segment {self._segment.name!r} is not a SharedMemoryCache"
            )
        else:
            slots = int(header[1])
            slot_bytes = int(header[2])
            if (
                int(header[self._H_TABLE]) != self._table_size(slots)
                or len(buf) < self._segment_size(slots, slot_bytes)
            ):
                raise StorageError(
                    f"segment {self._segment.name!r} is truncated for its geometry"
                )
        self._slots = slots
        self._slot_bytes = slot_bytes
        table_size = self._table_size(slots)
        offset = 8 * self._HEADER_WORDS
        self._header = header
        self._doc_ids = np.frombuffer(buf, dtype=np.int64, count=slots, offset=offset)
        offset += 8 * slots
        self._versions = np.frombuffer(buf, dtype=np.int64, count=slots, offset=offset)
        offset += 8 * slots
        self._lengths = np.frombuffer(buf, dtype=np.int64, count=slots, offset=offset)
        offset += 8 * slots
        self._checksums = np.frombuffer(buf, dtype=np.int64, count=slots, offset=offset)
        offset += 8 * slots
        self._index_ids = np.frombuffer(
            buf, dtype=np.int64, count=table_size, offset=offset
        )
        offset += 8 * table_size
        self._index_slots = np.frombuffer(
            buf, dtype=np.int64, count=table_size, offset=offset
        )
        offset += 8 * table_size
        self._data_offset = offset
        if initialize:
            self._doc_ids[:] = -1
            self._versions[:] = 0
            self._lengths[:] = 0
            self._checksums[:] = 0
            self._index_ids[:] = -1
            self._index_slots[:] = 0

    def _release_views(self) -> None:
        self._header = None
        self._doc_ids = None
        self._versions = None
        self._lengths = None
        self._checksums = None
        self._index_ids = None
        self._index_slots = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Name of the shared-memory segment (pass to other processes)."""
        return self._segment.name

    @property
    def owner(self) -> bool:
        """Whether this handle created the segment (and will unlink it)."""
        return self._owner

    @property
    def slots(self) -> int:
        """Number of document slots in the ring."""
        return self._slots

    @property
    def slot_bytes(self) -> int:
        """Bytes reserved per slot."""
        return self._slot_bytes

    # ------------------------------------------------------------------
    # CacheTier
    # ------------------------------------------------------------------
    def _probe_slots(self, doc_id: int):
        """Yield ring slots the index claims hold ``doc_id`` (may be stale).

        Linear probing from the Fibonacci hash of the doc id; stops at the
        first empty index entry (entries are overwritten, never emptied, so
        an empty entry proves the id was never inserted past it).  O(1)
        expected — the table has at least twice as many entries as the ring
        has slots.
        """
        index_ids = self._index_ids
        index_slots = self._index_slots
        mask = len(index_ids) - 1
        entry = ((doc_id * self._FIB_MULTIPLIER) & self._MASK_64) >> 32 & mask
        for _ in range(mask + 1):
            entry_id = int(index_ids[entry])
            if entry_id == -1:
                return
            if entry_id == doc_id:
                slot = int(index_slots[entry])
                if 0 <= slot < self._slots:
                    yield slot
            entry = (entry + 1) & mask

    def _slot_read(self, slot: int, doc_id: int) -> Optional[bytes]:
        """Seqlock read of one slot: copy out and verify it did not move.

        The version re-check catches in-flight single-writer updates; the
        CRC-32 comparison is what makes the read safe against two *writer
        processes* racing the same slot (they can publish identical version
        values around interleaved byte copies, which no version check can
        see).  Any mismatch — including a stale index entry whose slot has
        been recycled for another document — is just a miss.
        """
        if int(self._doc_ids[slot]) != doc_id:
            return None
        version = int(self._versions[slot])
        if version & 1:
            return None  # write in progress
        length = int(self._lengths[slot])
        if not 0 <= length <= self._slot_bytes:
            return None
        checksum = int(self._checksums[slot])
        start = self._data_offset + slot * self._slot_bytes
        document = bytes(self._segment.buf[start : start + length])
        if (
            int(self._versions[slot]) == version
            and int(self._doc_ids[slot]) == doc_id
            and zlib.crc32(document) == checksum
        ):
            return document
        return None

    def _find(self, doc_id: int) -> Optional[bytes]:
        for slot in self._probe_slots(doc_id):
            document = self._slot_read(slot, doc_id)
            if document is not None:
                return document
        return None

    def _index_insert(self, doc_id: int, slot: int) -> None:
        """Point an index entry at ``slot``; claims the first reusable entry.

        Reusable means empty, already this doc id, or *stale* — pointing at
        a slot whose current occupant is a different document (its entry
        owner was evicted by the ring).  Reclaiming stale entries in place
        keeps the table from silting up without a sweep pass.
        """
        index_ids = self._index_ids
        index_slots = self._index_slots
        mask = len(index_ids) - 1
        entry = ((doc_id * self._FIB_MULTIPLIER) & self._MASK_64) >> 32 & mask
        for _ in range(mask + 1):
            entry_id = int(index_ids[entry])
            if entry_id == -1 or entry_id == doc_id:
                break
            entry_slot = int(index_slots[entry])
            if not 0 <= entry_slot < self._slots:
                break  # torn cross-process write: reclaim
            if int(self._doc_ids[entry_slot]) != entry_id:
                break  # stale: its document was evicted from the ring
            entry = (entry + 1) & mask
        else:  # pragma: no cover - table is 2x slots, a claimable entry exists
            return
        index_slots[entry] = slot
        self._index_ids[entry] = doc_id

    def _bump(self, header_word: int, amount: int = 1) -> None:
        """Increment a shared stats counter (caller holds the lock)."""
        self._header[header_word] += amount

    def get(self, doc_id: int) -> Optional[bytes]:
        if self._closed:
            return None
        document = self._find(doc_id)
        with self._lock:
            if document is None:
                self._misses += 1
                self._bump(self._H_MISSES)
            else:
                self._hits += 1
                self._bump(self._H_HITS)
        return document

    def peek(self, doc_id: int) -> bool:
        if self._closed:
            return False
        for slot in self._probe_slots(doc_id):
            if (
                int(self._doc_ids[slot]) == doc_id
                and not int(self._versions[slot]) & 1
            ):
                return True
        return False

    def put(self, doc_id: int, document: bytes) -> None:
        if self._closed or doc_id < 0:
            return
        if len(document) > self._slot_bytes:
            with self._lock:
                self._rejected += 1
                self._bump(self._H_REJECTED)
            return
        if self.peek(doc_id):
            return  # already cached (possibly by another process)
        with self._lock:
            cursor = int(self._header[self._H_CURSOR])
            self._header[self._H_CURSOR] = cursor + 1
            slot = cursor % self._slots
            evicted = int(self._doc_ids[slot])
            if evicted >= 0 and evicted != doc_id:
                self._bump(self._H_EVICTIONS)
            # Force parity rather than trusting the snapshot: a racing
            # writer process may leave the version odd, and in-progress must
            # stay odd / published even regardless of what was read.
            version = int(self._versions[slot]) | 1
            self._versions[slot] = version  # odd: write in progress
            self._doc_ids[slot] = -1
            start = self._data_offset + slot * self._slot_bytes
            self._segment.buf[start : start + len(document)] = document
            self._lengths[slot] = len(document)
            self._checksums[slot] = zlib.crc32(document)
            self._doc_ids[slot] = doc_id
            self._versions[slot] = version + 1  # even: published
            self._index_insert(doc_id, slot)
            self._stores += 1
            self._bump(self._H_STORES)

    def cache_info(self) -> Dict[str, int]:
        if self._closed:
            size = 0
            shared = dict.fromkeys(
                ("shared_hits", "shared_misses", "shared_stores",
                 "shared_rejected", "shared_evictions"),
                0,
            )
        else:
            size = int((self._doc_ids >= 0).sum())
            shared = {
                "shared_hits": int(self._header[self._H_HITS]),
                "shared_misses": int(self._header[self._H_MISSES]),
                "shared_stores": int(self._header[self._H_STORES]),
                "shared_rejected": int(self._header[self._H_REJECTED]),
                "shared_evictions": int(self._header[self._H_EVICTIONS]),
            }
        with self._lock:
            info = {
                "hits": self._hits,
                "misses": self._misses,
                "size": size,
                "capacity": self._slots,
                "slot_bytes": self._slot_bytes,
                "stores": self._stores,
                "rejected": self._rejected,
                "owner": int(self._owner),
            }
        info.update(shared)
        return info

    def clear(self) -> None:
        if self._closed:
            return
        with self._lock:
            for slot in range(self._slots):
                version = int(self._versions[slot]) | 1
                self._versions[slot] = version
                self._doc_ids[slot] = -1
                self._lengths[slot] = 0
                self._checksums[slot] = 0
                self._versions[slot] = version + 1
            self._index_ids[:] = -1
            self._index_slots[:] = 0

    def close(self) -> None:
        """Release the mapping; the creator also unlinks the segment."""
        # The view arrays are mutated under self._lock by put()/clear();
        # dropping them must hold the same lock or a concurrent writer can
        # observe a half-released handle.
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._release_views()
        release_segment(self._segment, unlink=self._owner)

    def __enter__(self) -> "SharedMemoryCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
