"""Pluggable decode-cache tiers for the serving path.

The paper's serving story is CPU-cheap random access; a decode cache on top
of it turns repeated-access query logs (the dominant web-archive workload)
into memory reads.  PR 1 hardcoded that cache into :class:`RlzStore` as a
private ``OrderedDict``; this module extracts it behind a small protocol so
the facade (:mod:`repro.api`) can plug in different tiers per deployment:

* :class:`NullCache` — no caching; every request decodes.  This is the
  paper-faithful default: the benchmark tables keep measuring cold decodes.
* :class:`LruCache` — the in-process LRU of decoded documents, semantics
  identical to the PR-1 store cache (move-to-end on hit, evict-oldest on
  overflow, hit/miss counters).
* :class:`SharedMemoryCache` — a cross-process tier: a fixed-slot ring of
  decoded documents in one ``multiprocessing.shared_memory`` segment, so
  every reader process serving the same archive shares one decode cache
  instead of each warming its own.

Every tier implements :class:`CacheTier`: ``get`` (counted lookup),
``peek`` (uncounted presence check, used by ``get_many``'s planning pass),
``put``, ``cache_info``, ``clear`` and ``close``.

Cross-process memory model
--------------------------

:class:`SharedMemoryCache` is deliberately lock-free across processes.  The
segment holds a header (magic, slot count, slot size, ring cursor), four
``int64`` metadata arrays (``doc_id``, version, length, checksum per slot)
and the slot data.  Writers claim the next ring slot, force the slot's
version to an *odd* value, invalidate the doc id, copy the bytes, then
publish length, checksum, doc id and the next *even* version — a seqlock.
Readers locate a slot by doc id, snapshot the version (odd means "write in
progress": skip), copy the bytes out, and re-check version and doc id; any
change discards the copy and the lookup falls through to a miss.

The seqlock alone cannot order two *processes* writing the same slot (the
cursor bump and version arithmetic are not cross-process atomic, and two
racing writers can publish the same version value around interleaved byte
copies), so correctness does not rest on it: every slot also stores the
CRC-32 of its document, and a reader only serves bytes whose checksum
matches.  Writer races therefore cost a lost ``put`` or a spurious miss —
never served torn data.  Documents larger than ``slot_bytes`` are simply
not cached.

The *creator* of the segment owns its name and unlinks it on ``close()``;
attaching processes (same ``name=``) only borrow it, via the
tracker-suppressing attach shared with the parallel-encode pipeline
(:mod:`repro.core.shm`).
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from typing import Dict, Optional, Protocol, runtime_checkable

import numpy as np

from ..core.shm import attach_segment, release_segment
from ..errors import StorageError

__all__ = [
    "CacheTier",
    "NullCache",
    "LruCache",
    "SharedMemoryCache",
]


@runtime_checkable
class CacheTier(Protocol):
    """Protocol every decode-cache tier implements.

    ``get`` is the *counted* lookup (it moves hit/miss statistics and any
    recency state); ``peek`` answers "would ``get`` hit right now?" without
    side effects, which batch planning (``RlzStore.get_many``) needs to
    stage decodes without disturbing the accounting of the replay pass.
    """

    def get(self, doc_id: int) -> Optional[bytes]:
        """Counted lookup: the cached document, or ``None`` on a miss."""
        ...

    def peek(self, doc_id: int) -> bool:
        """Uncounted presence check (no counter or recency side effects)."""
        ...

    def put(self, doc_id: int, document: bytes) -> None:
        """Offer a decoded document to the tier (may be declined)."""
        ...

    def cache_info(self) -> Dict[str, int]:
        """Counters; always includes ``hits``/``misses``/``size``/``capacity``."""
        ...

    def clear(self) -> None:
        """Drop all cached documents (counters keep accumulating)."""
        ...

    def close(self) -> None:
        """Release any resources held by the tier (idempotent)."""
        ...


class NullCache:
    """The no-op tier: never stores, never hits, never counts.

    Matches the pre-facade behaviour of ``decode_cache_size=0``, where the
    store skipped the cache entirely (misses were *not* counted), so the
    paper-faithful benchmark numbers are untouched by the refactor.
    """

    def get(self, doc_id: int) -> Optional[bytes]:
        return None

    def peek(self, doc_id: int) -> bool:
        return False

    def put(self, doc_id: int, document: bytes) -> None:
        pass

    def items(self) -> list:
        """Cached ``(doc_id, document)`` pairs — always empty here."""
        return []

    def cache_info(self) -> Dict[str, int]:
        return {"hits": 0, "misses": 0, "size": 0, "capacity": 0}

    def clear(self) -> None:
        pass

    def close(self) -> None:
        pass


class LruCache:
    """In-process LRU of decoded documents (the PR-1 store cache, extracted).

    Semantics are exactly the old ``RlzStore`` private cache: hits move the
    entry to the most-recent end, stores evict from the least-recent end
    while over capacity, and the counters only move through :meth:`get`.
    A lock makes the tier safe under the async front's thread pool.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise StorageError("LruCache capacity must be positive (use NullCache)")
        self._capacity = capacity
        self._entries: "OrderedDict[int, bytes]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        """Maximum number of cached documents."""
        return self._capacity

    def get(self, doc_id: int) -> Optional[bytes]:
        with self._lock:
            document = self._entries.get(doc_id)
            if document is None:
                self._misses += 1
                return None
            self._entries.move_to_end(doc_id)
            self._hits += 1
            return document

    def peek(self, doc_id: int) -> bool:
        with self._lock:
            return doc_id in self._entries

    def put(self, doc_id: int, document: bytes) -> None:
        with self._lock:
            self._entries[doc_id] = document
            self._entries.move_to_end(doc_id)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def items(self) -> list:
        """Cached ``(doc_id, document)`` pairs, least-recent first."""
        with self._lock:
            return list(self._entries.items())

    def cache_info(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._entries),
                "capacity": self._capacity,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def close(self) -> None:
        # Nothing to release in-process; contents stay inspectable through
        # cache_info() after the owning store closes (matching the PR-1
        # store cache, whose counters survived close()).
        pass


class SharedMemoryCache:
    """Cross-process decode cache: a fixed-slot ring in shared memory.

    Parameters
    ----------
    slots:
        Number of document slots in the ring (the tier's capacity).
    slot_bytes:
        Bytes reserved per slot.  Documents larger than this are served but
        not cached (counted under ``rejected``).
    name:
        Segment name.  ``None`` creates an anonymous segment this process
        owns.  With a name, the first process to arrive *creates* (and owns)
        the segment; later processes with the same name *attach* to it and
        share its contents — that is how several reader processes share one
        cache over one archive.  ``slots``/``slot_bytes`` of an attacher are
        ignored in favour of the creator's geometry.

    The creator unlinks the segment on :meth:`close`; attachers only close
    their mapping.  See the module docstring for the seqlock memory model.
    """

    _MAGIC = 0x524C5A43_41434845  # "RLZCACHE"
    _HEADER_WORDS = 4  # magic, slots, slot_bytes, ring cursor

    def __init__(
        self,
        slots: int = 256,
        slot_bytes: int = 64 * 1024,
        name: Optional[str] = None,
    ) -> None:
        from multiprocessing import shared_memory

        if slots <= 0:
            raise StorageError("SharedMemoryCache slots must be positive")
        if slot_bytes <= 0:
            raise StorageError("SharedMemoryCache slot_bytes must be positive")
        self._closed = False
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._rejected = 0
        self._lock = threading.Lock()
        size = self._segment_size(slots, slot_bytes)
        if name is None:
            self._segment = shared_memory.SharedMemory(create=True, size=size)
            self._owner = True
        else:
            try:
                self._segment = shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
                self._owner = True
            except FileExistsError:
                self._segment = attach_segment(name)
                self._owner = False
        try:
            self._map_views(initialize=self._owner, slots=slots, slot_bytes=slot_bytes)
        except Exception:
            self._release_views()
            release_segment(self._segment, unlink=self._owner)
            raise

    @classmethod
    def _segment_size(cls, slots: int, slot_bytes: int) -> int:
        return 8 * (cls._HEADER_WORDS + 4 * slots) + slots * slot_bytes

    def _map_views(self, initialize: bool, slots: int, slot_bytes: int) -> None:
        buf = self._segment.buf
        header = np.frombuffer(buf, dtype=np.int64, count=self._HEADER_WORDS)
        if initialize:
            header[0] = self._MAGIC
            header[1] = slots
            header[2] = slot_bytes
            header[3] = 0
        elif int(header[0]) != self._MAGIC:
            raise StorageError(
                f"segment {self._segment.name!r} is not a SharedMemoryCache"
            )
        else:
            slots = int(header[1])
            slot_bytes = int(header[2])
            if len(buf) < self._segment_size(slots, slot_bytes):
                raise StorageError(
                    f"segment {self._segment.name!r} is truncated for its geometry"
                )
        self._slots = slots
        self._slot_bytes = slot_bytes
        offset = 8 * self._HEADER_WORDS
        self._header = header
        self._doc_ids = np.frombuffer(buf, dtype=np.int64, count=slots, offset=offset)
        offset += 8 * slots
        self._versions = np.frombuffer(buf, dtype=np.int64, count=slots, offset=offset)
        offset += 8 * slots
        self._lengths = np.frombuffer(buf, dtype=np.int64, count=slots, offset=offset)
        offset += 8 * slots
        self._checksums = np.frombuffer(buf, dtype=np.int64, count=slots, offset=offset)
        offset += 8 * slots
        self._data_offset = offset
        if initialize:
            self._doc_ids[:] = -1
            self._versions[:] = 0
            self._lengths[:] = 0
            self._checksums[:] = 0

    def _release_views(self) -> None:
        self._header = None
        self._doc_ids = None
        self._versions = None
        self._lengths = None
        self._checksums = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Name of the shared-memory segment (pass to other processes)."""
        return self._segment.name

    @property
    def owner(self) -> bool:
        """Whether this handle created the segment (and will unlink it)."""
        return self._owner

    @property
    def slots(self) -> int:
        """Number of document slots in the ring."""
        return self._slots

    @property
    def slot_bytes(self) -> int:
        """Bytes reserved per slot."""
        return self._slot_bytes

    # ------------------------------------------------------------------
    # CacheTier
    # ------------------------------------------------------------------
    def _find(self, doc_id: int) -> Optional[bytes]:
        """Seqlock read: copy a slot out and verify it did not move.

        The version re-check catches in-flight single-writer updates; the
        CRC-32 comparison is what makes the read safe against two *writer
        processes* racing the same slot (they can publish identical version
        values around interleaved byte copies, which no version check can
        see).  A checksum mismatch is just a miss.
        """
        for slot in np.flatnonzero(self._doc_ids == doc_id):
            slot = int(slot)
            version = int(self._versions[slot])
            if version & 1:
                continue  # write in progress
            length = int(self._lengths[slot])
            if not 0 <= length <= self._slot_bytes:
                continue
            checksum = int(self._checksums[slot])
            start = self._data_offset + slot * self._slot_bytes
            document = bytes(self._segment.buf[start : start + length])
            if (
                int(self._versions[slot]) == version
                and int(self._doc_ids[slot]) == doc_id
                and zlib.crc32(document) == checksum
            ):
                return document
        return None

    def get(self, doc_id: int) -> Optional[bytes]:
        if self._closed:
            return None
        document = self._find(doc_id)
        with self._lock:
            if document is None:
                self._misses += 1
            else:
                self._hits += 1
        return document

    def peek(self, doc_id: int) -> bool:
        if self._closed:
            return False
        return bool((self._doc_ids == doc_id).any())

    def put(self, doc_id: int, document: bytes) -> None:
        if self._closed or doc_id < 0:
            return
        if len(document) > self._slot_bytes:
            with self._lock:
                self._rejected += 1
            return
        if self.peek(doc_id):
            return  # already cached (possibly by another process)
        with self._lock:
            cursor = int(self._header[3])
            self._header[3] = cursor + 1
            slot = cursor % self._slots
            # Force parity rather than trusting the snapshot: a racing
            # writer process may leave the version odd, and in-progress must
            # stay odd / published even regardless of what was read.
            version = int(self._versions[slot]) | 1
            self._versions[slot] = version  # odd: write in progress
            self._doc_ids[slot] = -1
            start = self._data_offset + slot * self._slot_bytes
            self._segment.buf[start : start + len(document)] = document
            self._lengths[slot] = len(document)
            self._checksums[slot] = zlib.crc32(document)
            self._doc_ids[slot] = doc_id
            self._versions[slot] = version + 1  # even: published
            self._stores += 1

    def cache_info(self) -> Dict[str, int]:
        if self._closed:
            size = 0
        else:
            size = int((self._doc_ids >= 0).sum())
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": size,
                "capacity": self._slots,
                "slot_bytes": self._slot_bytes,
                "stores": self._stores,
                "rejected": self._rejected,
                "owner": int(self._owner),
            }

    def clear(self) -> None:
        if self._closed:
            return
        with self._lock:
            for slot in range(self._slots):
                version = int(self._versions[slot]) | 1
                self._versions[slot] = version
                self._doc_ids[slot] = -1
                self._lengths[slot] = 0
                self._checksums[slot] = 0
                self._versions[slot] = version + 1

    def close(self) -> None:
        """Release the mapping; the creator also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        self._release_views()
        release_segment(self._segment, unlink=self._owner)

    def __enter__(self) -> "SharedMemoryCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
