"""Blocked document store: the paper's zlib/lzma baselines.

"Collections are split into fixed size blocks and compressed with an
adaptive algorithm" (Section 2.2).  Documents are appended to a block until
the block's *uncompressed* size reaches the configured threshold; each block
is then compressed independently with zlib or lzma.  Retrieving one document
requires reading and decompressing the whole block that contains it, which
is the block-size/retrieval-speed trade-off the paper's Tables 6, 7 and 9
quantify.  A block size of 0 means one document per block.

The same class with ``compressor="none"`` implements the uncompressed ASCII
baseline (one document per block, no compression), so all baselines share
one retrieval path.
"""

from __future__ import annotations

import lzma
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Tuple

from ..corpus.document import DocumentCollection
from ..errors import StorageError
from .container import ContainerHeader, read_container_header, write_container
from .disk_model import DiskModel
from .document_map import DocumentEntry, DocumentMap

__all__ = ["BlockedStore", "BlockedStoreConfig"]


@dataclass(frozen=True)
class BlockedStoreConfig:
    """Build parameters for a blocked store.

    Attributes
    ----------
    compressor:
        ``"zlib"``, ``"lzma"`` or ``"none"``.
    block_size:
        Target uncompressed block size in bytes.  0 stores one document per
        block (the paper's "0.0MB" rows).
    level:
        Compression level passed to zlib (0-9) or lzma preset (0-9).
    """

    compressor: str = "zlib"
    block_size: int = 0
    level: int = 6

    def __post_init__(self) -> None:
        if self.compressor not in ("zlib", "lzma", "none"):
            raise StorageError(f"unknown block compressor {self.compressor!r}")
        if self.block_size < 0:
            raise StorageError("block_size must be >= 0")


def _compress_fn(config: BlockedStoreConfig) -> Callable[[bytes], bytes]:
    if config.compressor == "zlib":
        level = config.level
        return lambda data: zlib.compress(data, level)
    if config.compressor == "lzma":
        preset = config.level
        return lambda data: lzma.compress(data, preset=preset)
    return lambda data: data


def _decompress_fn(compressor: str) -> Callable[[bytes], bytes]:
    if compressor == "zlib":
        return zlib.decompress
    if compressor == "lzma":
        return lzma.decompress
    return lambda data: data


class BlockedStore:
    """Fixed-size-block store compressed with an adaptive algorithm."""

    store_type = "blocked"

    def __init__(self, header: ContainerHeader, disk: Optional[DiskModel] = None) -> None:
        if header.store_type != self.store_type:
            raise StorageError(
                f"container holds a {header.store_type!r} store, expected 'blocked'"
            )
        self._header = header
        self._compressor = header.metadata["compressor"]
        self._decompress = _decompress_fn(self._compressor)
        self._block_offsets: List[Tuple[int, int]] = [
            (int(offset), int(length)) for offset, length in header.metadata["blocks"]
        ]
        self._disk = disk if disk is not None else DiskModel()
        self._handle = header.path.open("rb")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        collection: DocumentCollection,
        path: str | Path,
        config: BlockedStoreConfig,
    ) -> Path:
        """Compress ``collection`` into a blocked container at ``path``."""
        path = Path(path)
        compress = _compress_fn(config)
        document_map = DocumentMap()
        payload = bytearray()
        blocks: List[Tuple[int, int]] = []

        pending_docs: List = []
        pending_size = 0

        def flush() -> None:
            nonlocal pending_size
            if not pending_docs:
                return
            block_index = len(blocks)
            raw = b"".join(document.content for document in pending_docs)
            compressed = compress(raw)
            offset = len(payload)
            payload.extend(compressed)
            blocks.append((offset, len(compressed)))
            # Each document's map entry points at its containing block; the
            # in-block position is recovered from the sizes stored below.
            position = 0
            for index, document in enumerate(pending_docs):
                document_map.add(
                    DocumentEntry(
                        doc_id=document.doc_id,
                        offset=position,
                        length=document.size,
                        block_index=block_index,
                        index_in_block=index,
                    )
                )
                position += document.size
            pending_docs.clear()
            pending_size = 0

        for document in collection:
            pending_docs.append(document)
            pending_size += document.size
            if config.block_size == 0 or pending_size >= config.block_size:
                flush()
        flush()

        metadata = {
            "compressor": config.compressor,
            "block_size": config.block_size,
            "level": config.level,
            "collection": collection.name,
            "original_size": collection.total_size,
            "blocks": blocks,
        }
        write_container(
            path,
            cls.store_type,
            metadata,
            document_map,
            b"",
            bytes(payload),
            checksum_extents=blocks,
        )
        return path

    @classmethod
    def open(cls, path: str | Path, disk: Optional[DiskModel] = None) -> "BlockedStore":
        """Open an existing blocked container for reading."""
        return cls(read_container_header(Path(path)), disk=disk)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def compressor(self) -> str:
        """Name of the block compressor ("zlib", "lzma" or "none")."""
        return self._compressor

    @property
    def block_size(self) -> int:
        """Configured uncompressed block size in bytes (0 = one doc/block)."""
        return int(self._header.metadata["block_size"])

    @property
    def disk(self) -> DiskModel:
        """The disk model charged for block reads."""
        return self._disk

    @property
    def num_blocks(self) -> int:
        """Number of compressed blocks in the store."""
        return len(self._block_offsets)

    @property
    def original_size(self) -> int:
        """Total uncompressed collection size."""
        return int(self._header.metadata["original_size"])

    def compression_percent(self) -> float:
        """Compressed payload as a percentage of the original size."""
        payload = sum(length for _, length in self._block_offsets)
        if self.original_size == 0:
            return 0.0
        return 100.0 * payload / self.original_size

    def doc_ids(self) -> List[int]:
        """All stored document IDs in store order."""
        return self._header.document_map.doc_ids()

    def __len__(self) -> int:
        return len(self._header.document_map)

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def _read_block(self, block_index: int) -> bytes:
        offset, length = self._block_offsets[block_index]
        self._disk.charge_read(self._header.payload_offset + offset, length)
        self._handle.seek(self._header.payload_offset + offset)
        data = self._handle.read(length)
        if len(data) != length:
            raise StorageError("payload truncated while reading block")
        self._header.check_extent(offset, length, data)
        return self._decompress(data)

    def get(self, doc_id: int) -> bytes:
        """Random access: read + decompress the containing block, slice out the doc."""
        entry = self._header.document_map.lookup(doc_id)
        block = self._read_block(entry.block_index)
        return block[entry.offset : entry.offset + entry.length]

    def iter_documents(self) -> Iterator[Tuple[int, bytes]]:
        """Sequential access: decompress each block once, in order."""
        current_block_index = -1
        current_block = b""
        for entry in self._header.document_map:
            if entry.block_index != current_block_index:
                current_block = self._read_block(entry.block_index)
                current_block_index = entry.block_index
            yield entry.doc_id, current_block[entry.offset : entry.offset + entry.length]

    def close(self) -> None:
        """Close the underlying file handle."""
        self._handle.close()

    def __enter__(self) -> "BlockedStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
