"""Baseline compressors the paper compares against or discusses.

* blocked zlib / lzma stores and the raw ASCII store (Section 4's baselines)
  — thin builders over :mod:`repro.storage`;
* word-based semi-static Huffman coding (Section 2.1's semi-static family);
* Bentley–McIlroy long-repeat preprocessing (the Bigtable two-pass scheme
  mentioned in Section 2.2).
"""

from .bentley_mcilroy import BentleyMcIlroy
from .blocked_builders import (
    PAPER_BLOCK_SIZES_MB,
    build_ascii_baseline,
    build_blocked_baseline,
    build_paper_baselines,
)
from .huffman import WordHuffmanCoder, WordHuffmanModel, tokenize

__all__ = [
    "BentleyMcIlroy",
    "PAPER_BLOCK_SIZES_MB",
    "WordHuffmanCoder",
    "WordHuffmanModel",
    "build_ascii_baseline",
    "build_blocked_baseline",
    "build_paper_baselines",
    "tokenize",
]
