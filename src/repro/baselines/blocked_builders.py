"""Convenience builders for the paper's baseline stores.

The evaluation compares rlz against three baselines: an uncompressed ASCII
store and blocked zlib / lzma stores at block sizes 0.0 (one document per
block), 0.1, 0.2, 0.5 and 1.0 MB.  These helpers build those exact
configurations so the benchmark scripts and examples stay short.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Sequence

from ..corpus.document import DocumentCollection
from ..storage import BlockedStore, BlockedStoreConfig, RawStore

__all__ = [
    "PAPER_BLOCK_SIZES_MB",
    "build_ascii_baseline",
    "build_blocked_baseline",
    "build_paper_baselines",
]

#: Block sizes used throughout the paper's baseline tables, in megabytes.
#: 0.0 means one document per block.
PAPER_BLOCK_SIZES_MB: Sequence[float] = (0.0, 0.1, 0.2, 0.5, 1.0)


def build_ascii_baseline(collection: DocumentCollection, path: str | Path) -> Path:
    """Build the uncompressed "ascii" baseline store."""
    return RawStore.build(collection, path)


def build_blocked_baseline(
    collection: DocumentCollection,
    path: str | Path,
    compressor: str,
    block_size_mb: float,
    level: int = 6,
) -> Path:
    """Build one blocked zlib/lzma baseline at the given block size (MB)."""
    config = BlockedStoreConfig(
        compressor=compressor,
        block_size=int(block_size_mb * 1024 * 1024),
        level=level,
    )
    return BlockedStore.build(collection, path, config)


def build_paper_baselines(
    collection: DocumentCollection,
    directory: str | Path,
    compressors: Sequence[str] = ("zlib", "lzma"),
    block_sizes_mb: Sequence[float] = PAPER_BLOCK_SIZES_MB,
) -> Dict[str, Path]:
    """Build the full baseline grid used by Tables 6, 7 and 9.

    Returns a mapping from a short run label (e.g. ``"zlib-0.2MB"`` or
    ``"ascii"``) to the container path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stores: Dict[str, Path] = {}
    stores["ascii"] = build_ascii_baseline(collection, directory / "ascii.repro")
    for compressor in compressors:
        for block_size in block_sizes_mb:
            label = f"{compressor}-{block_size:.1f}MB"
            path = directory / f"{compressor}-{str(block_size).replace('.', '_')}.repro"
            stores[label] = build_blocked_baseline(collection, path, compressor, block_size)
    return stores
