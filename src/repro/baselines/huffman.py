"""Semi-static word-based Huffman compression (Section 2.1 context).

The paper's background section reviews semi-static, word-based compressors
(Plain/Tagged Huffman, dense codes) and argues they scale poorly to web-size
collections because the vocabulary (especially "non-word" tokens) outgrows
memory, and because a zero-order word model cannot exploit global repetition.
This module implements a canonical word-based Huffman coder so the claim can
be measured on the synthetic collections: the benchmark tables show its
compression plateauing around the paper's quoted ~20-25 % for clean text and
far worse on markup-heavy pages, well behind RLZ.

The implementation is the standard two-pass scheme:

1. first pass tokenises the collection into an alternating sequence of words
   and non-words (spaceless model) and counts frequencies;
2. codewords are assigned with a canonical Huffman code;
3. the second pass replaces each token with its codeword.

Decoding walks the canonical code table bit by bit.  The model (vocabulary +
code lengths) must be stored with the collection and is counted in the
compression figures, mirroring the paper's discussion of vocabulary cost.
"""

from __future__ import annotations

import heapq
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..coding import BitReader, BitWriter
from ..errors import DecodingError, EncodingError

__all__ = ["WordHuffmanModel", "WordHuffmanCoder", "tokenize"]

_TOKEN_PATTERN = re.compile(rb"[A-Za-z0-9]+|[^A-Za-z0-9]+")


def tokenize(text: bytes) -> List[bytes]:
    """Split ``text`` into alternating word / non-word tokens (lossless)."""
    return _TOKEN_PATTERN.findall(text)


@dataclass
class WordHuffmanModel:
    """A canonical Huffman code over a token vocabulary."""

    tokens: List[bytes]
    code_lengths: List[int]

    def __post_init__(self) -> None:
        if len(self.tokens) != len(self.code_lengths):
            raise EncodingError("tokens and code_lengths must have equal length")
        self._codes = _canonical_codes(self.tokens, self.code_lengths)
        self._token_index = {token: i for i, token in enumerate(self.tokens)}
        # Decoding table: (length, code) -> token
        self._decode_table = {
            (length, code): token
            for token, (code, length) in zip(self.tokens, self._codes)
        }
        self._max_length = max(self.code_lengths, default=0)

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct tokens in the model."""
        return len(self.tokens)

    def model_size_bytes(self) -> int:
        """Approximate serialised size of the model (vocabulary + lengths)."""
        return sum(len(token) + 1 for token in self.tokens) + len(self.tokens)

    def code_for(self, token: bytes) -> Tuple[int, int]:
        """Return ``(code, length)`` for a token."""
        try:
            return self._codes[self._token_index[token]]
        except KeyError as exc:
            raise EncodingError(f"token {token!r} not in Huffman model") from exc

    def decode_bits(self, reader: BitReader, count: int) -> List[bytes]:
        """Decode ``count`` tokens from a bit stream."""
        tokens: List[bytes] = []
        for _ in range(count):
            code = 0
            length = 0
            while True:
                code = (code << 1) | reader.read_bit()
                length += 1
                if length > self._max_length:
                    raise DecodingError("invalid Huffman stream (code too long)")
                token = self._decode_table.get((length, code))
                if token is not None:
                    tokens.append(token)
                    break
        return tokens

    @classmethod
    def from_frequencies(cls, frequencies: Dict[bytes, int]) -> "WordHuffmanModel":
        """Build a model from token frequencies (standard Huffman algorithm)."""
        if not frequencies:
            raise EncodingError("cannot build a Huffman model from an empty vocabulary")
        if len(frequencies) == 1:
            token = next(iter(frequencies))
            return cls(tokens=[token], code_lengths=[1])
        # Heap of (frequency, tie_breaker, set of token indexes).
        tokens = sorted(frequencies)
        depths = [0] * len(tokens)
        heap: List[Tuple[int, int, List[int]]] = [
            (frequencies[token], index, [index]) for index, token in enumerate(tokens)
        ]
        heapq.heapify(heap)
        counter = len(tokens)
        while len(heap) > 1:
            freq_a, _, members_a = heapq.heappop(heap)
            freq_b, _, members_b = heapq.heappop(heap)
            for index in members_a + members_b:
                depths[index] += 1
            counter += 1
            heapq.heappush(heap, (freq_a + freq_b, counter, members_a + members_b))
        return cls(tokens=tokens, code_lengths=depths)


def _canonical_codes(tokens: Sequence[bytes], lengths: Sequence[int]) -> List[Tuple[int, int]]:
    """Assign canonical Huffman codes given code lengths.

    Tokens are ordered by (length, token) and codes assigned in increasing
    numeric order, which lets the decoder reconstruct the table from lengths
    alone.
    """
    order = sorted(range(len(tokens)), key=lambda i: (lengths[i], tokens[i]))
    codes: List[Tuple[int, int]] = [(0, 0)] * len(tokens)
    code = 0
    previous_length = 0
    for index in order:
        length = lengths[index]
        code <<= length - previous_length
        codes[index] = (code, length)
        code += 1
        previous_length = length
    return codes


class WordHuffmanCoder:
    """Two-pass, word-based semi-static Huffman coder for document collections."""

    def __init__(self, model: WordHuffmanModel) -> None:
        self._model = model

    @property
    def model(self) -> WordHuffmanModel:
        """The underlying Huffman model."""
        return self._model

    @classmethod
    def train(cls, documents: Iterable[bytes]) -> "WordHuffmanCoder":
        """First pass: count token frequencies over ``documents``."""
        frequencies: Dict[bytes, int] = {}
        for document in documents:
            for token in tokenize(document):
                frequencies[token] = frequencies.get(token, 0) + 1
        return cls(WordHuffmanModel.from_frequencies(frequencies))

    def encode(self, document: bytes) -> bytes:
        """Encode one document; the token count is prepended as 4 bytes."""
        tokens = tokenize(document)
        writer = BitWriter()
        for token in tokens:
            code, length = self._model.code_for(token)
            writer.write_bits(code, length)
        payload = writer.getvalue()
        return len(tokens).to_bytes(4, "little") + payload

    def decode(self, data: bytes) -> bytes:
        """Decode one document produced by :meth:`encode`."""
        if len(data) < 4:
            raise DecodingError("huffman document truncated")
        count = int.from_bytes(data[:4], "little")
        reader = BitReader(data[4:])
        return b"".join(self._model.decode_bits(reader, count))

    def compression_percent(self, documents: Sequence[bytes], include_model: bool = True) -> float:
        """Compression achieved over ``documents`` (model cost optional)."""
        original = sum(len(document) for document in documents)
        encoded = sum(len(self.encode(document)) for document in documents)
        if include_model:
            encoded += self._model.model_size_bytes()
        if original == 0:
            return 0.0
        return 100.0 * encoded / original
