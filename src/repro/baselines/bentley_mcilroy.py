"""Bentley–McIlroy long-repeat preprocessing (Section 2.2 context).

The paper notes that Google's Bigtable compresses page clusters in two
passes: first Bentley & McIlroy's "data compression with long repeated
strings" scheme over a large window, then a fast small-window compressor.
This module implements the Bentley–McIlroy pass so the two-pass pipeline can
be compared against RLZ in the extended benchmarks.

The algorithm fingerprints every ``block_size``-aligned block of the text
seen so far (a rolling hash keyed on block content) and, while scanning,
replaces any stretch of at least ``block_size`` bytes that matches earlier
text with a compact ``<copy offset,length>`` reference.  Output is a token
stream of literals and copies that is itself byte-oriented, so a second-pass
compressor (zlib) can be applied on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import DecodingError

__all__ = ["BentleyMcIlroy"]

_COPY_MARKER = 0x01
_LITERAL_MARKER = 0x00


@dataclass
class BentleyMcIlroy:
    """Long-range duplicate eliminator with a configurable block size.

    Attributes
    ----------
    block_size:
        Fingerprinting granularity; matches shorter than this are ignored.
        Bentley & McIlroy suggest values between 20 and 1000 depending on the
        corpus; Bigtable reportedly uses large blocks for its first pass.
    """

    block_size: int = 64

    def __post_init__(self) -> None:
        if self.block_size < 4:
            raise ValueError("block_size must be at least 4")

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, data: bytes) -> bytes:
        """Replace long repeats in ``data`` with back-references.

        The output is a sequence of records: ``0x00 + u32 length + bytes``
        for literals, ``0x01 + u32 offset + u32 length`` for copies.
        """
        block = self.block_size
        fingerprints: Dict[bytes, int] = {}
        out = bytearray()
        literal_start = 0
        position = 0
        n = len(data)

        def flush_literal(end: int) -> None:
            nonlocal literal_start
            if end > literal_start:
                chunk = data[literal_start:end]
                out.append(_LITERAL_MARKER)
                out.extend(len(chunk).to_bytes(4, "little"))
                out.extend(chunk)
            literal_start = end

        while position + block <= n:
            key = data[position : position + block]
            match_at = fingerprints.get(key)
            if match_at is not None and match_at + block <= position:
                # Extend the match forward as far as it goes.
                length = block
                while (
                    position + length < n
                    and match_at + length < position
                    and data[match_at + length] == data[position + length]
                ):
                    length += 1
                flush_literal(position)
                out.append(_COPY_MARKER)
                out += match_at.to_bytes(4, "little")
                out += length.to_bytes(4, "little")
                position += length
                literal_start = position
                continue
            if position % block == 0:
                fingerprints.setdefault(key, position)
            position += 1
        flush_literal(n)
        return bytes(out)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, data: bytes) -> bytes:
        """Invert :meth:`encode`."""
        out = bytearray()
        position = 0
        n = len(data)
        while position < n:
            marker = data[position]
            position += 1
            if marker == _LITERAL_MARKER:
                if position + 4 > n:
                    raise DecodingError("truncated literal header")
                length = int.from_bytes(data[position : position + 4], "little")
                position += 4
                if position + length > n:
                    raise DecodingError("truncated literal payload")
                out += data[position : position + length]
                position += length
            elif marker == _COPY_MARKER:
                if position + 8 > n:
                    raise DecodingError("truncated copy record")
                offset = int.from_bytes(data[position : position + 4], "little")
                length = int.from_bytes(data[position + 4 : position + 8], "little")
                position += 8
                if offset + length > len(out):
                    raise DecodingError("copy record references unwritten output")
                out += out[offset : offset + length]
            else:
                raise DecodingError(f"unknown record marker {marker}")
        return bytes(out)

    def compression_percent(self, data: bytes) -> float:
        """Size of the encoded form as a percentage of the input size."""
        if not data:
            return 0.0
        return 100.0 * len(self.encode(data)) / len(data)
