"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DictionaryError(ReproError):
    """Raised when an RLZ dictionary cannot be built or is invalid."""


class FactorizationError(ReproError):
    """Raised when relative LZ factorization fails or produces invalid factors."""


class EncodingError(ReproError):
    """Raised when a factor stream cannot be encoded."""


class DecodingError(ReproError):
    """Raised when an encoded document or factor stream cannot be decoded."""


class StorageError(ReproError):
    """Raised on container/document-map corruption or I/O failures."""


class StoreClosedError(StorageError):
    """Raised when a document is requested from a store after ``close()``.

    Subclasses :class:`StorageError` so existing ``except StorageError``
    handlers keep working; the dedicated type lets serving fronts
    distinguish "store is gone" from data corruption.
    """


class CorruptArchiveError(StorageError):
    """Raised when stored bytes fail their recorded CRC-32 checksum.

    Subclasses :class:`StorageError` (corruption is a storage failure),
    but the dedicated type separates "the disk lied" from "the request
    was wrong": a flipped bit in a container block or dictionary raises
    this instead of silently decoding wrong bytes.  ``repro verify``
    scans a whole archive for it.
    """


class ConfigurationError(ReproError):
    """Raised when an :class:`repro.api.ArchiveConfig` (or one of its spec
    dataclasses) is inconsistent or names an unknown tier/scheme/policy."""


class ProtocolError(ReproError):
    """Raised on a malformed, truncated or incompatible wire exchange.

    Covers the :mod:`repro.serve` framing layer: bad magic, unsupported
    protocol versions, oversized or truncated frames, and responses that
    do not parse.  A connection that raised it cannot be trusted further
    and is closed by whichever side detected the problem.
    """


class DeadlineExceededError(ReproError):
    """Raised when a request's deadline passed before its result arrived.

    Deadlines propagate on the wire (protocol v3 tags every request with
    a millisecond budget), so this is raised on *both* sides: the server
    answers ``R_TIMEOUT`` for work whose deadline expired while queueing
    (instead of decoding a document nobody is waiting for), and clients
    raise it locally once the budget is spent — including time lost to
    dial retries and backoff sleeps.  The connection itself is fine.
    """


class ServerBusyError(ProtocolError):
    """Raised when a server kept answering ``R_BUSY`` past the retry budget.

    The endpoint is alive but its ``max_inflight`` gate stayed saturated
    for every backoff retry.  Unlike its :class:`ProtocolError` parent it
    does *not* mean the connection is untrustworthy — the cluster layer
    treats it as "re-route this work to a replica", not as a dead peer.
    """


class WrongShardError(ReproError):
    """Raised when a request reached a server that does not own the doc id.

    Partitioned servers (protocol v4) answer ``R_WRONG_SHARD`` instead of
    serving bytes for an arc they no longer own, carrying the epoch of
    their current shard map.  Cluster clients treat it as "refresh the
    shard map and retry against the owner", never as a data error: the
    document exists, it just lives elsewhere.  ``epoch`` is the server's
    shard-map epoch at refusal time (0 when unknown).
    """

    def __init__(self, message: str = "", epoch: int = 0):
        super().__init__(message)
        self.epoch = int(epoch)


class CorpusError(ReproError):
    """Raised when a corpus cannot be generated, read, or written."""


class SearchError(ReproError):
    """Raised by the search-engine substrate (indexing and querying)."""


class BenchmarkError(ReproError):
    """Raised by the benchmark harness when an experiment is misconfigured."""
