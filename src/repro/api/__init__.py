"""Service facade: one coherent API for building and serving archives.

This package is the serving-first face of the library (the build pipeline
under :mod:`repro.core` / :mod:`repro.storage` remains fully supported
underneath):

* :class:`ArchiveConfig` (+ :class:`DictionarySpec`, :class:`EncodingSpec`,
  :class:`ParallelSpec`, :class:`CacheSpec`) — declarative configuration,
  replacing per-call knob-threading;
* :class:`RlzArchive` — ``build``/``open`` entry points and
  ``get``/``get_many``/``iter_documents`` serving with per-request stats;
* :class:`AsyncRlzArchive` — the asyncio front: thread-pool decode
  offload, coalesced duplicate requests, ``async get/get_many/gather``.

Cache tiers (:class:`repro.storage.CacheTier` and friends) plug in through
``ArchiveConfig.cache``; see :mod:`repro.storage.cache` for the tier
implementations and the cross-process memory model.
"""

from .archive import ArchiveStats, RequestStats, RlzArchive
from .async_front import AsyncRlzArchive
from .config import (
    ArchiveConfig,
    CacheSpec,
    DeadlineSpec,
    DictionarySpec,
    EncodingSpec,
    ParallelSpec,
    PartitionSpec,
    RetrySpec,
    SearchSpec,
    ServeSpec,
)
from .view import ArchiveView, AsyncArchiveView

__all__ = [
    "ArchiveConfig",
    "ArchiveStats",
    "ArchiveView",
    "AsyncArchiveView",
    "AsyncRlzArchive",
    "CacheSpec",
    "DeadlineSpec",
    "DictionarySpec",
    "EncodingSpec",
    "ParallelSpec",
    "PartitionSpec",
    "RequestStats",
    "RetrySpec",
    "RlzArchive",
    "SearchSpec",
    "ServeSpec",
]
