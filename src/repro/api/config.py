"""Declarative configuration for :class:`repro.api.RlzArchive`.

One :class:`ArchiveConfig` replaces the tuning kwargs that used to be
threaded through four constructors (``RlzCompressor``, ``RlzDictionary``,
``ParallelCompressor``, ``RlzStore``).  It is a small tree of frozen
dataclasses, one per concern:

* :class:`DictionarySpec` — how the dictionary is sampled and indexed;
* :class:`EncodingSpec` — the pair-coding scheme;
* :class:`ParallelSpec` — the encode worker pool;
* :class:`CacheSpec` — the serving-time decode-cache tier;
* :class:`ServeSpec` — the network front (``repro serve`` / RlzServer),
  carrying a :class:`DeadlineSpec` (request deadlines + hedging) and a
  :class:`RetrySpec` (retry counts, backoff, token-bucket retry budget);
* :class:`PartitionSpec` — how a ``repro partition`` build splits the
  collection into per-shard stores (shard count, ring geometry, shared
  vs per-shard dictionary, starting epoch);
* :class:`SearchSpec` — whether builds emit a sidecar
  :class:`repro.search.serving.PostingsStore` next to each container,
  plus the BM25 parameters and snippet window the SEARCH opcode serves
  with.

Everything has a sensible default, so ``ArchiveConfig()`` is a valid
paper-faithful configuration; ``dataclasses.replace`` (or keyword
construction) tweaks one concern without touching the others.  The tree
round-trips through plain dicts (:meth:`ArchiveConfig.to_dict` /
:meth:`ArchiveConfig.from_dict`) so configs can live in JSON/CLI land.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigurationError

__all__ = [
    "ArchiveConfig",
    "CacheSpec",
    "DeadlineSpec",
    "DictionarySpec",
    "EncodingSpec",
    "ParallelSpec",
    "PartitionSpec",
    "RetrySpec",
    "SearchSpec",
    "ServeSpec",
]

_SAMPLING_POLICIES = ("uniform", "prefix", "random_documents")
_JUMP_MODES = ("auto", "dict", "compact", "off")
_CACHE_TIERS = ("none", "lru", "shared")
_START_METHODS = ("fork", "spawn", "forkserver")


@dataclass(frozen=True)
class DictionarySpec:
    """Dictionary sampling and index configuration.

    ``size=None`` (default) auto-sizes the dictionary to ~1% of the
    collection (at least 64 KB), mirroring the paper's observation that
    even ~0.1% dictionaries work well at web scale.
    """

    size: Optional[int] = None
    sample_size: int = 1024
    policy: str = "uniform"
    prefix_fraction: float = 1.0
    seed: int = 0
    sa_algorithm: str = "doubling"
    accelerated: bool = True
    jump_start: str = "auto"

    def __post_init__(self) -> None:
        if self.size is not None and self.size <= 0:
            raise ConfigurationError("dictionary size must be positive (or None)")
        if self.sample_size <= 0:
            raise ConfigurationError("dictionary sample_size must be positive")
        if self.policy not in _SAMPLING_POLICIES:
            raise ConfigurationError(
                f"unknown sampling policy {self.policy!r}; "
                f"expected one of {_SAMPLING_POLICIES}"
            )
        if not 0.0 < self.prefix_fraction <= 1.0:
            raise ConfigurationError("prefix_fraction must be in (0, 1]")
        if self.jump_start not in _JUMP_MODES:
            raise ConfigurationError(
                f"unknown jump_start mode {self.jump_start!r}; "
                f"expected one of {_JUMP_MODES}"
            )

    def sized_for(self, total_bytes: int) -> int:
        """The concrete dictionary size for a collection of ``total_bytes``."""
        if self.size is not None:
            return self.size
        return max(64 * 1024, total_bytes // 100)


@dataclass(frozen=True)
class EncodingSpec:
    """Factor-stream pair-coding configuration (the paper's ZZ/ZV/UZ/UV)."""

    scheme: str = "ZZ"

    def __post_init__(self) -> None:
        if not self.scheme or not isinstance(self.scheme, str):
            raise ConfigurationError("encoding scheme must be a non-empty string")
        object.__setattr__(self, "scheme", self.scheme.upper())


@dataclass(frozen=True)
class ParallelSpec:
    """Encode-pipeline worker-pool configuration.

    ``workers``: ``None``/1 serial, 0 every core, else the pool size.
    ``start_method``/``share_memory`` configure how non-``fork`` workers
    receive the dictionary (see :class:`repro.core.ParallelCompressor`).
    """

    workers: Optional[int] = None
    start_method: Optional[str] = None
    share_memory: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 0:
            raise ConfigurationError(
                "workers must be None/1 (serial), 0 (all cores) or a positive "
                f"pool size; got {self.workers}"
            )
        if self.start_method is not None and self.start_method not in _START_METHODS:
            raise ConfigurationError(
                f"unknown start_method {self.start_method!r}; "
                f"expected one of {_START_METHODS}"
            )


@dataclass(frozen=True)
class CacheSpec:
    """Serving-time decode-cache tier configuration.

    ``tier``:

    * ``"none"`` — no caching (paper-faithful cold decodes, the default);
    * ``"lru"`` — in-process :class:`repro.storage.LruCache` of
      ``capacity`` decoded documents;
    * ``"shared"`` — cross-process :class:`repro.storage.SharedMemoryCache`
      ring of ``capacity`` slots of ``slot_bytes`` each.  Give the spec a
      ``name`` and every process opening the archive with the same name
      shares one cache (first process creates, the rest attach).
    """

    tier: str = "none"
    capacity: int = 0
    slot_bytes: int = 64 * 1024
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.tier not in _CACHE_TIERS:
            raise ConfigurationError(
                f"unknown cache tier {self.tier!r}; expected one of {_CACHE_TIERS}"
            )
        if self.tier == "none":
            if self.capacity:
                raise ConfigurationError("cache tier 'none' takes no capacity")
        elif self.capacity <= 0:
            raise ConfigurationError(
                f"cache tier {self.tier!r} needs a positive capacity"
            )
        if self.slot_bytes <= 0:
            raise ConfigurationError("slot_bytes must be positive")
        if self.name is not None and self.tier != "shared":
            raise ConfigurationError("cache name= only applies to the 'shared' tier")

    def build_tier(self):
        """Instantiate the configured :class:`repro.storage.CacheTier`."""
        from ..storage.cache import LruCache, NullCache, SharedMemoryCache

        if self.tier == "none":
            return NullCache()
        if self.tier == "lru":
            return LruCache(self.capacity)
        return SharedMemoryCache(
            slots=self.capacity, slot_bytes=self.slot_bytes, name=self.name
        )


@dataclass(frozen=True)
class DeadlineSpec:
    """Request-deadline and hedging configuration for the serving clients.

    ``default_ms`` is the per-request deadline every client call carries
    when the caller does not pass its own (0 = no deadline).  Protocol-v3
    request frames propagate the remaining budget to the server, which
    drops work whose deadline already expired instead of decoding it.
    ``hedge_delay`` (seconds) arms hedged ``ClusterClient.get``: when a
    primary shard has not answered within the delay, a backup request is
    fired at the next replica and the first response wins (0 = off).
    Set it near the fleet's p99 latency so hedges stay rare.
    """

    default_ms: int = 0
    hedge_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.default_ms < 0:
            raise ConfigurationError(
                f"deadline default_ms must be non-negative; got {self.default_ms}"
            )
        if self.hedge_delay < 0:
            raise ConfigurationError(
                f"hedge_delay must be non-negative; got {self.hedge_delay}"
            )


@dataclass(frozen=True)
class RetrySpec:
    """Client retry policy: attempt counts, backoff seeds, and the budget.

    ``retries``/``retry_delay`` govern connection dials (full-jittered
    exponential backoff); ``busy_retries`` bounds how often one request
    backs off after ``R_BUSY`` before raising
    :class:`~repro.errors.ServerBusyError`.  ``budget_capacity`` /
    ``budget_refill_rate`` shape the shared token-bucket
    :class:`~repro.serve.RetryBudget`: every retry of any kind spends a
    token, so during a brownout total retry traffic is capped at the
    refill rate instead of multiplying with the request rate.
    """

    retries: int = 3
    retry_delay: float = 0.05
    busy_retries: int = 4
    budget_capacity: float = 64.0
    budget_refill_rate: float = 16.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError(f"retries must be non-negative; got {self.retries}")
        if self.retry_delay < 0:
            raise ConfigurationError(
                f"retry_delay must be non-negative; got {self.retry_delay}"
            )
        if self.busy_retries < 0:
            raise ConfigurationError(
                f"busy_retries must be non-negative; got {self.busy_retries}"
            )
        if self.budget_capacity <= 0:
            raise ConfigurationError(
                f"budget_capacity must be positive; got {self.budget_capacity}"
            )
        if self.budget_refill_rate < 0:
            raise ConfigurationError(
                f"budget_refill_rate must be non-negative; got {self.budget_refill_rate}"
            )


@dataclass(frozen=True)
class ServeSpec:
    """Network-front configuration (``repro serve`` and
    :class:`repro.serve.RlzServer`).

    ``port=0`` binds an ephemeral port (the server reports the real one);
    ``max_inflight`` is the backpressure gate — at most that many requests
    decode concurrently *per archive*, the rest queue (and once the queue
    is a full gate deep, protocol-v2 clients are shed with ``R_BUSY``);
    ``max_pipeline`` bounds how many requests one protocol-v2 connection
    may have in flight before the server stops reading its frames;
    ``max_frame_bytes`` bounds a single request/response frame (oversized
    frames are rejected as :class:`~repro.errors.ProtocolError` before any
    allocation); ``drain_seconds`` is how long a graceful shutdown waits
    for in-flight requests before cancelling them.

    The cluster fields:

    * ``archives`` — ``name -> container path`` map; a server given one
      hosts every named archive behind one port (the
      :class:`~repro.serve.RlzRouter`), opening each lazily;
    * ``default_archive`` — the name served to clients that do not pick
      one (v1 clients, empty HELLO names); defaults to the first entry;
    * ``endpoints`` — ``host:port`` list a
      :class:`~repro.serve.ClusterClient` fans out over;
    * ``virtual_nodes`` — consistent-hash points per endpoint in the
      shard map (more points = smoother balance, bigger ring).

    Fault-tolerance policy lives in the nested ``deadline``
    (:class:`DeadlineSpec`) and ``retry`` (:class:`RetrySpec`) specs;
    both accept plain dicts so JSON configs round-trip.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 64
    max_frame_bytes: int = 64 * 1024 * 1024
    drain_seconds: float = 5.0
    max_pipeline: int = 128
    archives: Optional[Dict[str, str]] = None
    default_archive: Optional[str] = None
    endpoints: Optional[Tuple[str, ...]] = None
    virtual_nodes: int = 64
    deadline: DeadlineSpec = field(default_factory=DeadlineSpec)
    retry: RetrySpec = field(default_factory=RetrySpec)

    def __post_init__(self) -> None:
        if isinstance(self.deadline, dict):
            object.__setattr__(self, "deadline", DeadlineSpec(**self.deadline))
        elif not isinstance(self.deadline, DeadlineSpec):
            raise ConfigurationError("deadline must be a DeadlineSpec (or dict)")
        if isinstance(self.retry, dict):
            object.__setattr__(self, "retry", RetrySpec(**self.retry))
        elif not isinstance(self.retry, RetrySpec):
            raise ConfigurationError("retry must be a RetrySpec (or dict)")
        if not self.host or not isinstance(self.host, str):
            raise ConfigurationError("serve host must be a non-empty string")
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(f"serve port must be in [0, 65535]; got {self.port}")
        if self.max_inflight <= 0:
            raise ConfigurationError(
                f"max_inflight must be positive; got {self.max_inflight}"
            )
        if self.max_frame_bytes < 4096:
            raise ConfigurationError(
                "max_frame_bytes must be at least 4096 (one handshake frame)"
            )
        if self.drain_seconds < 0:
            raise ConfigurationError("drain_seconds must be non-negative")
        if self.max_pipeline <= 0:
            raise ConfigurationError(
                f"max_pipeline must be positive; got {self.max_pipeline}"
            )
        if self.virtual_nodes <= 0:
            raise ConfigurationError(
                f"virtual_nodes must be positive; got {self.virtual_nodes}"
            )
        if self.archives is not None:
            if not isinstance(self.archives, dict) or not self.archives:
                raise ConfigurationError(
                    "archives must be a non-empty {name: path} mapping (or None)"
                )
            normalized = {}
            for name, path in self.archives.items():
                if not isinstance(name, str):
                    raise ConfigurationError(
                        f"archive names must be strings; got {name!r}"
                    )
                normalized[name] = str(path)
            object.__setattr__(self, "archives", normalized)
        if self.default_archive is not None:
            if self.archives is None or self.default_archive not in self.archives:
                raise ConfigurationError(
                    f"default_archive {self.default_archive!r} is not in the "
                    "archives map"
                )
        if self.endpoints is not None:
            endpoints = tuple(str(endpoint) for endpoint in self.endpoints)
            if not endpoints:
                raise ConfigurationError(
                    "endpoints must be a non-empty host:port list (or None)"
                )
            object.__setattr__(self, "endpoints", endpoints)


@dataclass(frozen=True)
class PartitionSpec:
    """Partitioned-build configuration (``repro partition``).

    ``shards`` is how many per-shard stores a partitioned build writes;
    each shard's container holds only the doc ids its arc of the
    consistent-hash ring owns.  ``virtual_nodes`` must match the ring the
    serving fleet uses (it determines the arcs).  ``shared_dictionary``
    selects between one dictionary sampled from the whole collection and
    embedded in every shard (cross-shard compression stays paper-faithful,
    the default) and a per-shard dictionary sampled from each shard's own
    documents (smaller build memory, shard-local tuning).  ``epoch`` seeds
    the shard-map epoch recorded in every shard manifest; rebalances bump
    it from there.
    """

    shards: int = 1
    virtual_nodes: int = 64
    shared_dictionary: bool = True
    epoch: int = 1

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ConfigurationError(f"shards must be positive; got {self.shards}")
        if self.virtual_nodes <= 0:
            raise ConfigurationError(
                f"virtual_nodes must be positive; got {self.virtual_nodes}"
            )
        if self.epoch <= 0:
            raise ConfigurationError(f"epoch must be positive; got {self.epoch}")


@dataclass(frozen=True)
class SearchSpec:
    """Search-serving configuration (the SEARCH opcode and its index).

    ``enabled`` makes builds (``RlzArchive.build``, ``repro partition``)
    emit a :class:`repro.search.serving.PostingsStore` sidecar next to
    each container — per-shard builds index only the documents the shard
    owns.  ``k1``/``b`` are the Okapi BM25 parameters servers score with
    (they must match whatever in-memory index results are compared
    against; the defaults are the textbook values
    :class:`repro.search.InvertedIndex` uses).  ``snippet_chars`` is the
    default window, in bytes, of the query-biased snippet a SEARCH reply
    carries when the client does not pick its own (0 = no snippets).
    """

    enabled: bool = False
    k1: float = 1.2
    b: float = 0.75
    snippet_chars: int = 160

    def __post_init__(self) -> None:
        if self.k1 < 0:
            raise ConfigurationError(f"BM25 k1 must be non-negative; got {self.k1}")
        if not 0.0 <= self.b <= 1.0:
            raise ConfigurationError(f"BM25 b must be in [0, 1]; got {self.b}")
        if self.snippet_chars < 0:
            raise ConfigurationError(
                f"snippet_chars must be non-negative; got {self.snippet_chars}"
            )


@dataclass(frozen=True)
class ArchiveConfig:
    """The single way to configure building and serving an archive."""

    dictionary: DictionarySpec = field(default_factory=DictionarySpec)
    encoding: EncodingSpec = field(default_factory=EncodingSpec)
    parallel: ParallelSpec = field(default_factory=ParallelSpec)
    cache: CacheSpec = field(default_factory=CacheSpec)
    serve: ServeSpec = field(default_factory=ServeSpec)
    partition: PartitionSpec = field(default_factory=PartitionSpec)
    search: SearchSpec = field(default_factory=SearchSpec)

    def __post_init__(self) -> None:
        if not isinstance(self.dictionary, DictionarySpec):
            raise ConfigurationError("dictionary must be a DictionarySpec")
        if not isinstance(self.encoding, EncodingSpec):
            raise ConfigurationError("encoding must be an EncodingSpec")
        if not isinstance(self.parallel, ParallelSpec):
            raise ConfigurationError("parallel must be a ParallelSpec")
        if not isinstance(self.cache, CacheSpec):
            raise ConfigurationError("cache must be a CacheSpec")
        if not isinstance(self.serve, ServeSpec):
            raise ConfigurationError("serve must be a ServeSpec")
        if not isinstance(self.partition, PartitionSpec):
            raise ConfigurationError("partition must be a PartitionSpec")
        if not isinstance(self.search, SearchSpec):
            raise ConfigurationError("search must be a SearchSpec")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict form (JSON-safe) of the whole tree."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ArchiveConfig":
        """Rebuild a config from :meth:`to_dict` output (extra keys rejected)."""
        specs = {
            "dictionary": DictionarySpec,
            "encoding": EncodingSpec,
            "parallel": ParallelSpec,
            "cache": CacheSpec,
            "serve": ServeSpec,
            "partition": PartitionSpec,
            "search": SearchSpec,
        }
        unknown = set(data) - set(specs)
        if unknown:
            raise ConfigurationError(
                f"unknown ArchiveConfig sections: {sorted(unknown)}"
            )
        kwargs = {}
        for key, spec_cls in specs.items():
            if key not in data:
                continue
            section = data[key]
            if isinstance(section, spec_cls):
                kwargs[key] = section
            elif isinstance(section, dict):
                try:
                    kwargs[key] = spec_cls(**section)
                except TypeError as exc:
                    raise ConfigurationError(f"bad {key} section: {exc}") from exc
            else:
                raise ConfigurationError(
                    f"{key} section must be a dict or {spec_cls.__name__}"
                )
        return cls(**kwargs)
