"""The transport-agnostic :class:`ArchiveView` protocol.

The facade (:class:`repro.api.RlzArchive`) and the network client
(:class:`repro.serve.RlzClient`) serve documents through the same surface;
this module is that surface, extracted so callers — examples, benchmarks,
the CLI ``repro get`` — can be written once against :class:`ArchiveView`
and pointed at either a local archive or a remote one without change.

The contract every implementation honours:

* ``get`` / ``get_many`` return byte-identical documents for the same
  archive, with ``get_many`` preserving request order (duplicates
  included);
* ``iter_documents`` yields every ``(doc_id, content)`` pair in store
  order;
* errors are the same :mod:`repro.errors` types everywhere — a missing
  document raises :class:`~repro.errors.StorageError` and a closed view
  raises :class:`~repro.errors.StoreClosedError` whether the decode
  happened in-process or on the other side of a socket (the wire protocol
  round-trips the concrete error class);
* ``stats()`` returns a flat ``str -> number`` mapping (keys vary by
  implementation: local views report cache counters, remote views add
  server-side counters);
* ``close()`` is idempotent and ``closed`` reports it.

:class:`AsyncArchiveView` is the coroutine mirror, satisfied by
:class:`repro.api.AsyncRlzArchive` and :class:`repro.serve.AsyncRlzClient`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Protocol, Sequence, Tuple, runtime_checkable

__all__ = ["ArchiveView", "AsyncArchiveView"]


@runtime_checkable
class ArchiveView(Protocol):
    """Synchronous random access to an archive, local or remote."""

    def get(self, doc_id: int) -> bytes:
        """One decoded document (raises ``StorageError`` if unknown)."""
        ...

    def get_many(self, doc_ids: Sequence[int]) -> List[bytes]:
        """Documents in request order, duplicates preserved."""
        ...

    def iter_documents(self) -> Iterator[Tuple[int, bytes]]:
        """Every ``(doc_id, content)`` pair in store order."""
        ...

    def doc_ids(self) -> List[int]:
        """All stored document IDs in store order."""
        ...

    def __len__(self) -> int:
        """Number of stored documents."""
        ...

    def stats(self) -> Dict[str, float]:
        """Flat serving counters (implementation-specific keys)."""
        ...

    def close(self) -> None:
        """Release the view (idempotent)."""
        ...

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        ...


@runtime_checkable
class AsyncArchiveView(Protocol):
    """Coroutine mirror of :class:`ArchiveView`: the serving surface
    (``get``/``get_many``/``close``) is awaitable.

    ``stats`` is deliberately *not* part of this protocol: a local front
    snapshots counters synchronously (``AsyncRlzArchive.stats()``) while a
    remote client must round-trip the ``stats`` opcode
    (``await AsyncRlzClient.stats()``), so the two shapes differ and
    callers should name the implementation they need it from.
    """

    async def get(self, doc_id: int) -> bytes:
        ...

    async def get_many(self, doc_ids: Sequence[int]) -> List[bytes]:
        ...

    async def close(self) -> None:
        ...

    @property
    def closed(self) -> bool:
        ...
