"""Asyncio serving front for :class:`repro.api.RlzArchive`.

Heavy-traffic serving is many concurrent clients asking for overlapping
sets of documents.  :class:`AsyncRlzArchive` puts an asyncio front on an
archive:

* decode work is offloaded to a thread pool, so the event loop stays free
  while a request decodes (the store's file handle is seek/read-atomic and
  the cache tiers are thread-safe, so the pool can be wider than one);
* duplicate in-flight ``get``\\ s for the same document are *coalesced*:
  the first request decodes, every concurrent duplicate awaits the same
  future and shares the result — the decode runs once no matter how many
  clients ask while it is in flight;
* ``get_many`` offloads one batched (vectorized) decode; ``gather`` fans a
  list of IDs out as coalescible per-document requests.

The front owns nothing the archive does not: closing it shuts the pool
down and closes the archive (cache tier included).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import StoreClosedError
from .archive import RlzArchive
from .config import ArchiveConfig

__all__ = ["AsyncRlzArchive"]


class AsyncRlzArchive:
    """Async request front over an :class:`RlzArchive`.

    Parameters
    ----------
    archive:
        The archive to serve (takes ownership: closing the front closes it).
    max_workers:
        Thread-pool width for decode offload.  ``None`` uses the
        ``ThreadPoolExecutor`` default.
    """

    def __init__(self, archive: RlzArchive, max_workers: Optional[int] = None) -> None:
        self._archive = archive
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="rlz-serve"
        )
        self._inflight: Dict[int, "asyncio.Future[bytes]"] = {}
        self._requests = 0
        self._coalesced = 0
        self._closed = False

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        config: Optional[ArchiveConfig] = None,
        max_workers: Optional[int] = None,
    ) -> "AsyncRlzArchive":
        """Open an archive and wrap it in an async front (synchronous call)."""
        return cls(RlzArchive.open(path, config), max_workers=max_workers)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def archive(self) -> RlzArchive:
        """The wrapped archive."""
        return self._archive

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def stats(self) -> Dict[str, float]:
        """Front-side counters merged with the archive's serving stats."""
        snapshot = self._archive.stats()
        snapshot["async_requests"] = self._requests
        snapshot["async_coalesced"] = self._coalesced
        snapshot["async_inflight"] = len(self._inflight)
        return snapshot

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreClosedError(
                f"async front over {self._archive.path} is closed"
            )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    async def get(self, doc_id: int) -> bytes:
        """One document; concurrent duplicates share a single decode.

        The decode future belongs to the *request*, not to whichever client
        happened to arrive first: every awaiter (first or coalesced) is
        shielded, so cancelling any one client — including the one that
        started the decode — neither cancels the running decode nor poisons
        the result the others are awaiting.
        """
        self._ensure_open()
        self._requests += 1
        future = self._inflight.get(doc_id)
        if future is not None and future.cancelled():
            # A cancelled decode (a timeout path cancelled the executor
            # future before its done-callback ran) must not satisfy new
            # requests: evict it and decode fresh.
            if self._inflight.get(doc_id) is future:
                del self._inflight[doc_id]
            future = None
        if future is not None:
            self._coalesced += 1
        else:
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(self._executor, self._archive.get, doc_id)
            self._inflight[doc_id] = future

            def _on_done(completed: "asyncio.Future[bytes]") -> None:
                # Only drop the map entry if it is still *this* future: a
                # cancelled entry may already have been replaced by a fresh
                # decode that must stay coalescible.
                if self._inflight.get(doc_id) is completed:
                    del self._inflight[doc_id]
                if not completed.cancelled():
                    # Mark a failure retrieved: every awaiter may have been
                    # cancelled, and an unobserved exception would warn at
                    # garbage collection.
                    completed.exception()

            future.add_done_callback(_on_done)
        return await asyncio.shield(future)

    async def get_many(self, doc_ids: Sequence[int]) -> List[bytes]:
        """One batched decode for the whole request (vectorized misses)."""
        self._ensure_open()
        doc_ids = list(doc_ids)
        self._requests += len(doc_ids)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self._archive.get_many, doc_ids
        )

    async def gather(self, doc_ids: Sequence[int]) -> List[bytes]:
        """Fan out per-document requests concurrently (coalescing applies)."""
        return list(await asyncio.gather(*(self.get(doc_id) for doc_id in doc_ids)))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Drain the pool and close the archive (idempotent)."""
        if self._closed:
            return
        self._closed = True
        loop = asyncio.get_running_loop()
        # shutdown(wait=True) blocks until in-flight decodes finish; keep
        # the event loop responsive by waiting in the default executor.
        await loop.run_in_executor(None, self._executor.shutdown)
        self._archive.close()

    async def __aenter__(self) -> "AsyncRlzArchive":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
