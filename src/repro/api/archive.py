"""The :class:`RlzArchive` service facade.

The paper's point is cheap random access to a compressed web collection at
serving time; this facade makes that the *shape of the API*.  Instead of
the build-pipeline dance —

    compressor = RlzCompressor(dictionary_config=..., scheme=..., workers=...)
    compressed = compressor.compress(collection)
    RlzStore.write(compressed, path)
    store = RlzStore.open(path, decode_cache_size=...)

— there are two entry points:

    archive = RlzArchive.build(collection_or_docs, config, path)
    archive = RlzArchive.open(path, config)

both returning a ready-to-serve archive whose ``get`` / ``get_many`` /
``iter_documents`` record per-request statistics (documents, bytes,
seconds, cache hits/misses), with every tuning decision living in one
declarative :class:`ArchiveConfig`.  The legacy constructors remain fully
supported underneath — the facade is composition, not replacement.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.compressor import RlzCompressor
from ..core.dictionary import DictionaryConfig
from ..corpus.document import Document, DocumentCollection
from ..errors import ConfigurationError
from ..storage.rlz_store import RlzStore
from .config import ArchiveConfig

__all__ = ["ArchiveStats", "RequestStats", "RlzArchive"]

#: Anything ``RlzArchive.build`` accepts as the documents to archive.
DocumentSource = Union[
    DocumentCollection,
    Iterable[Union[Document, bytes, str, Tuple[int, Union[bytes, str]]]],
]


@dataclass(frozen=True)
class RequestStats:
    """What one ``get`` / ``get_many`` / ``iter_documents`` request cost."""

    operation: str
    documents: int
    bytes_served: int
    seconds: float
    cache_hits: int
    cache_misses: int


@dataclass
class ArchiveStats:
    """Cumulative serving statistics for one archive handle."""

    requests: int = 0
    documents: int = 0
    bytes_served: int = 0
    seconds: float = 0.0

    def record(self, request: RequestStats) -> None:
        """Fold one request into the totals."""
        self.requests += 1
        self.documents += request.documents
        self.bytes_served += request.bytes_served
        self.seconds += request.seconds


def _coerce_content(content: Union[bytes, str]) -> bytes:
    if isinstance(content, str):
        return content.encode("utf-8")
    return bytes(content)


def _as_collection(source: DocumentSource, name: str = "archive") -> DocumentCollection:
    """Normalise any accepted document source into a DocumentCollection."""
    if isinstance(source, DocumentCollection):
        return source
    if isinstance(source, (bytes, str)):
        raise ConfigurationError(
            "build() takes a collection or an iterable of documents, "
            "not a single document; wrap it in a list"
        )
    documents: List[Document] = []
    for index, item in enumerate(source):
        if isinstance(item, Document):
            documents.append(item)
        elif isinstance(item, tuple):
            if len(item) != 2:
                raise ConfigurationError(
                    f"document tuple must be (doc_id, content); got {item!r}"
                )
            doc_id, content = item
            documents.append(
                Document(
                    doc_id=int(doc_id),
                    url=f"memory://{name}/{int(doc_id)}",
                    content=_coerce_content(content),
                )
            )
        elif isinstance(item, (bytes, bytearray, str)):
            documents.append(
                Document(
                    doc_id=index,
                    url=f"memory://{name}/{index}",
                    content=_coerce_content(item),
                )
            )
        else:
            raise ConfigurationError(
                "documents must be Document, bytes, str or (doc_id, content) "
                f"tuples; got {type(item).__name__}"
            )
    if not documents:
        raise ConfigurationError("cannot build an archive from zero documents")
    return DocumentCollection(documents, name=name)


class RlzArchive:
    """A built-and-opened RLZ archive, ready to serve documents.

    Construct through :meth:`build` or :meth:`open`; the constructor itself
    wraps an already-open :class:`RlzStore` (the escape hatch for advanced
    callers who assembled the store manually).
    """

    def __init__(self, store: RlzStore, config: ArchiveConfig, path: Path) -> None:
        self._store = store
        self._config = config
        self._path = Path(path)
        self._totals = ArchiveStats()
        self._last_request: Optional[RequestStats] = None
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        collection_or_docs: DocumentSource,
        config: Optional[ArchiveConfig] = None,
        path: Optional[Union[str, Path]] = None,
    ) -> "RlzArchive":
        """Compress ``collection_or_docs`` to ``path`` and open it for serving.

        Accepts a :class:`DocumentCollection`, an iterable of
        :class:`Document` objects, raw ``bytes``/``str`` payloads (IDs
        assigned by position) or ``(doc_id, content)`` tuples.  One call
        subsumes the legacy compress → ``RlzStore.write`` → ``open`` dance.
        """
        if path is None:
            raise ConfigurationError(
                "build() needs a container path (the archive is an on-disk store)"
            )
        config = config or ArchiveConfig()
        collection = _as_collection(collection_or_docs)
        spec = config.dictionary
        compressor = RlzCompressor(
            dictionary_config=DictionaryConfig(
                size=spec.sized_for(collection.total_size),
                sample_size=spec.sample_size,
                policy=spec.policy,
                prefix_fraction=spec.prefix_fraction,
                seed=spec.seed,
            ),
            scheme=config.encoding.scheme,
            sa_algorithm=spec.sa_algorithm,
            accelerated=spec.accelerated,
            workers=config.parallel.workers,
            start_method=config.parallel.start_method,
            share_memory=config.parallel.share_memory,
            jump_start=spec.jump_start,
        )
        compressed = compressor.compress(collection)
        RlzStore.write(compressed, path)
        if config.search.enabled:
            from ..search.serving import index_sidecar_path, write_postings

            write_postings(
                ((document.doc_id, document.content) for document in collection),
                index_sidecar_path(path),
            )
        return cls.open(path, config)

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        config: Optional[ArchiveConfig] = None,
    ) -> "RlzArchive":
        """Open an existing archive for serving with ``config``'s cache tier."""
        config = config or ArchiveConfig()
        tier = config.cache.build_tier()
        try:
            store = RlzStore.open(Path(path), cache=tier)
        except Exception:
            # The store never took ownership (bad path, wrong container
            # type, ...): release the tier here or a shared-memory segment
            # would outlive the failed open.
            tier.close()
            raise
        return cls(store, config, Path(path))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        """Path of the container file."""
        return self._path

    @property
    def config(self) -> ArchiveConfig:
        """The configuration this archive was opened with."""
        return self._config

    @property
    def store(self) -> RlzStore:
        """The underlying store (escape hatch for legacy integrations)."""
        return self._store

    @property
    def scheme_name(self) -> str:
        """Pair-coding scheme of the stored encoding."""
        return self._store.scheme_name

    @property
    def disk(self):
        """The store's disk model (archives satisfy the retrieval-measurement
        protocol of :func:`repro.bench.measure_retrieval`)."""
        return self._store.disk

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._store.closed

    @property
    def last_request(self) -> Optional[RequestStats]:
        """Statistics of the most recent request (``None`` before any)."""
        with self._stats_lock:
            return self._last_request

    def doc_ids(self) -> List[int]:
        """All stored document IDs in store order."""
        return self._store.doc_ids()

    def __len__(self) -> int:
        return len(self._store)

    def compression_percent(self, include_dictionary: bool = True) -> float:
        """Stored payload (plus dictionary by default) as % of original size."""
        return self._store.compression_percent(include_dictionary=include_dictionary)

    def cache_info(self) -> Dict[str, int]:
        """Counters of the serving cache tier."""
        return self._store.cache_info

    def stats(self) -> Dict[str, float]:
        """Cumulative serving statistics plus live cache counters."""
        with self._stats_lock:
            totals = ArchiveStats(
                requests=self._totals.requests,
                documents=self._totals.documents,
                bytes_served=self._totals.bytes_served,
                seconds=self._totals.seconds,
            )
        snapshot: Dict[str, float] = {
            "requests": totals.requests,
            "documents": totals.documents,
            "bytes_served": totals.bytes_served,
            "seconds": totals.seconds,
        }
        for key, value in self._store.cache_info.items():
            snapshot[f"cache_{key}"] = value
        return snapshot

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _record(
        self,
        operation: str,
        documents: int,
        bytes_served: int,
        seconds: float,
        cache_before: Dict[str, int],
    ) -> RequestStats:
        cache_after = self._store.cache_info
        request = RequestStats(
            operation=operation,
            documents=documents,
            bytes_served=bytes_served,
            seconds=seconds,
            cache_hits=cache_after["hits"] - cache_before["hits"],
            cache_misses=cache_after["misses"] - cache_before["misses"],
        )
        with self._stats_lock:
            self._last_request = request
            self._totals.record(request)
        return request

    def get(self, doc_id: int) -> bytes:
        """Random access: one decoded document."""
        cache_before = self._store.cache_info
        start = time.perf_counter()
        document = self._store.get(doc_id)
        elapsed = time.perf_counter() - start
        self._record("get", 1, len(document), elapsed, cache_before)
        return document

    def get_many(self, doc_ids: Sequence[int]) -> List[bytes]:
        """Batch random access (one vectorized decode for the misses)."""
        cache_before = self._store.cache_info
        start = time.perf_counter()
        documents = self._store.get_many(doc_ids)
        elapsed = time.perf_counter() - start
        self._record(
            "get_many",
            len(documents),
            sum(len(document) for document in documents),
            elapsed,
            cache_before,
        )
        return documents

    def iter_documents(self) -> Iterator[Tuple[int, bytes]]:
        """Sequential scan; stats recorded when the iteration completes."""
        cache_before = self._store.cache_info
        start = time.perf_counter()
        count = 0
        total = 0
        for doc_id, document in self._store.iter_documents():
            count += 1
            total += len(document)
            yield doc_id, document
        self._record(
            "iter_documents", count, total, time.perf_counter() - start, cache_before
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the store and its cache tier (idempotent)."""
        self._store.close()

    def __enter__(self) -> "RlzArchive":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
