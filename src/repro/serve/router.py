"""The :class:`RlzRouter`: many named archives behind one server port.

PR 4's :class:`~repro.serve.server.RlzServer` bound exactly one archive to
one socket.  The router splits *archive dispatch* out of *connection
handling*: a server owns one router, the router owns any number of named
archives, and the HELLO handshake's archive-name field picks which one a
connection talks to (the empty name selects the default archive, which is
also what legacy v1 clients — whose HELLO predates the name field — get).

Per archive, the router keeps:

* a **lazily opened** :class:`~repro.api.AsyncRlzArchive` — registering an
  archive costs nothing until the first connection asks for it (the open
  runs on the server's executor so the event loop never blocks on disk);
* an **inflight gate** (``max_inflight`` from the archive's
  :class:`~repro.api.ServeSpec`) — one hot archive saturating its gate
  queues *its* requests without starving the others, and once the queue
  itself is a full gate deep the server answers version-2 clients with
  ``R_BUSY`` instead of queueing further;
* request/error/busy counters, surfaced per archive in :meth:`stats`.

The router owns the fronts it opens (closing the router closes them); a
front handed in pre-opened (the single-archive compatibility path) is
owned only if the caller says so.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from ..api.async_front import AsyncRlzArchive
from ..api.config import ArchiveConfig, ServeSpec
from ..errors import ConfigurationError, ProtocolError

__all__ = ["ArchiveEntry", "RlzRouter"]


class ArchiveEntry:
    """One named archive hosted by a router: lazy front + gate + counters."""

    def __init__(
        self,
        name: str,
        path: Optional[Path],
        config: ArchiveConfig,
        front: Optional[AsyncRlzArchive] = None,
        owned: bool = True,
    ) -> None:
        self.name = name
        self.path = path
        self.config = config
        self.front = front
        self.owned = owned
        # Created on first use: asyncio primitives must bind the loop that
        # will use them, and entries are registered before the loop runs.
        self.gate: Optional[asyncio.Semaphore] = None
        self.open_lock: Optional[asyncio.Lock] = None
        #: Requests parked behind a saturated gate right now; once this
        #: reaches ``max_inflight`` the server sheds load with R_BUSY.
        self.waiting = 0
        #: Requests currently holding a gate slot (decoding).
        self.active = 0
        self.requests = 0
        self.errors = 0
        self.busy_rejections = 0
        #: Requests dropped because their wire deadline expired before or
        #: while they queued — no decode work was done for these.
        self.deadline_rejections = 0
        #: Exponential moving average of per-request service seconds;
        #: seeds the retry-after hint R_BUSY carries.
        self.ewma_seconds = 0.0

    @property
    def max_inflight(self) -> int:
        return self.config.serve.max_inflight

    def observe(self, elapsed: float) -> None:
        """Fold one request's service time into the EWMA."""
        if self.ewma_seconds:
            self.ewma_seconds = 0.9 * self.ewma_seconds + 0.1 * elapsed
        else:
            self.ewma_seconds = elapsed

    def retry_after_ms(self) -> int:
        """A retry-after hint (ms) for a client shed with R_BUSY.

        The backlog ahead of a returning client is roughly ``waiting + 1``
        requests draining through ``max_inflight`` lanes at the observed
        EWMA service time; before any request has completed, fall back to
        a small fixed delay.  Capped so a stats glitch never tells clients
        to go away for minutes.
        """
        per_request = self.ewma_seconds or 0.010
        estimate = per_request * (self.waiting + 1) / max(1, self.max_inflight)
        return max(1, min(5000, int(estimate * 1000)))

    def health(self) -> Dict[str, float]:
        """This archive's readiness/load snapshot (the HEALTH payload)."""
        return {
            "open": int(self.front is not None),
            "max_inflight": self.max_inflight,
            "active": self.active,
            "waiting": self.waiting,
            "saturated": int(self.waiting >= self.max_inflight),
            "ewma_ms": round(self.ewma_seconds * 1000, 3),
            "retry_after_ms": self.retry_after_ms(),
            "requests": self.requests,
            "errors": self.errors,
            "busy_rejections": self.busy_rejections,
            "deadline_rejections": self.deadline_rejections,
        }

    def stats_into(self, snapshot: Dict[str, float]) -> None:
        """Per-archive counters (and front stats once opened)."""
        prefix = f"archive_{self.name or 'default'}"
        snapshot[f"{prefix}_requests"] = self.requests
        snapshot[f"{prefix}_errors"] = self.errors
        snapshot[f"{prefix}_busy_rejections"] = self.busy_rejections
        snapshot[f"{prefix}_deadline_rejections"] = self.deadline_rejections
        snapshot[f"{prefix}_active"] = self.active
        snapshot[f"{prefix}_waiting"] = self.waiting
        snapshot[f"{prefix}_ewma_ms"] = round(self.ewma_seconds * 1000, 3)
        snapshot[f"{prefix}_open"] = int(self.front is not None)


class RlzRouter:
    """Dispatch connections to named archives, opening each lazily.

    Parameters
    ----------
    archives:
        ``name -> container path`` of the archives to host.  Paths are not
        touched until a connection asks for the name.
    config:
        The :class:`ArchiveConfig` every archive opens with (cache tier,
        serve gate, ...).  Per-archive configs can be supplied through
        :meth:`add`.
    default:
        Archive name served to clients that do not pick one (v1 clients
        and v2 clients sending an empty name).  Defaults to the first
        registered archive.
    max_workers:
        Decode thread-pool width handed to each opened front.
    """

    def __init__(
        self,
        archives: Optional[Mapping[str, Union[str, Path]]] = None,
        config: Optional[ArchiveConfig] = None,
        default: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self._config = config or ArchiveConfig()
        self._max_workers = max_workers
        self._entries: Dict[str, ArchiveEntry] = {}
        self._default: Optional[str] = None
        self._closed = False
        for name, path in (archives or {}).items():
            self.add(name, path)
        if default is not None:
            if default not in self._entries:
                raise ConfigurationError(
                    f"default archive {default!r} is not registered "
                    f"(have: {sorted(self._entries) or '[]'})"
                )
            self._default = default

    @classmethod
    def for_front(
        cls,
        front: AsyncRlzArchive,
        name: str = "",
        config: Optional[ArchiveConfig] = None,
        owned: bool = True,
    ) -> "RlzRouter":
        """A router hosting one pre-opened front (the PR-4 single-archive
        path; ``owned`` says whether closing the router closes the front)."""
        router = cls(config=config)
        entry = ArchiveEntry(
            name=name,
            path=None,
            config=config or ArchiveConfig(),
            front=front,
            owned=owned,
        )
        router._entries[name] = entry
        router._default = name
        return router

    # ------------------------------------------------------------------
    # Registration / introspection
    # ------------------------------------------------------------------
    def add(
        self,
        name: str,
        path: Union[str, Path],
        config: Optional[ArchiveConfig] = None,
    ) -> None:
        """Register archive ``name`` at ``path`` (not opened yet)."""
        if name in self._entries:
            raise ConfigurationError(f"archive {name!r} is already registered")
        self._entries[name] = ArchiveEntry(
            name=name, path=Path(path), config=config or self._config
        )
        if self._default is None:
            self._default = name

    @property
    def names(self) -> List[str]:
        """Registered archive names, registration order."""
        return list(self._entries)

    @property
    def default_name(self) -> Optional[str]:
        return self._default

    @property
    def closed(self) -> bool:
        return self._closed

    def entry(self, name: str = "") -> ArchiveEntry:
        """The entry for ``name`` ('' = default), without opening it."""
        if not name:
            if self._default is None:
                raise ConfigurationError("router hosts no archives")
            return self._entries[self._default]
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown archive {name!r} (this server hosts: "
                f"{', '.join(self._entries) or 'none'})"
            ) from None

    def default_front(self) -> AsyncRlzArchive:
        """The default archive's front, if already open (sync callers)."""
        entry = self.entry("")
        if entry.front is None:
            raise ProtocolError(
                f"archive {entry.name or 'default'!r} has not been opened yet"
            )
        return entry.front

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def resolve(self, name: str = "") -> ArchiveEntry:
        """The entry for ``name`` with its front opened and gate ready.

        Lazy open runs on the default executor (it reads the container
        header and dictionary from disk), serialized per entry so two
        concurrent first connections open the archive once.
        """
        if self._closed:
            raise ProtocolError("router is closed")
        entry = self.entry(name)
        if entry.gate is None:
            entry.gate = asyncio.Semaphore(entry.max_inflight)
        if entry.front is None:
            if entry.open_lock is None:
                entry.open_lock = asyncio.Lock()
            async with entry.open_lock:
                if entry.front is None and not self._closed:
                    loop = asyncio.get_running_loop()
                    path, config, workers = entry.path, entry.config, self._max_workers
                    entry.front = await loop.run_in_executor(
                        None,
                        lambda: AsyncRlzArchive.open(
                            path, config, max_workers=workers
                        ),
                    )
        if entry.front is None:
            raise ProtocolError("router is closed")
        return entry

    def stats(self) -> Dict[str, float]:
        """Per-archive counters plus the default front's archive stats."""
        snapshot: Dict[str, float] = {"router_archives": len(self._entries)}
        for entry in self._entries.values():
            entry.stats_into(snapshot)
        default = self.entry("") if self._entries else None
        if default is not None and default.front is not None and not default.front.closed:
            snapshot.update(default.front.stats())
        return snapshot

    def health(self) -> Dict[str, Dict[str, float]]:
        """Readiness/load per archive (the HEALTH response payload).

        Pure bookkeeping — never opens a front or touches the gate, so it
        stays answerable even when every archive is saturated.
        """
        return {
            (entry.name or "default"): entry.health()
            for entry in self._entries.values()
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Close every owned, opened front (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for entry in self._entries.values():
            front = entry.front
            if front is not None and entry.owned and not front.closed:
                await front.close()
