"""The :class:`RlzRouter`: many named archives behind one server port.

PR 4's :class:`~repro.serve.server.RlzServer` bound exactly one archive to
one socket.  The router splits *archive dispatch* out of *connection
handling*: a server owns one router, the router owns any number of named
archives, and the HELLO handshake's archive-name field picks which one a
connection talks to (the empty name selects the default archive, which is
also what legacy v1 clients — whose HELLO predates the name field — get).

Per archive, the router keeps:

* a **lazily opened** :class:`~repro.api.AsyncRlzArchive` — registering an
  archive costs nothing until the first connection asks for it (the open
  runs on the server's executor so the event loop never blocks on disk);
* an **inflight gate** (``max_inflight`` from the archive's
  :class:`~repro.api.ServeSpec`) — one hot archive saturating its gate
  queues *its* requests without starving the others, and once the queue
  itself is a full gate deep the server answers version-2 clients with
  ``R_BUSY`` instead of queueing further;
* request/error/busy counters, surfaced per archive in :meth:`stats`.

The router owns the fronts it opens (closing the router closes them); a
front handed in pre-opened (the single-archive compatibility path) is
owned only if the caller says so.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..api.async_front import AsyncRlzArchive
from ..api.config import ArchiveConfig, ServeSpec
from ..errors import ConfigurationError, ProtocolError
from ..search.serving import PostingsStore, index_sidecar_path
from ..storage.partition import (
    PartitionManifest,
    clear_overlay,
    read_manifest,
    read_overlay,
    rewrite_partition_store,
    write_overlay,
)
from .cluster import ShardMap

__all__ = ["ArchiveEntry", "PartitionState", "RlzRouter"]


class PartitionState:
    """A partitioned archive's live placement view: manifest + hash ring.

    Immutable — installing a new epoch builds a *new* state and swaps it
    in, so a request that grabbed the old state keeps a consistent
    (manifest, ring) pair for its whole lifetime.
    """

    def __init__(self, manifest: PartitionManifest) -> None:
        self.manifest = manifest
        self.ring = ShardMap(
            list(manifest.shards),
            virtual_nodes=manifest.virtual_nodes,
            epoch=manifest.epoch,
        )
        self.ring_id = ShardMap.ring_id(manifest.shard)

    @property
    def epoch(self) -> int:
        return self.manifest.epoch

    def owns(self, doc_id: int) -> bool:
        """Whether this shard's arc covers ``doc_id`` under the manifest map."""
        return ShardMap.ring_id(self.ring.primary(doc_id)) == self.ring_id


class ArchiveEntry:
    """One named archive hosted by a router: lazy front + gate + counters."""

    def __init__(
        self,
        name: str,
        path: Optional[Path],
        config: ArchiveConfig,
        front: Optional[AsyncRlzArchive] = None,
        owned: bool = True,
    ) -> None:
        self.name = name
        self.path = path
        self.config = config
        self.front = front
        self.owned = owned
        # Created on first use: asyncio primitives must bind the loop that
        # will use them, and entries are registered before the loop runs.
        self.gate: Optional[asyncio.Semaphore] = None
        self.open_lock: Optional[asyncio.Lock] = None
        #: Requests parked behind a saturated gate right now; once this
        #: reaches ``max_inflight`` the server sheds load with R_BUSY.
        self.waiting = 0
        #: Requests currently holding a gate slot (decoding).
        self.active = 0
        self.requests = 0
        self.errors = 0
        self.busy_rejections = 0
        #: Requests dropped because their wire deadline expired before or
        #: while they queued — no decode work was done for these.
        self.deadline_rejections = 0
        #: Exponential moving average of per-request service seconds;
        #: seeds the retry-after hint R_BUSY carries.
        self.ewma_seconds = 0.0
        #: Partition placement (``None`` = unpartitioned: serve everything).
        self.partition: Optional[PartitionState] = None
        #: Documents staged by INGEST during a live rebalance, served from
        #: memory alongside the front until the next INSTALL_MAP commits
        #: them into the store (mirrored to the on-disk sidecar).
        self.overlay: Dict[int, bytes] = {}
        #: Whether the partition manifest/sidecar have been loaded.
        self.partition_loaded = False
        #: Requests refused with R_WRONG_SHARD (stale-map clients).
        self.wrong_shard_rejections = 0
        #: The sidecar postings index, loaded with the front when the
        #: ``<container>.idx`` file exists (``None`` = no search serving).
        self.search_index: Optional["PostingsStore"] = None
        #: Whether the sidecar load was attempted (one attempt per front).
        self.search_loaded = False
        #: SEARCH requests answered from the index.
        self.search_requests = 0

    def owns(self, doc_id: int) -> bool:
        """Whether this entry may serve ``doc_id`` right now.

        Unpartitioned archives own everything.  A partitioned archive owns
        its manifest arc *plus* anything staged in the overlay — the
        "plus" is what lets donor and recipient both answer for a moving
        arc during a live rebalance, so reads never fail mid-handoff.
        """
        if self.partition is None:
            return True
        return doc_id in self.overlay or self.partition.owns(doc_id)

    def shard_map_reply(self) -> Tuple[int, List[str], int]:
        """The (epoch, labels, virtual_nodes) this archive announces.

        Unpartitioned archives answer the static sentinel (epoch 0, no
        labels): clients keep whatever map they were configured with.
        """
        if self.partition is None:
            return 0, [], 1
        manifest = self.partition.manifest
        return manifest.epoch, list(manifest.shards), manifest.virtual_nodes

    @property
    def max_inflight(self) -> int:
        return self.config.serve.max_inflight

    def observe(self, elapsed: float) -> None:
        """Fold one request's service time into the EWMA."""
        if self.ewma_seconds:
            self.ewma_seconds = 0.9 * self.ewma_seconds + 0.1 * elapsed
        else:
            self.ewma_seconds = elapsed

    def retry_after_ms(self) -> int:
        """A retry-after hint (ms) for a client shed with R_BUSY.

        The backlog ahead of a returning client is roughly ``waiting + 1``
        requests draining through ``max_inflight`` lanes at the observed
        EWMA service time; before any request has completed, fall back to
        a small fixed delay.  Capped so a stats glitch never tells clients
        to go away for minutes.
        """
        per_request = self.ewma_seconds or 0.010
        estimate = per_request * (self.waiting + 1) / max(1, self.max_inflight)
        return max(1, min(5000, int(estimate * 1000)))

    def health(self) -> Dict[str, float]:
        """This archive's readiness/load snapshot (the HEALTH payload)."""
        return {
            "open": int(self.front is not None),
            "max_inflight": self.max_inflight,
            "active": self.active,
            "waiting": self.waiting,
            "saturated": int(self.waiting >= self.max_inflight),
            "ewma_ms": round(self.ewma_seconds * 1000, 3),
            "retry_after_ms": self.retry_after_ms(),
            "requests": self.requests,
            "errors": self.errors,
            "busy_rejections": self.busy_rejections,
            "deadline_rejections": self.deadline_rejections,
            "epoch": self.partition.epoch if self.partition is not None else 0,
            "overlay_documents": len(self.overlay),
            "wrong_shard_rejections": self.wrong_shard_rejections,
            "search_index": int(self.search_index is not None),
            "search_requests": self.search_requests,
        }

    def stats_into(self, snapshot: Dict[str, float]) -> None:
        """Per-archive counters (and front stats once opened)."""
        prefix = f"archive_{self.name or 'default'}"
        snapshot[f"{prefix}_requests"] = self.requests
        snapshot[f"{prefix}_errors"] = self.errors
        snapshot[f"{prefix}_busy_rejections"] = self.busy_rejections
        snapshot[f"{prefix}_deadline_rejections"] = self.deadline_rejections
        snapshot[f"{prefix}_active"] = self.active
        snapshot[f"{prefix}_waiting"] = self.waiting
        snapshot[f"{prefix}_ewma_ms"] = round(self.ewma_seconds * 1000, 3)
        snapshot[f"{prefix}_open"] = int(self.front is not None)


class RlzRouter:
    """Dispatch connections to named archives, opening each lazily.

    Parameters
    ----------
    archives:
        ``name -> container path`` of the archives to host.  Paths are not
        touched until a connection asks for the name.
    config:
        The :class:`ArchiveConfig` every archive opens with (cache tier,
        serve gate, ...).  Per-archive configs can be supplied through
        :meth:`add`.
    default:
        Archive name served to clients that do not pick one (v1 clients
        and v2 clients sending an empty name).  Defaults to the first
        registered archive.
    max_workers:
        Decode thread-pool width handed to each opened front.
    """

    def __init__(
        self,
        archives: Optional[Mapping[str, Union[str, Path]]] = None,
        config: Optional[ArchiveConfig] = None,
        default: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self._config = config or ArchiveConfig()
        self._max_workers = max_workers
        self._entries: Dict[str, ArchiveEntry] = {}
        self._default: Optional[str] = None
        self._closed = False
        #: Fronts replaced by an epoch install; kept open until the router
        #: closes so reads that entered them before the swap finish clean.
        self._retired: List[AsyncRlzArchive] = []
        for name, path in (archives or {}).items():
            self.add(name, path)
        if default is not None:
            if default not in self._entries:
                raise ConfigurationError(
                    f"default archive {default!r} is not registered "
                    f"(have: {sorted(self._entries) or '[]'})"
                )
            self._default = default

    @classmethod
    def for_front(
        cls,
        front: AsyncRlzArchive,
        name: str = "",
        config: Optional[ArchiveConfig] = None,
        owned: bool = True,
    ) -> "RlzRouter":
        """A router hosting one pre-opened front (the PR-4 single-archive
        path; ``owned`` says whether closing the router closes the front)."""
        router = cls(config=config)
        entry = ArchiveEntry(
            name=name,
            # Keep the container path even though the front is pre-opened:
            # resolve() still needs it to load the partition manifest and
            # any rebalance sidecar.
            path=Path(front.archive.path),
            config=config or ArchiveConfig(),
            front=front,
            owned=owned,
        )
        router._entries[name] = entry
        router._default = name
        return router

    # ------------------------------------------------------------------
    # Registration / introspection
    # ------------------------------------------------------------------
    def add(
        self,
        name: str,
        path: Union[str, Path],
        config: Optional[ArchiveConfig] = None,
    ) -> None:
        """Register archive ``name`` at ``path`` (not opened yet)."""
        if name in self._entries:
            raise ConfigurationError(f"archive {name!r} is already registered")
        self._entries[name] = ArchiveEntry(
            name=name, path=Path(path), config=config or self._config
        )
        if self._default is None:
            self._default = name

    @property
    def names(self) -> List[str]:
        """Registered archive names, registration order."""
        return list(self._entries)

    @property
    def default_name(self) -> Optional[str]:
        return self._default

    @property
    def closed(self) -> bool:
        return self._closed

    def entry(self, name: str = "") -> ArchiveEntry:
        """The entry for ``name`` ('' = default), without opening it."""
        if not name:
            if self._default is None:
                raise ConfigurationError("router hosts no archives")
            return self._entries[self._default]
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown archive {name!r} (this server hosts: "
                f"{', '.join(self._entries) or 'none'})"
            ) from None

    def default_front(self) -> AsyncRlzArchive:
        """The default archive's front, if already open (sync callers)."""
        entry = self.entry("")
        if entry.front is None:
            raise ProtocolError(
                f"archive {entry.name or 'default'!r} has not been opened yet"
            )
        return entry.front

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def resolve(self, name: str = "") -> ArchiveEntry:
        """The entry for ``name`` with its front opened and gate ready.

        Lazy open runs on the default executor (it reads the container
        header and dictionary from disk), serialized per entry so two
        concurrent first connections open the archive once.
        """
        if self._closed:
            raise ProtocolError("router is closed")
        entry = self.entry(name)
        if entry.gate is None:
            entry.gate = asyncio.Semaphore(entry.max_inflight)
        if entry.open_lock is None:
            entry.open_lock = asyncio.Lock()
        if entry.front is None or not entry.partition_loaded or not entry.search_loaded:
            async with entry.open_lock:
                loop = asyncio.get_running_loop()
                if entry.front is None and not self._closed:
                    path, config, workers = entry.path, entry.config, self._max_workers
                    entry.front = await loop.run_in_executor(
                        None,
                        lambda: AsyncRlzArchive.open(
                            path, config, max_workers=workers
                        ),
                    )
                if not entry.partition_loaded:
                    if entry.path is not None:
                        manifest = await loop.run_in_executor(
                            None, read_manifest, entry.path
                        )
                        if manifest is not None:
                            entry.partition = PartitionState(manifest)
                            # Crash recovery: a rebalance interrupted after
                            # sidecar writes but before the epoch commit
                            # resumes with its staged documents intact.
                            entry.overlay.update(
                                await loop.run_in_executor(
                                    None, read_overlay, entry.path
                                )
                            )
                    entry.partition_loaded = True
                if not entry.search_loaded:
                    if entry.path is not None:
                        sidecar = index_sidecar_path(entry.path)
                        if await loop.run_in_executor(None, sidecar.exists):
                            entry.search_index = await loop.run_in_executor(
                                None, PostingsStore.open, sidecar
                            )
                    entry.search_loaded = True
        if entry.front is None:
            raise ProtocolError("router is closed")
        return entry

    # ------------------------------------------------------------------
    # Partitioned serving: staging + epoch installs
    # ------------------------------------------------------------------
    async def ingest(
        self, entry: ArchiveEntry, items: Sequence[Tuple[int, bytes]]
    ) -> List[int]:
        """Stage rebalance documents on ``entry``; return all staged ids.

        Items land in the in-memory overlay (served immediately — this is
        what makes the moving arc dual-homed during a handoff) and the
        whole overlay is mirrored to the on-disk sidecar before the ack,
        so a crashed recipient resumes from its last acked batch.  An
        empty ``items`` is the resume probe: pure read of the staged set.
        """
        if entry.partition is None:
            raise ProtocolError(
                f"archive {entry.name or 'default'!r} is not partitioned"
            )
        assert entry.open_lock is not None
        async with entry.open_lock:
            if items:
                for doc_id, data in items:
                    entry.overlay[int(doc_id)] = bytes(data)
                snapshot = dict(entry.overlay)
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(
                    None, write_overlay, entry.path, snapshot
                )
            return sorted(entry.overlay)

    async def install_map(
        self,
        entry: ArchiveEntry,
        epoch: int,
        labels: Sequence[str],
        virtual_nodes: int,
    ) -> Tuple[int, List[str], int]:
        """Commit a new shard-map epoch on ``entry``; return the map served.

        Idempotent: an epoch at or below the current one changes nothing
        and answers the current map.  A newer epoch recomputes the owned
        arc over store ∪ overlay, rewrites the container (kept blobs
        verbatim, staged documents encoded in, shed documents dropped) and
        swaps state in an order that never fails a concurrent read:

        1. the new :class:`PartitionState` goes live (requests for shed
           documents start refusing with the *new* epoch, requests for
           kept/staged documents keep succeeding via overlay or old front);
        2. a front over the rewritten container replaces the old front —
           which is *retired*, not closed, so reads that already entered
           it finish against the old (complete) file;
        3. the overlay and its sidecar are cleared (their documents are in
           the store now).
        """
        if entry.partition is None:
            raise ProtocolError(
                f"archive {entry.name or 'default'!r} is not partitioned"
            )
        assert entry.open_lock is not None
        async with entry.open_lock:
            state = entry.partition
            current = state.manifest
            if epoch <= current.epoch:
                return current.epoch, list(current.shards), current.virtual_nodes
            new_manifest = current.with_map(epoch, labels, virtual_nodes)
            new_state = PartitionState(new_manifest)
            front = entry.front
            if front is None:
                raise ProtocolError("archive front is not open")
            stored = set(front.archive.doc_ids())
            owned = {
                doc_id
                for doc_id in stored | set(entry.overlay)
                if new_state.owns(doc_id)
            }
            keep = sorted(owned & stored)
            add_docs = {
                doc_id: entry.overlay[doc_id]
                for doc_id in owned
                if doc_id in entry.overlay
            }
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None,
                lambda: rewrite_partition_store(
                    entry.path, keep, add_docs, new_manifest
                ),
            )
            path, config, workers = entry.path, entry.config, self._max_workers
            new_front = await loop.run_in_executor(
                None,
                lambda: AsyncRlzArchive.open(path, config, max_workers=workers),
            )
            entry.partition = new_state
            old_front, entry.front = entry.front, new_front
            if old_front is not None and entry.owned:
                self._retired.append(old_front)
            entry.overlay.clear()
            await loop.run_in_executor(None, clear_overlay, entry.path)
            if entry.search_index is not None or (
                entry.path is not None and index_sidecar_path(entry.path).exists()
            ):
                # The store's document set just changed: rebuild the
                # postings sidecar over the rewritten store so SEARCH
                # never ranks against a stale arc (and a restarted server
                # never loads one).
                sidecar = index_sidecar_path(entry.path)

                def _reindex() -> PostingsStore:
                    from ..search.serving import write_postings

                    write_postings(new_front.archive.iter_documents(), sidecar)
                    return PostingsStore.open(sidecar)

                entry.search_index = await loop.run_in_executor(None, _reindex)
                entry.search_loaded = True
            return epoch, list(new_manifest.shards), virtual_nodes

    def stats(self) -> Dict[str, float]:
        """Per-archive counters plus the default front's archive stats."""
        snapshot: Dict[str, float] = {"router_archives": len(self._entries)}
        for entry in self._entries.values():
            entry.stats_into(snapshot)
        default = self.entry("") if self._entries else None
        if default is not None and default.front is not None and not default.front.closed:
            snapshot.update(default.front.stats())
        return snapshot

    def health(self) -> Dict[str, Dict[str, float]]:
        """Readiness/load per archive (the HEALTH response payload).

        Pure bookkeeping — never opens a front or touches the gate, so it
        stays answerable even when every archive is saturated.
        """
        return {
            (entry.name or "default"): entry.health()
            for entry in self._entries.values()
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Close every owned, opened front (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for entry in self._entries.values():
            front = entry.front
            if front is not None and entry.owned and not front.closed:
                await front.close()
        for front in self._retired:
            if not front.closed:
                await front.close()
        self._retired.clear()
