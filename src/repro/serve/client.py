"""Clients that make a remote archive look exactly like a local one.

:class:`RlzClient` is the synchronous client: it implements the same
:class:`repro.api.ArchiveView` protocol as :class:`repro.api.RlzArchive`,
so any code written against the facade — examples, benchmarks, ``repro
get`` — runs unchanged whether it holds a local archive or a socket to an
:class:`repro.serve.RlzServer`.  Error types round-trip through the wire
protocol's structured error frames: a remote miss raises the very same
:class:`~repro.errors.StorageError` a local miss does.

Both clients negotiate the protocol version at dial time.  Against a
version-2 server every request carries a request id, which buys:

* **pipelining** — :meth:`RlzClient.pipelined_get` keeps a window of
  requests in flight on *one* connection and correlates the replies as
  they arrive (out of order included), collapsing the per-request
  round-trip latency that makes a sequential request/response loop slow
  on a socket;
* **bulk scans** — :meth:`RlzClient.scan` streams ``R_CHUNK`` batches
  (many documents per frame, batched container decodes server-side)
  instead of one ``get`` per document; ``iter_documents`` rides it
  automatically on v2 connections;
* **multiplexing** — :class:`AsyncRlzClient` shares one connection among
  every concurrent coroutine: a background reader resolves each tagged
  reply to the future that asked for it;
* **backpressure hints** — an ``R_BUSY`` reply (the server's
  ``max_inflight`` gate is saturated) is retried with backoff instead of
  queueing server-side, and surfaces to the cluster layer so it can
  re-route to a replica.

Against a version-3 server both clients also speak the fault-tolerance
extensions: every request frame carries the call's remaining **deadline**
(the server drops work whose deadline expired while queueing and answers
``R_TIMEOUT``, which surfaces here as
:class:`~repro.errors.DeadlineExceededError`), ``R_BUSY`` payloads carry
the server's queue depth and a **retry-after hint** that replaces blind
exponential backoff, and ``health()`` exposes the per-archive load
snapshot.  All retries — dials, dead connections, busy backoff — draw
from a shared token-bucket :class:`~repro.serve.retry.RetryBudget`, so a
browned-out server sees retry traffic capped at the budget's refill rate
instead of multiplied by it.

Against a version-1 server every path falls back to PR 4's strict
request/response behaviour — the negotiation keeps old servers working.

Both clients maintain a small **connection pool**: requests check a
connection out, use it for one framed exchange (or one stream) and return
it; concurrent requests above the pool's high-water mark dial extra
connections that are closed instead of pooled on return.  Dialing (and
re-dialing after a server restart) retries with a delay; because every
request opcode is idempotent, a connection that dies mid-request is
retried on a fresh connection up to ``retries`` times.  Protocol
violations are never retried — the server told us something is
structurally wrong.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import (
    DeadlineExceededError,
    ProtocolError,
    ServerBusyError,
    StoreClosedError,
    WrongShardError,
)
from . import protocol
from .protocol import Opcode
from .retry import Deadline, RetryBudget, full_jitter, hinted_backoff

__all__ = ["AsyncRlzClient", "RlzClient"]

_UNSET = object()


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise on EOF/truncation."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _raise_wrong_shard(body: bytes) -> None:
    """Re-raise an ``R_WRONG_SHARD`` refusal as :class:`WrongShardError`.

    The payload carries the epoch the server is at, so the cluster layer
    can tell a genuinely newer map (refresh and retry) from a stale
    refusal (give up).
    """
    epoch, doc_id = protocol.unpack_wrong_shard(body)
    raise WrongShardError(
        f"document {doc_id} is not owned by this shard (map epoch {epoch})",
        epoch=epoch,
    )


class _SyncConnection:
    """One negotiated socket: transport + version + request-id counter."""

    __slots__ = ("sock", "version", "_next_id")

    def __init__(self, sock: socket.socket, version: int) -> None:
        self.sock = sock
        self.version = version
        self._next_id = 1

    def next_request_id(self) -> int:
        request_id = self._next_id
        self._next_id = (self._next_id + 1) & 0xFFFFFFFF or 1
        return request_id

    def close(self) -> None:
        self.sock.close()


class RlzClient:
    """Synchronous network client for :class:`repro.serve.RlzServer`.

    Parameters
    ----------
    host, port:
        The server address.
    archive:
        Name of the archive to talk to on a multi-archive server (the
        router); the empty default selects the server's default archive.
    timeout:
        Per-socket-operation timeout in seconds.
    retries:
        How many times to retry dialing (and re-running an idempotent
        request on a fresh connection) before giving up.
    retry_delay:
        Sleep between retries, in seconds (doubles each attempt).
    busy_retries:
        How many ``R_BUSY`` backpressure hints one request tolerates
        (each retried with ``retry_delay`` backoff) before giving up.
    pool_size:
        How many idle connections to keep for reuse.  More may be open
        concurrently; the surplus is closed on return.
    protocol_version:
        Highest protocol version to announce (the server negotiates
        down).  Pass ``1`` to force the legacy request/response protocol.
    deadline_ms:
        Default per-request deadline in milliseconds (0 = none).  The
        remaining budget rides on every protocol-v3 request frame and
        bounds the client's own dials, retries and socket waits; per-call
        ``deadline_ms=`` arguments override it.
    retry_budget:
        The token-bucket :class:`~repro.serve.retry.RetryBudget` every
        retry draws from.  Pass a shared instance to cap retry volume
        across many clients (the cluster does); ``None`` creates a
        private default bucket.
    """

    def __init__(
        self,
        host: str,
        port: int,
        archive: str = "",
        timeout: float = 30.0,
        retries: int = 3,
        retry_delay: float = 0.05,
        busy_retries: int = 8,
        pool_size: int = 2,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
        protocol_version: int = protocol.PROTOCOL_VERSION,
        deadline_ms: int = 0,
        retry_budget: Optional[RetryBudget] = None,
    ) -> None:
        if retries < 0:
            raise ProtocolError("retries must be non-negative")
        if busy_retries < 0:
            raise ProtocolError("busy_retries must be non-negative")
        if pool_size < 1:
            raise ProtocolError("pool_size must be at least 1")
        if not protocol.PROTOCOL_V1 <= protocol_version <= protocol.PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol_version must be in "
                f"[{protocol.PROTOCOL_V1}, {protocol.PROTOCOL_VERSION}]"
            )
        self._host = host
        self._port = port
        self._archive = archive
        self._timeout = timeout
        self._retries = retries
        self._retry_delay = retry_delay
        self._busy_retries = busy_retries
        self._pool_size = pool_size
        self._max_frame_bytes = max_frame_bytes
        self._protocol_version = protocol_version
        if deadline_ms < 0:
            raise ProtocolError("deadline_ms must be non-negative")
        self._deadline_ms = deadline_ms
        self._budget = retry_budget if retry_budget is not None else RetryBudget()
        self._pool: List[_SyncConnection] = []
        self._pool_lock = threading.Lock()
        self._closed = False
        self._doc_ids: Optional[List[int]] = None
        self._busy_seen = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _dial_once(self) -> _SyncConnection:
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._send(
                sock,
                protocol.encode_frame(
                    Opcode.HELLO,
                    protocol.pack_hello(self._protocol_version, self._archive),
                ),
            )
            opcode, payload = self._read_frame(sock)
            if opcode == Opcode.R_ERROR:
                protocol.raise_error_frame(payload)
            if opcode != Opcode.R_HELLO:
                raise ProtocolError(
                    f"handshake expected R_HELLO, got {protocol.describe_opcode(opcode)}"
                )
            version = protocol.checked_version(protocol.unpack_hello_reply(payload))
            if version > self._protocol_version:
                raise ProtocolError(
                    f"protocol version mismatch: server selected {version}, "
                    f"client asked for at most {self._protocol_version}"
                )
            return _SyncConnection(sock, version)
        except BaseException:
            sock.close()
            raise

    def _dial(self, deadline: Optional[Deadline] = None) -> _SyncConnection:
        # Full-jittered exponential backoff: after a server restart every
        # waiting client recomputes the same exponential delay, and
        # sleeping uniform(0, delay) spreads the reconnect herd instead of
        # slamming the fresh listener in lockstep.
        delay = self._retry_delay
        for attempt in range(self._retries + 1):
            try:
                return self._dial_once()
            except (ConnectionError, socket.timeout, OSError):
                if attempt == self._retries or not self._budget.spend():
                    raise
                if deadline is not None:
                    deadline.check("dial")
                time.sleep(full_jitter(delay))
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def _deadline_for(self, deadline_ms: Optional[int]) -> Optional[Deadline]:
        """The call's deadline: explicit per-call, else the client default."""
        if deadline_ms is None:
            deadline_ms = self._deadline_ms
        if deadline_ms < 0:
            raise ProtocolError("deadline_ms must be non-negative")
        return Deadline.from_ms(deadline_ms)

    @staticmethod
    def _encode_request(
        conn: _SyncConnection,
        opcode: int,
        request_id: int,
        payload: bytes,
        deadline: Optional[Deadline],
    ) -> bytes:
        """A request frame in the connection's negotiated framing (v3
        frames carry the call's remaining deadline budget)."""
        if conn.version >= protocol.PROTOCOL_V3:
            wire_ms = deadline.wire_ms() if deadline is not None else 0
            return protocol.encode_frame3(opcode, request_id, wire_ms, payload)
        return protocol.encode_frame2(opcode, request_id, payload)

    def _checkout(self, deadline: Optional[Deadline] = None) -> _SyncConnection:
        with self._pool_lock:
            if self._pool:
                return self._pool.pop()
        return self._dial(deadline)

    def _checkin(self, conn: _SyncConnection) -> None:
        with self._pool_lock:
            if not self._closed and len(self._pool) < self._pool_size:
                self._pool.append(conn)
                return
        conn.close()

    @staticmethod
    def _send(sock: socket.socket, frame: bytes) -> None:
        sock.sendall(frame)

    def _read_frame(self, sock: socket.socket) -> Tuple[int, bytes]:
        prefix = _recv_exact(sock, 4)
        length = protocol.frame_length(prefix, self._max_frame_bytes)
        return protocol.split_frame(_recv_exact(sock, length))

    def _read_frame2(self, conn: "_SyncConnection") -> Tuple[int, int, bytes]:
        """One reply frame in the connection's negotiated framing (v3
        replies carry — and are verified against — a trailing CRC32)."""
        prefix = _recv_exact(conn.sock, 4)
        length = protocol.frame_length(prefix, self._max_frame_bytes)
        body = _recv_exact(conn.sock, length)
        if conn.version >= protocol.PROTOCOL_V3:
            return protocol.split_reply3(body)
        return protocol.split_frame2(body)

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreClosedError(
                f"client for {self._host}:{self._port} is closed"
            )

    # ------------------------------------------------------------------
    # Request/response core
    # ------------------------------------------------------------------
    def _exchange(
        self,
        conn: _SyncConnection,
        opcode: int,
        payload: bytes,
        expect: int,
        deadline: Optional[Deadline] = None,
    ) -> bytes:
        """One exchange on an already-negotiated connection.

        Raises the transported error for ``R_ERROR`` replies; retries
        ``R_BUSY`` with backoff (honouring the server's retry-after hint
        and spending the retry budget).  Connection-level failures
        propagate for the caller's retry loop.
        """
        if conn.version < 2:
            self._send(conn.sock, protocol.encode_frame(opcode, payload))
            reply, body = self._read_frame(conn.sock)
            return self._check_reply(reply, body, expect)
        delay = self._retry_delay
        for busy in range(self._busy_retries + 1):
            if deadline is not None:
                deadline.check()
                # Never wait on the socket past the call's deadline.
                conn.sock.settimeout(min(self._timeout, deadline.remaining()))
            request_id = conn.next_request_id()
            try:
                self._send(
                    conn.sock,
                    self._encode_request(conn, opcode, request_id, payload, deadline),
                )
                reply, reply_id, body = self._read_frame2(conn)
            except socket.timeout:
                if deadline is not None and deadline.expired:
                    raise DeadlineExceededError(
                        "request deadline exceeded waiting for the server"
                    ) from None
                raise
            finally:
                if deadline is not None:
                    conn.sock.settimeout(self._timeout)
            if reply == Opcode.R_ERROR and reply_id == 0:
                # Request id 0 is reserved: a connection-level error (the
                # server could not attribute it to any single request).
                protocol.raise_error_frame(body)
            if reply_id != request_id:
                raise ProtocolError(
                    f"response correlation broke: sent request {request_id}, "
                    f"got a reply for {reply_id}"
                )
            if reply == Opcode.R_TIMEOUT:
                raise DeadlineExceededError(
                    body.decode("utf-8", "replace") or "request deadline exceeded"
                )
            if reply == Opcode.R_BUSY:
                self._busy_seen += 1
                retry_after_ms, _depth = protocol.unpack_busy(body)
                if busy == self._busy_retries:
                    raise ServerBusyError(
                        f"server still busy after {self._busy_retries} retries"
                    )
                if not self._budget.spend():
                    raise ServerBusyError(
                        "server busy and the client retry budget is exhausted"
                    )
                time.sleep(hinted_backoff(retry_after_ms / 1000.0, delay))
                delay *= 2
                continue
            return self._check_reply(reply, body, expect)
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _check_reply(reply: int, body: bytes, expect: int) -> bytes:
        if reply == Opcode.R_ERROR:
            protocol.raise_error_frame(body)
        if reply == Opcode.R_WRONG_SHARD:
            _raise_wrong_shard(body)
        if reply != expect:
            raise ProtocolError(
                f"expected {protocol.describe_opcode(expect)}, "
                f"got {protocol.describe_opcode(reply)}"
            )
        return body

    def _request(
        self,
        opcode: int,
        payload: bytes,
        expect: int,
        deadline_ms: Optional[int] = None,
    ) -> bytes:
        """One request/response exchange, retried on connection failure.

        Every request opcode is idempotent (pure reads), so a connection
        that dies before the response completes is safely retried on a
        fresh one.  Structured error frames re-raise the server-side
        error; they are never retried.  The whole loop — dial, retries,
        backoff sleeps — runs inside the call's deadline.
        """
        self._ensure_open()
        deadline = self._deadline_for(deadline_ms)
        delay = self._retry_delay
        for attempt in range(self._retries + 1):
            conn = self._checkout(deadline)
            try:
                body = self._exchange(conn, opcode, payload, expect, deadline)
            except DeadlineExceededError:
                # A reply (the server's R_TIMEOUT or our own local check)
                # may still be in flight on the wire: never pool it.
                conn.close()
                raise
            except (ConnectionError, socket.timeout, OSError):
                conn.close()
                if attempt == self._retries or not self._budget.spend():
                    raise
                if deadline is not None:
                    deadline.check()
                time.sleep(full_jitter(delay))
                delay *= 2
                continue
            except ProtocolError:
                # The server closes the connection after a protocol
                # violation (and a violated expectation means the framing
                # is off); pooling it would poison a later request.
                conn.close()
                raise
            except BaseException:
                # Archive errors leave the framing intact: reusable.
                self._checkin(conn)
                raise
            self._checkin(conn)
            return body
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Pipelining
    # ------------------------------------------------------------------
    def pipelined_get(
        self,
        doc_ids: Sequence[int],
        window: int = 32,
        deadline_ms: Optional[int] = None,
    ) -> List[bytes]:
        """Batch retrieval over *one* connection with requests in flight.

        Keeps up to ``window`` GET requests outstanding and correlates
        replies by request id as they arrive — out of order included — so
        the cost per document approaches server work instead of one full
        round-trip each, which is what makes a single socket competitive
        with local access.  Falls back to a sequential loop when the
        server only speaks protocol version 1.  Returns documents in
        request order (duplicates preserved); a connection that dies
        mid-pipeline is retried on a fresh one for the still-unanswered
        documents only.
        """
        if window < 1:
            raise ProtocolError("window must be at least 1")
        self._ensure_open()
        deadline = self._deadline_for(deadline_ms)
        doc_ids = list(doc_ids)
        results: List = [_UNSET] * len(doc_ids)
        if not doc_ids:
            return []
        delay = self._retry_delay
        for attempt in range(self._retries + 1):
            conn = self._checkout(deadline)
            if conn.version < 2:
                return self._sequential_get(conn, doc_ids, results)
            try:
                self._pipeline_on(conn, doc_ids, results, window, deadline)
            except DeadlineExceededError:
                conn.close()
                raise
            except (ConnectionError, socket.timeout, OSError):
                conn.close()
                if attempt == self._retries or not self._budget.spend():
                    raise
                if deadline is not None:
                    deadline.check()
                time.sleep(full_jitter(delay))
                delay *= 2
                continue
            except ProtocolError:
                conn.close()
                raise
            except BaseException:
                # An archive error mid-pipeline may leave replies for the
                # other in-flight requests unread: the connection cannot
                # be pooled.
                conn.close()
                raise
            self._checkin(conn)
            return results
        raise AssertionError("unreachable")  # pragma: no cover

    def _sequential_get(
        self, conn: _SyncConnection, doc_ids: Sequence[int], results: List
    ) -> List[bytes]:
        """The v1 fallback: request/response per still-missing document."""
        try:
            self._checkin(conn)  # _request manages its own connections
        except BaseException:
            conn.close()
            raise
        for index, doc_id in enumerate(doc_ids):
            if results[index] is _UNSET:
                results[index] = self.get(doc_id)
        return results

    def _pipeline_on(
        self,
        conn: _SyncConnection,
        doc_ids: Sequence[int],
        results: List,
        window: int,
        deadline: Optional[Deadline] = None,
    ) -> None:
        """Run the pipelined window on one v2 connection, filling ``results``.

        On connection failure, everything already in ``results`` stays —
        the retry resends only the unanswered documents.
        """
        to_send = deque(
            index for index, slot in enumerate(results) if slot is _UNSET
        )
        pending: Dict[int, int] = {}
        busy_budget = self._busy_retries * max(1, len(to_send))
        while to_send or pending:
            if deadline is not None:
                deadline.check()
                conn.sock.settimeout(min(self._timeout, deadline.remaining()))
            while to_send and len(pending) < window:
                index = to_send.popleft()
                request_id = conn.next_request_id()
                pending[request_id] = index
                self._send(
                    conn.sock,
                    self._encode_request(
                        conn,
                        Opcode.GET,
                        request_id,
                        protocol.pack_doc_id(doc_ids[index]),
                        deadline,
                    ),
                )
            try:
                reply, reply_id, body = self._read_frame2(conn)
            except socket.timeout:
                if deadline is not None and deadline.expired:
                    raise DeadlineExceededError(
                        "pipelined get deadline exceeded"
                    ) from None
                raise
            finally:
                if deadline is not None:
                    conn.sock.settimeout(self._timeout)
            if reply == Opcode.R_ERROR and reply_id == 0:
                protocol.raise_error_frame(body)  # connection-level error
            index = pending.pop(reply_id, None)
            if index is None:
                raise ProtocolError(
                    f"response correlation broke: got a reply for unknown "
                    f"request {reply_id}"
                )
            if reply == Opcode.R_DOC:
                results[index] = body
            elif reply == Opcode.R_TIMEOUT:
                raise DeadlineExceededError(
                    body.decode("utf-8", "replace") or "request deadline exceeded"
                )
            elif reply == Opcode.R_BUSY:
                self._busy_seen += 1
                retry_after_ms, _depth = protocol.unpack_busy(body)
                busy_budget -= 1
                if busy_budget < 0:
                    raise ServerBusyError(
                        "server still busy after the pipelined retry budget"
                    )
                if not self._budget.spend():
                    raise ServerBusyError(
                        "server busy and the client retry budget is exhausted"
                    )
                time.sleep(
                    hinted_backoff(retry_after_ms / 1000.0, self._retry_delay)
                )
                to_send.append(index)
            elif reply == Opcode.R_WRONG_SHARD:
                _raise_wrong_shard(body)
            elif reply == Opcode.R_ERROR:
                protocol.raise_error_frame(body)
            else:
                raise ProtocolError(
                    f"expected r_doc, got {protocol.describe_opcode(reply)}"
                )

    # ------------------------------------------------------------------
    # ArchiveView
    # ------------------------------------------------------------------
    def get(self, doc_id: int, deadline_ms: Optional[int] = None) -> bytes:
        """One decoded document from the remote archive."""
        return self._request(
            Opcode.GET, protocol.pack_doc_id(doc_id), Opcode.R_DOC, deadline_ms
        )

    def get_many(
        self, doc_ids: Sequence[int], deadline_ms: Optional[int] = None
    ) -> List[bytes]:
        """Batch retrieval; the reply preserves request order."""
        doc_ids = list(doc_ids)
        body = self._request(
            Opcode.GET_MANY, protocol.pack_doc_ids(doc_ids), Opcode.R_DOCS, deadline_ms
        )
        documents = protocol.unpack_documents(body)
        if len(documents) != len(doc_ids):
            raise ProtocolError(
                f"get_many asked for {len(doc_ids)} documents, got {len(documents)}"
            )
        return documents

    def scan(
        self,
        doc_ids: Optional[Sequence[int]] = None,
        chunk_docs: int = 0,
    ) -> Iterator[Tuple[int, bytes]]:
        """Bulk scan: stream ``(doc_id, content)`` in chunked frames.

        ``doc_ids=None`` scans the whole archive in store order; an
        explicit list scans that subset in the given order.  The server
        decodes ``chunk_docs`` documents per batched container read
        (0 = server default) and ships each batch as one frame, so a full
        export costs a handful of round trips instead of one per document.
        Falls back to per-document ``get``\\ s against v1 servers.
        """
        self._ensure_open()
        requested = list(doc_ids) if doc_ids is not None else None
        conn = self._checkout()
        if conn.version < 2:
            self._checkin(conn)
            ids = requested if requested is not None else self.doc_ids()
            for doc_id in ids:
                yield doc_id, self.get(doc_id)
            return
        yield from self._scan_stream(conn, requested, chunk_docs)

    def _scan_stream(
        self,
        conn: _SyncConnection,
        doc_ids: Optional[List[int]],
        chunk_docs: int,
    ) -> Iterator[Tuple[int, bytes]]:
        clean = False
        started = False
        try:
            delay = self._retry_delay
            for busy in range(self._busy_retries + 1):
                request_id = conn.next_request_id()
                self._send(
                    conn.sock,
                    self._encode_request(
                        conn,
                        Opcode.SCAN,
                        request_id,
                        protocol.pack_scan(chunk_docs, doc_ids),
                        None,
                    ),
                )
                reply, reply_id, body = self._read_frame2(conn)
                if reply == Opcode.R_ERROR and reply_id == 0:
                    protocol.raise_error_frame(body)  # connection-level error
                if reply_id != request_id:
                    raise ProtocolError(
                        f"response correlation broke: sent request {request_id}, "
                        f"got a reply for {reply_id}"
                    )
                if reply == Opcode.R_BUSY and not started:
                    self._busy_seen += 1
                    retry_after_ms, _depth = protocol.unpack_busy(body)
                    if busy == self._busy_retries:
                        raise ServerBusyError(
                            f"server still busy after {self._busy_retries} retries"
                        )
                    if not self._budget.spend():
                        raise ServerBusyError(
                            "server busy and the client retry budget is exhausted"
                        )
                    time.sleep(hinted_backoff(retry_after_ms / 1000.0, delay))
                    delay *= 2
                    continue
                while True:
                    if reply == Opcode.R_END:
                        clean = True
                        return
                    if reply == Opcode.R_WRONG_SHARD:
                        # A rebalance shed part of the scan mid-stream.
                        # R_WRONG_SHARD is the stream's terminal frame, so
                        # the connection's framing is intact and poolable.
                        clean = True
                        _raise_wrong_shard(body)
                    if reply == Opcode.R_ERROR:
                        protocol.raise_error_frame(body)
                    if reply != Opcode.R_CHUNK:
                        raise ProtocolError(
                            f"scan expected R_CHUNK/R_END, got "
                            f"{protocol.describe_opcode(reply)}"
                        )
                    started = True
                    for item in protocol.unpack_chunk(body):
                        yield item
                    reply, reply_id, body = self._read_frame2(conn)
                    if reply == Opcode.R_ERROR and reply_id == 0:
                        protocol.raise_error_frame(body)  # connection-level
                    if reply_id != request_id:
                        raise ProtocolError(
                            f"response correlation broke mid-scan: expected "
                            f"{request_id}, got {reply_id}"
                        )
            raise AssertionError("unreachable")  # pragma: no cover
        finally:
            # An abandoned or failed stream leaves frames in flight: the
            # connection cannot be pooled.
            if clean:
                self._checkin(conn)
            else:
                conn.close()

    def iter_documents(self) -> Iterator[Tuple[int, bytes]]:
        """Stream every document; one connection is held for the scan.

        Rides the chunked SCAN opcode on protocol-v2 connections and the
        legacy one-frame-per-document ITER stream on v1.
        """
        self._ensure_open()
        conn = self._checkout()
        if conn.version >= 2:
            yield from self._scan_stream(conn, None, 0)
            return
        clean = False
        try:
            self._send(conn.sock, protocol.encode_frame(Opcode.ITER))
            while True:
                opcode, payload = self._read_frame(conn.sock)
                if opcode == Opcode.R_END:
                    clean = True
                    return
                if opcode == Opcode.R_ERROR:
                    try:
                        protocol.raise_error_frame(payload)
                    except ProtocolError:
                        raise  # server closed the connection: do not pool
                    except BaseException:
                        clean = True  # framing intact: connection reusable
                        raise
                if opcode != Opcode.R_ITEM:
                    raise ProtocolError(
                        f"stream expected R_ITEM/R_END, got "
                        f"{protocol.describe_opcode(opcode)}"
                    )
                yield protocol.unpack_item(payload)
        finally:
            if clean:
                self._checkin(conn)
            else:
                conn.close()

    def doc_ids(self) -> List[int]:
        """All stored document IDs (cached: archives are immutable)."""
        if self._doc_ids is None:
            body = self._request(Opcode.DOC_IDS, b"", Opcode.R_DOC_IDS)
            self._doc_ids = protocol.unpack_doc_ids(body)
        return list(self._doc_ids)

    def __len__(self) -> int:
        return len(self.doc_ids())

    def stats(self) -> Dict[str, float]:
        """The server's stats snapshot (archive + cache + server counters)."""
        return protocol.unpack_stats(
            self._request(Opcode.STATS, b"", Opcode.R_STATS)
        )

    def health(self) -> Dict[str, Dict[str, float]]:
        """Per-archive readiness/load from the server's HEALTH opcode.

        Served without queueing at the inflight gate, so it answers even
        while the server is saturated (requires a protocol-v3 server).
        """
        return protocol.unpack_health(
            self._request(Opcode.HEALTH, b"", Opcode.R_HEALTH)
        )

    def ping(self) -> float:
        """Round-trip time of an empty request, in seconds."""
        start = time.perf_counter()
        self._request(Opcode.PING, b"", Opcode.R_PONG)
        return time.perf_counter() - start

    # ------------------------------------------------------------------
    # Search (protocol v5)
    # ------------------------------------------------------------------
    def search(
        self,
        query: str,
        top_k: int = 10,
        snippet_chars: int = 0,
        global_stats: Optional[Tuple[int, int, Dict[str, int]]] = None,
        deadline_ms: Optional[int] = None,
    ) -> List[protocol.SearchHit]:
        """BM25 top-k over the server's persistent posting lists.

        ``snippet_chars > 0`` asks the server to attach a query-biased
        snippet to every hit, materialized through the store's windowed
        partial-decode path (never a whole-document decode).  The cluster
        layer passes ``global_stats`` — ``(num_documents,
        total_doc_length, {term: df})`` summed across every shard — so
        each shard ranks with exact global idf; direct callers leave it
        ``None`` and get shard-local statistics.
        """
        body = self._request(
            Opcode.SEARCH,
            protocol.pack_search(
                query,
                top_k=top_k,
                snippet_chars=snippet_chars,
                global_stats=global_stats,
            ),
            Opcode.R_SEARCH,
            deadline_ms,
        )
        return protocol.unpack_search_results(body)

    def search_stats(
        self, query: str, deadline_ms: Optional[int] = None
    ) -> Tuple[int, int, Dict[str, int]]:
        """This shard's corpus statistics for ``query``'s terms.

        Returns ``(num_documents, total_doc_length, {term: df})`` — the
        stats leg of the two-phase sharded search: summing these across
        shards yields the exact global idf inputs.
        """
        body = self._request(
            Opcode.SEARCH,
            protocol.pack_search(query, stats_only=True),
            Opcode.R_SEARCH,
            deadline_ms,
        )
        return protocol.unpack_search_stats(body)

    # ------------------------------------------------------------------
    # Partitioned fleets (protocol v4)
    # ------------------------------------------------------------------
    def shard_map(self) -> Tuple[int, List[str], int]:
        """The server's current shard map: ``(epoch, labels, virtual_nodes)``.

        Served without queueing at the inflight gate (like ``health()``),
        so map refreshes work even against a saturated server.  An
        unpartitioned archive answers epoch 0 with an empty label list.
        """
        body = self._request(Opcode.SHARD_MAP, b"", Opcode.R_SHARD_MAP)
        return protocol.unpack_shard_map(body)

    def ingest(
        self,
        items: Sequence[Tuple[int, bytes]],
        deadline_ms: Optional[int] = None,
    ) -> List[int]:
        """Stage documents on a shard ahead of an epoch install.

        The rebalance driver streams batches of ``(doc_id, content)``
        through this; the reply lists *every* staged doc id, so an empty
        ``items`` doubles as the resume probe after a crashed handoff.
        Staging is idempotent — re-sending an acked document overwrites
        it with identical bytes.
        """
        body = self._request(
            Opcode.INGEST,
            protocol.pack_chunk(list(items)),
            Opcode.R_DOC_IDS,
            deadline_ms,
        )
        return protocol.unpack_doc_ids(body)

    def install_shard_map(
        self, epoch: int, labels: Sequence[str], virtual_nodes: int
    ) -> Tuple[int, List[str], int]:
        """Commit a new shard map on the server (rebalance cutover).

        The server rewrites its container to exactly the doc ids the new
        map assigns it (staged documents in, shed documents out) and then
        starts answering for the new epoch.  Installing an epoch at or
        below the server's current one is an idempotent no-op; the reply
        is always the map the server now serves.
        """
        body = self._request(
            Opcode.INSTALL_MAP,
            protocol.pack_shard_map(epoch, list(labels), virtual_nodes),
            Opcode.R_SHARD_MAP,
        )
        return protocol.unpack_shard_map(body)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self._port

    @property
    def archive_name(self) -> str:
        """The archive this client asks the server's router for."""
        return self._archive

    @property
    def busy_hints(self) -> int:
        """How many R_BUSY backpressure hints this client has absorbed."""
        return self._busy_seen

    @property
    def retry_budget(self) -> RetryBudget:
        """The token bucket this client's retries draw from."""
        return self._budget

    def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()

    def __enter__(self) -> "RlzClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _AsyncConnection:
    """One negotiated asyncio connection, optionally multiplexed.

    On protocol v2 a background reader resolves every tagged reply to the
    future registered for its request id, so any number of coroutines
    share this one transport.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        version: int,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.version = version
        self.futures: Dict[int, "asyncio.Future[Tuple[int, bytes]]"] = {}
        self.reader_task: Optional[asyncio.Task] = None
        self.dead = False
        self._next_id = 1

    def next_request_id(self) -> int:
        request_id = self._next_id
        self._next_id = (self._next_id + 1) & 0xFFFFFFFF or 1
        return request_id

    def kill(self, exc: Optional[BaseException] = None) -> None:
        """Mark dead, fail every waiter, close the transport."""
        if self.dead:
            return
        self.dead = True
        error = exc or ConnectionError("connection lost")
        for future in self.futures.values():
            if not future.done():
                future.set_exception(error)
        self.futures.clear()
        if self.reader_task is not None and not self.reader_task.done():
            current = None
            try:
                current = asyncio.current_task()
            except RuntimeError:  # pragma: no cover - no running loop
                pass
            if self.reader_task is not current:
                self.reader_task.cancel()
        self.writer.close()


class AsyncRlzClient:
    """Asyncio client: the coroutine mirror of :class:`RlzClient`.

    Matches :class:`repro.api.AsyncRlzArchive`'s surface (``await get`` /
    ``get_many`` / ``gather``, plus ``stats``/``ping``/``doc_ids``), so an
    async serving stack can swap a local front for a remote one.

    Against a protocol-v2 server every concurrent coroutine multiplexes
    over **one** connection: requests are tagged with ids, a background
    reader dispatches the (possibly out-of-order) replies, and ``R_BUSY``
    hints are retried with backoff.  Against a v1 server the PR-4
    connection pool and strict request/response exchange are used
    unchanged.
    """

    def __init__(
        self,
        host: str,
        port: int,
        archive: str = "",
        timeout: float = 30.0,
        retries: int = 3,
        retry_delay: float = 0.05,
        busy_retries: int = 8,
        pool_size: int = 2,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
        protocol_version: int = protocol.PROTOCOL_VERSION,
        deadline_ms: int = 0,
        retry_budget: Optional[RetryBudget] = None,
    ) -> None:
        if retries < 0:
            raise ProtocolError("retries must be non-negative")
        if busy_retries < 0:
            raise ProtocolError("busy_retries must be non-negative")
        if pool_size < 1:
            raise ProtocolError("pool_size must be at least 1")
        if not protocol.PROTOCOL_V1 <= protocol_version <= protocol.PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol_version must be in "
                f"[{protocol.PROTOCOL_V1}, {protocol.PROTOCOL_VERSION}]"
            )
        if deadline_ms < 0:
            raise ProtocolError("deadline_ms must be non-negative")
        self._host = host
        self._port = port
        self._archive = archive
        self._timeout = timeout
        self._retries = retries
        self._retry_delay = retry_delay
        self._busy_retries = busy_retries
        self._pool_size = pool_size
        self._max_frame_bytes = max_frame_bytes
        self._protocol_version = protocol_version
        self._deadline_ms = deadline_ms
        self._budget = retry_budget if retry_budget is not None else RetryBudget()
        self._pool: List[_AsyncConnection] = []
        self._mux: Optional[_AsyncConnection] = None
        # Created lazily inside a coroutine: asyncio primitives must bind
        # the running loop (pre-3.10 they grab get_event_loop() eagerly,
        # which breaks clients constructed outside asyncio.run()).
        self._pool_guard: Optional[asyncio.Lock] = None
        self._closed = False
        self._doc_ids: Optional[List[int]] = None
        self._busy_seen = 0
        #: Learned at the first successful dial; routes later requests to
        #: the mux (v2) or the pool (v1) without re-negotiating.
        self._server_version: Optional[int] = None

    @property
    def _pool_lock(self) -> asyncio.Lock:
        if self._pool_guard is None:
            self._pool_guard = asyncio.Lock()
        return self._pool_guard

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    async def _dial_once(self) -> _AsyncConnection:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self._host, self._port), self._timeout
        )
        try:
            writer.write(
                protocol.encode_frame(
                    Opcode.HELLO,
                    protocol.pack_hello(self._protocol_version, self._archive),
                )
            )
            await writer.drain()
            opcode, payload = await self._read_frame(reader)
            if opcode == Opcode.R_ERROR:
                protocol.raise_error_frame(payload)
            if opcode != Opcode.R_HELLO:
                raise ProtocolError(
                    f"handshake expected R_HELLO, got {protocol.describe_opcode(opcode)}"
                )
            version = protocol.checked_version(protocol.unpack_hello_reply(payload))
            if version > self._protocol_version:
                raise ProtocolError(
                    f"protocol version mismatch: server selected {version}, "
                    f"client asked for at most {self._protocol_version}"
                )
            return _AsyncConnection(reader, writer, version)
        except BaseException:
            writer.close()
            raise

    async def _mux_connection(self) -> _AsyncConnection:
        """The shared multiplexed connection (dial or revive as needed)."""
        async with self._pool_lock:
            if self._closed:
                raise StoreClosedError(
                    f"client for {self._host}:{self._port} is closed"
                )
            if self._mux is not None and not self._mux.dead:
                return self._mux
            conn = await self._dial_once()
            self._server_version = conn.version
            if conn.version >= 2:
                conn.reader_task = asyncio.ensure_future(self._mux_reader(conn))
                self._mux = conn
            return conn

    async def _mux_reader(self, conn: _AsyncConnection) -> None:
        """Dispatch tagged replies to their futures until the peer goes."""
        try:
            while True:
                prefix = await conn.reader.readexactly(4)
                length = protocol.frame_length(prefix, self._max_frame_bytes)
                body = await conn.reader.readexactly(length)
                if conn.version >= protocol.PROTOCOL_V3:
                    opcode, request_id, payload = protocol.split_reply3(body)
                else:
                    opcode, request_id, payload = protocol.split_frame2(body)
                if opcode == Opcode.R_ERROR and request_id == 0:
                    # Connection-level error: fail every in-flight request
                    # with the server's actual complaint.
                    try:
                        protocol.raise_error_frame(payload)
                    except BaseException as exc:
                        conn.kill(exc)
                    return
                future = conn.futures.pop(request_id, None)
                if future is not None and not future.done():
                    future.set_result((opcode, payload))
        except asyncio.CancelledError:
            raise
        except ProtocolError as exc:
            conn.kill(exc)
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
            conn.kill(ConnectionError(f"connection lost: {exc}"))
        except Exception as exc:  # pragma: no cover - defensive
            conn.kill(ConnectionError(f"reader failed: {exc}"))

    async def _checkout(self) -> _AsyncConnection:
        async with self._pool_lock:
            if self._pool:
                return self._pool.pop()
        return await self._dial()

    async def _dial(self) -> _AsyncConnection:
        # Full-jittered exponential backoff — same herd-spreading argument
        # as the synchronous client's _dial.
        delay = self._retry_delay
        for attempt in range(self._retries + 1):
            try:
                return await self._dial_once()
            except (ConnectionError, asyncio.TimeoutError, OSError):
                if attempt == self._retries or not self._budget.spend():
                    raise
                await asyncio.sleep(full_jitter(delay))
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    async def _checkin(self, conn: _AsyncConnection) -> None:
        async with self._pool_lock:
            if not self._closed and len(self._pool) < self._pool_size:
                self._pool.append(conn)
                return
        conn.writer.close()

    async def _read_frame(self, reader: asyncio.StreamReader) -> Tuple[int, bytes]:
        try:
            prefix = await asyncio.wait_for(reader.readexactly(4), self._timeout)
            length = protocol.frame_length(prefix, self._max_frame_bytes)
            body = await asyncio.wait_for(reader.readexactly(length), self._timeout)
        except asyncio.IncompleteReadError as exc:
            raise ConnectionError(f"connection closed mid-frame: {exc}") from exc
        return protocol.split_frame(body)

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreClosedError(
                f"client for {self._host}:{self._port} is closed"
            )

    # ------------------------------------------------------------------
    # Request/response core
    # ------------------------------------------------------------------
    def _deadline_for(self, deadline_ms: Optional[int]) -> Optional[Deadline]:
        """The call's deadline: explicit per-call, else the client default."""
        if deadline_ms is None:
            deadline_ms = self._deadline_ms
        if deadline_ms < 0:
            raise ProtocolError("deadline_ms must be non-negative")
        return Deadline.from_ms(deadline_ms)

    async def _request(
        self,
        opcode: int,
        payload: bytes,
        expect: int,
        deadline_ms: Optional[int] = None,
    ) -> bytes:
        self._ensure_open()
        deadline = self._deadline_for(deadline_ms)
        delay = self._retry_delay
        for attempt in range(self._retries + 1):
            try:
                if self._server_version == protocol.PROTOCOL_V1:
                    conn = await self._checkout()
                    if conn.version >= 2:
                        # The server was replaced by a v2 one mid-life:
                        # this conn has no mux reader, so re-route through
                        # the mux path on the next attempt.
                        conn.writer.close()
                        self._server_version = None
                        continue
                else:
                    conn = await self._mux_connection()
            except (ConnectionError, asyncio.TimeoutError, OSError):
                if attempt == self._retries or not self._budget.spend():
                    raise
                if deadline is not None:
                    deadline.check()
                await asyncio.sleep(full_jitter(delay))
                delay *= 2
                continue
            if conn.version >= 2:
                try:
                    reply, body = await self._mux_exchange(
                        conn, opcode, payload, deadline
                    )
                except (ConnectionError, asyncio.TimeoutError, OSError):
                    conn.kill()
                    if attempt == self._retries or not self._budget.spend():
                        raise
                    if deadline is not None:
                        deadline.check()
                    await asyncio.sleep(full_jitter(delay))
                    delay *= 2
                    continue
                return self._check_reply(reply, body, expect)
            # v1 server: the mux dial handed back a plain connection; run
            # the legacy exclusive request/response exchange on it.
            try:
                body = await self._v1_exchange(conn, opcode, payload, expect)
            except (ConnectionError, asyncio.TimeoutError, OSError):
                conn.writer.close()
                if attempt == self._retries or not self._budget.spend():
                    raise
                if deadline is not None:
                    deadline.check()
                await asyncio.sleep(full_jitter(delay))
                delay *= 2
                continue
            return body
        raise AssertionError("unreachable")  # pragma: no cover

    async def _mux_exchange(
        self,
        conn: _AsyncConnection,
        opcode: int,
        payload: bytes,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[int, bytes]:
        """One tagged exchange over the shared connection, R_BUSY retried."""
        loop = asyncio.get_running_loop()
        delay = self._retry_delay
        for busy in range(self._busy_retries + 1):
            if deadline is not None:
                deadline.check()
            wait = self._timeout
            if deadline is not None:
                wait = min(wait, deadline.remaining())
            request_id = conn.next_request_id()
            future: "asyncio.Future[Tuple[int, bytes]]" = loop.create_future()
            conn.futures[request_id] = future
            try:
                if conn.version >= protocol.PROTOCOL_V3:
                    wire_ms = deadline.wire_ms() if deadline is not None else 0
                    frame = protocol.encode_frame3(opcode, request_id, wire_ms, payload)
                else:
                    frame = protocol.encode_frame2(opcode, request_id, payload)
                conn.writer.write(frame)
                await conn.writer.drain()
                reply, body = await asyncio.wait_for(future, wait)
            except asyncio.TimeoutError:
                if deadline is not None and deadline.expired:
                    raise DeadlineExceededError(
                        "request deadline exceeded waiting for the server"
                    ) from None
                raise
            finally:
                conn.futures.pop(request_id, None)
            if reply == Opcode.R_TIMEOUT:
                raise DeadlineExceededError(
                    body.decode("utf-8", "replace") or "request deadline exceeded"
                )
            if reply == Opcode.R_BUSY:
                self._busy_seen += 1
                retry_after_ms, _depth = protocol.unpack_busy(body)
                if busy == self._busy_retries:
                    raise ServerBusyError(
                        f"server still busy after {self._busy_retries} retries"
                    )
                if not self._budget.spend():
                    raise ServerBusyError(
                        "server busy and the client retry budget is exhausted"
                    )
                await asyncio.sleep(hinted_backoff(retry_after_ms / 1000.0, delay))
                delay *= 2
                continue
            return reply, body
        raise AssertionError("unreachable")  # pragma: no cover

    async def _v1_exchange(
        self, conn: _AsyncConnection, opcode: int, payload: bytes, expect: int
    ) -> bytes:
        conn.writer.write(protocol.encode_frame(opcode, payload))
        await conn.writer.drain()
        reply, body = await self._read_frame(conn.reader)
        if reply == Opcode.R_ERROR:
            try:
                protocol.raise_error_frame(body)
            except ProtocolError:
                conn.writer.close()  # server closed its side: do not pool
                raise
            except BaseException:
                await self._checkin(conn)
                raise
        if reply != expect:
            conn.writer.close()
            raise ProtocolError(
                f"expected {protocol.describe_opcode(expect)}, "
                f"got {protocol.describe_opcode(reply)}"
            )
        await self._checkin(conn)
        return body

    @staticmethod
    def _check_reply(reply: int, body: bytes, expect: int) -> bytes:
        if reply == Opcode.R_ERROR:
            protocol.raise_error_frame(body)
        if reply == Opcode.R_WRONG_SHARD:
            _raise_wrong_shard(body)
        if reply != expect:
            raise ProtocolError(
                f"expected {protocol.describe_opcode(expect)}, "
                f"got {protocol.describe_opcode(reply)}"
            )
        return body

    # ------------------------------------------------------------------
    # AsyncArchiveView
    # ------------------------------------------------------------------
    async def get(self, doc_id: int, deadline_ms: Optional[int] = None) -> bytes:
        return await self._request(
            Opcode.GET, protocol.pack_doc_id(doc_id), Opcode.R_DOC, deadline_ms
        )

    async def get_many(
        self, doc_ids: Sequence[int], deadline_ms: Optional[int] = None
    ) -> List[bytes]:
        doc_ids = list(doc_ids)
        body = await self._request(
            Opcode.GET_MANY, protocol.pack_doc_ids(doc_ids), Opcode.R_DOCS, deadline_ms
        )
        documents = protocol.unpack_documents(body)
        if len(documents) != len(doc_ids):
            raise ProtocolError(
                f"get_many asked for {len(doc_ids)} documents, got {len(documents)}"
            )
        return documents

    async def gather(self, doc_ids: Sequence[int]) -> List[bytes]:
        """Fan per-document requests out concurrently.

        On protocol v2 every request multiplexes over the one shared
        connection (tagged ids, out-of-order replies); on v1 concurrency
        comes from the connection pool plus extra dials.
        """
        return list(await asyncio.gather(*(self.get(doc_id) for doc_id in doc_ids)))

    async def doc_ids(self) -> List[int]:
        if self._doc_ids is None:
            body = await self._request(Opcode.DOC_IDS, b"", Opcode.R_DOC_IDS)
            self._doc_ids = protocol.unpack_doc_ids(body)
        return list(self._doc_ids)

    async def stats(self) -> Dict[str, float]:
        return protocol.unpack_stats(
            await self._request(Opcode.STATS, b"", Opcode.R_STATS)
        )

    async def health(self) -> Dict[str, Dict[str, float]]:
        """Per-archive readiness/load from the server's HEALTH opcode."""
        return protocol.unpack_health(
            await self._request(Opcode.HEALTH, b"", Opcode.R_HEALTH)
        )

    async def ping(self) -> float:
        start = time.perf_counter()
        await self._request(Opcode.PING, b"", Opcode.R_PONG)
        return time.perf_counter() - start

    # ------------------------------------------------------------------
    # Search (protocol v5)
    # ------------------------------------------------------------------
    async def search(
        self,
        query: str,
        top_k: int = 10,
        snippet_chars: int = 0,
        global_stats: Optional[Tuple[int, int, Dict[str, int]]] = None,
        deadline_ms: Optional[int] = None,
    ) -> List[protocol.SearchHit]:
        """BM25 top-k over the server's index; see :meth:`RlzClient.search`."""
        body = await self._request(
            Opcode.SEARCH,
            protocol.pack_search(
                query,
                top_k=top_k,
                snippet_chars=snippet_chars,
                global_stats=global_stats,
            ),
            Opcode.R_SEARCH,
            deadline_ms,
        )
        return protocol.unpack_search_results(body)

    async def search_stats(
        self, query: str, deadline_ms: Optional[int] = None
    ) -> Tuple[int, int, Dict[str, int]]:
        """This shard's per-term corpus stats; see :meth:`RlzClient.search_stats`."""
        body = await self._request(
            Opcode.SEARCH,
            protocol.pack_search(query, stats_only=True),
            Opcode.R_SEARCH,
            deadline_ms,
        )
        return protocol.unpack_search_stats(body)

    # ------------------------------------------------------------------
    # Partitioned fleets (protocol v4)
    # ------------------------------------------------------------------
    async def shard_map(self) -> Tuple[int, List[str], int]:
        """The server's shard map ``(epoch, labels, virtual_nodes)``."""
        body = await self._request(Opcode.SHARD_MAP, b"", Opcode.R_SHARD_MAP)
        return protocol.unpack_shard_map(body)

    async def ingest(
        self,
        items: Sequence[Tuple[int, bytes]],
        deadline_ms: Optional[int] = None,
    ) -> List[int]:
        """Stage documents for a rebalance; see :meth:`RlzClient.ingest`."""
        body = await self._request(
            Opcode.INGEST,
            protocol.pack_chunk(list(items)),
            Opcode.R_DOC_IDS,
            deadline_ms,
        )
        return protocol.unpack_doc_ids(body)

    async def install_shard_map(
        self, epoch: int, labels: Sequence[str], virtual_nodes: int
    ) -> Tuple[int, List[str], int]:
        """Commit a new shard map; see :meth:`RlzClient.install_shard_map`."""
        body = await self._request(
            Opcode.INSTALL_MAP,
            protocol.pack_shard_map(epoch, list(labels), virtual_nodes),
            Opcode.R_SHARD_MAP,
        )
        return protocol.unpack_shard_map(body)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self._port

    @property
    def archive_name(self) -> str:
        """The archive this client asks the server's router for."""
        return self._archive

    @property
    def busy_hints(self) -> int:
        """How many R_BUSY backpressure hints this client has absorbed."""
        return self._busy_seen

    @property
    def retry_budget(self) -> RetryBudget:
        """The token bucket this client's retries draw from."""
        return self._budget

    async def close(self) -> None:
        async with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, []
            mux, self._mux = self._mux, None
        if mux is not None:
            mux.kill(StoreClosedError("client closed"))
            try:
                await mux.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        for conn in pool:
            conn.writer.close()
            try:
                await conn.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "AsyncRlzClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
