"""Clients that make a remote archive look exactly like a local one.

:class:`RlzClient` is the synchronous client: it implements the same
:class:`repro.api.ArchiveView` protocol as :class:`repro.api.RlzArchive`,
so any code written against the facade — examples, benchmarks, ``repro
get`` — runs unchanged whether it holds a local archive or a socket to an
:class:`repro.serve.RlzServer`.  Error types round-trip through the wire
protocol's structured error frames: a remote miss raises the very same
:class:`~repro.errors.StorageError` a local miss does.

:class:`AsyncRlzClient` is the coroutine mirror (the
:class:`repro.api.AsyncArchiveView` shape, matching
:class:`repro.api.AsyncRlzArchive`).

Both clients maintain a small **connection pool**: requests check a
connection out, use it for one framed request/response exchange (or one
``iter_documents`` stream) and return it; concurrent requests above the
pool's high-water mark dial extra connections that are closed instead of
pooled on return.  Dialing (and re-dialing after a server restart) retries
with a delay; because every request opcode is idempotent, a connection
that dies mid-request is retried on a fresh connection up to ``retries``
times.  Protocol violations are never retried — the server told us
something is structurally wrong.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ProtocolError, StoreClosedError
from . import protocol
from .protocol import Opcode

__all__ = ["AsyncRlzClient", "RlzClient"]


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise on EOF/truncation."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class RlzClient:
    """Synchronous network client for :class:`repro.serve.RlzServer`.

    Parameters
    ----------
    host, port:
        The server address.
    timeout:
        Per-socket-operation timeout in seconds.
    retries:
        How many times to retry dialing (and re-running an idempotent
        request on a fresh connection) before giving up.
    retry_delay:
        Sleep between retries, in seconds (doubles each attempt).
    pool_size:
        How many idle connections to keep for reuse.  More may be open
        concurrently; the surplus is closed on return.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retries: int = 3,
        retry_delay: float = 0.05,
        pool_size: int = 2,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        if retries < 0:
            raise ProtocolError("retries must be non-negative")
        if pool_size < 1:
            raise ProtocolError("pool_size must be at least 1")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retries = retries
        self._retry_delay = retry_delay
        self._pool_size = pool_size
        self._max_frame_bytes = max_frame_bytes
        self._pool: List[socket.socket] = []
        self._pool_lock = threading.Lock()
        self._closed = False
        self._doc_ids: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _dial_once(self) -> socket.socket:
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._send(sock, protocol.encode_frame(Opcode.HELLO, protocol.pack_hello()))
            opcode, payload = self._read_frame(sock)
            if opcode == Opcode.R_ERROR:
                protocol.raise_error_frame(payload)
            if opcode != Opcode.R_HELLO:
                raise ProtocolError(
                    f"handshake expected R_HELLO, got {protocol.describe_opcode(opcode)}"
                )
            protocol.checked_version(protocol.unpack_hello_reply(payload))
            return sock
        except BaseException:
            sock.close()
            raise

    def _dial(self) -> socket.socket:
        delay = self._retry_delay
        for attempt in range(self._retries + 1):
            try:
                return self._dial_once()
            except (ConnectionError, socket.timeout, OSError):
                if attempt == self._retries:
                    raise
                time.sleep(delay)
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def _checkout(self) -> socket.socket:
        with self._pool_lock:
            if self._pool:
                return self._pool.pop()
        return self._dial()

    def _checkin(self, sock: socket.socket) -> None:
        with self._pool_lock:
            if not self._closed and len(self._pool) < self._pool_size:
                self._pool.append(sock)
                return
        sock.close()

    @staticmethod
    def _send(sock: socket.socket, frame: bytes) -> None:
        sock.sendall(frame)

    def _read_frame(self, sock: socket.socket) -> Tuple[int, bytes]:
        prefix = _recv_exact(sock, 4)
        length = protocol.frame_length(prefix, self._max_frame_bytes)
        return protocol.split_frame(_recv_exact(sock, length))

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreClosedError(
                f"client for {self._host}:{self._port} is closed"
            )

    def _request(self, opcode: int, payload: bytes, expect: int) -> bytes:
        """One request/response exchange, retried on connection failure.

        Every request opcode is idempotent (pure reads), so a connection
        that dies before the response completes is safely retried on a
        fresh one.  Structured error frames re-raise the server-side
        error; they are never retried.
        """
        self._ensure_open()
        delay = self._retry_delay
        for attempt in range(self._retries + 1):
            sock = self._checkout()
            try:
                self._send(sock, protocol.encode_frame(opcode, payload))
                reply, body = self._read_frame(sock)
            except (ConnectionError, socket.timeout, OSError):
                sock.close()
                if attempt == self._retries:
                    raise
                time.sleep(delay)
                delay *= 2
                continue
            except BaseException:
                sock.close()
                raise
            if reply == Opcode.R_ERROR:
                try:
                    protocol.raise_error_frame(body)
                except ProtocolError:
                    # The server closes the connection after a protocol
                    # violation; pooling it would poison a later request.
                    sock.close()
                    raise
                except BaseException:
                    self._checkin(sock)  # archive errors leave framing intact
                    raise
            if reply != expect:
                sock.close()
                raise ProtocolError(
                    f"expected {protocol.describe_opcode(expect)}, "
                    f"got {protocol.describe_opcode(reply)}"
                )
            self._checkin(sock)
            return body
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # ArchiveView
    # ------------------------------------------------------------------
    def get(self, doc_id: int) -> bytes:
        """One decoded document from the remote archive."""
        return self._request(Opcode.GET, protocol.pack_doc_id(doc_id), Opcode.R_DOC)

    def get_many(self, doc_ids: Sequence[int]) -> List[bytes]:
        """Batch retrieval; the reply preserves request order."""
        doc_ids = list(doc_ids)
        body = self._request(
            Opcode.GET_MANY, protocol.pack_doc_ids(doc_ids), Opcode.R_DOCS
        )
        documents = protocol.unpack_documents(body)
        if len(documents) != len(doc_ids):
            raise ProtocolError(
                f"get_many asked for {len(doc_ids)} documents, got {len(documents)}"
            )
        return documents

    def iter_documents(self) -> Iterator[Tuple[int, bytes]]:
        """Stream every document; one connection is held for the scan."""
        self._ensure_open()
        sock = self._checkout()
        clean = False
        try:
            self._send(sock, protocol.encode_frame(Opcode.ITER))
            while True:
                opcode, payload = self._read_frame(sock)
                if opcode == Opcode.R_END:
                    clean = True
                    return
                if opcode == Opcode.R_ERROR:
                    try:
                        protocol.raise_error_frame(payload)
                    except ProtocolError:
                        raise  # server closed the connection: do not pool
                    except BaseException:
                        clean = True  # framing intact: connection reusable
                        raise
                if opcode != Opcode.R_ITEM:
                    raise ProtocolError(
                        f"stream expected R_ITEM/R_END, got "
                        f"{protocol.describe_opcode(opcode)}"
                    )
                yield protocol.unpack_item(payload)
        finally:
            # An abandoned or failed stream leaves frames in flight: the
            # connection cannot be pooled.
            if clean:
                self._checkin(sock)
            else:
                sock.close()

    def doc_ids(self) -> List[int]:
        """All stored document IDs (cached: archives are immutable)."""
        if self._doc_ids is None:
            body = self._request(Opcode.DOC_IDS, b"", Opcode.R_DOC_IDS)
            self._doc_ids = protocol.unpack_doc_ids(body)
        return list(self._doc_ids)

    def __len__(self) -> int:
        return len(self.doc_ids())

    def stats(self) -> Dict[str, float]:
        """The server's stats snapshot (archive + cache + server counters)."""
        return protocol.unpack_stats(
            self._request(Opcode.STATS, b"", Opcode.R_STATS)
        )

    def ping(self) -> float:
        """Round-trip time of an empty request, in seconds."""
        start = time.perf_counter()
        self._request(Opcode.PING, b"", Opcode.R_PONG)
        return time.perf_counter() - start

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self._port

    def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for sock in pool:
            sock.close()

    def __enter__(self) -> "RlzClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncRlzClient:
    """Asyncio client: the coroutine mirror of :class:`RlzClient`.

    Matches :class:`repro.api.AsyncRlzArchive`'s surface (``await get`` /
    ``get_many`` / ``gather``, plus ``stats``/``ping``/``doc_ids``), so an
    async serving stack can swap a local front for a remote one.  The
    connection pool and retry rules are the same as the sync client's.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retries: int = 3,
        retry_delay: float = 0.05,
        pool_size: int = 2,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        if retries < 0:
            raise ProtocolError("retries must be non-negative")
        if pool_size < 1:
            raise ProtocolError("pool_size must be at least 1")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retries = retries
        self._retry_delay = retry_delay
        self._pool_size = pool_size
        self._max_frame_bytes = max_frame_bytes
        self._pool: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        # Created lazily inside a coroutine: asyncio primitives must bind
        # the running loop (pre-3.10 they grab get_event_loop() eagerly,
        # which breaks clients constructed outside asyncio.run()).
        self._pool_guard: Optional[asyncio.Lock] = None
        self._closed = False
        self._doc_ids: Optional[List[int]] = None

    @property
    def _pool_lock(self) -> asyncio.Lock:
        if self._pool_guard is None:
            self._pool_guard = asyncio.Lock()
        return self._pool_guard

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    async def _dial_once(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self._host, self._port), self._timeout
        )
        try:
            writer.write(protocol.encode_frame(Opcode.HELLO, protocol.pack_hello()))
            await writer.drain()
            opcode, payload = await self._read_frame(reader)
            if opcode == Opcode.R_ERROR:
                protocol.raise_error_frame(payload)
            if opcode != Opcode.R_HELLO:
                raise ProtocolError(
                    f"handshake expected R_HELLO, got {protocol.describe_opcode(opcode)}"
                )
            protocol.checked_version(protocol.unpack_hello_reply(payload))
            return reader, writer
        except BaseException:
            writer.close()
            raise

    async def _dial(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        delay = self._retry_delay
        for attempt in range(self._retries + 1):
            try:
                return await self._dial_once()
            except (ConnectionError, asyncio.TimeoutError, OSError):
                if attempt == self._retries:
                    raise
                await asyncio.sleep(delay)
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    async def _checkout(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        async with self._pool_lock:
            if self._pool:
                return self._pool.pop()
        return await self._dial()

    async def _checkin(
        self, conn: Tuple[asyncio.StreamReader, asyncio.StreamWriter]
    ) -> None:
        async with self._pool_lock:
            if not self._closed and len(self._pool) < self._pool_size:
                self._pool.append(conn)
                return
        conn[1].close()

    async def _read_frame(self, reader: asyncio.StreamReader) -> Tuple[int, bytes]:
        try:
            prefix = await asyncio.wait_for(reader.readexactly(4), self._timeout)
            length = protocol.frame_length(prefix, self._max_frame_bytes)
            body = await asyncio.wait_for(reader.readexactly(length), self._timeout)
        except asyncio.IncompleteReadError as exc:
            raise ConnectionError(f"connection closed mid-frame: {exc}") from exc
        return protocol.split_frame(body)

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreClosedError(
                f"client for {self._host}:{self._port} is closed"
            )

    async def _request(self, opcode: int, payload: bytes, expect: int) -> bytes:
        self._ensure_open()
        delay = self._retry_delay
        for attempt in range(self._retries + 1):
            reader, writer = await self._checkout()
            try:
                writer.write(protocol.encode_frame(opcode, payload))
                await writer.drain()
                reply, body = await self._read_frame(reader)
            except (ConnectionError, asyncio.TimeoutError, OSError):
                writer.close()
                if attempt == self._retries:
                    raise
                await asyncio.sleep(delay)
                delay *= 2
                continue
            except BaseException:
                writer.close()
                raise
            if reply == Opcode.R_ERROR:
                try:
                    protocol.raise_error_frame(body)
                except ProtocolError:
                    writer.close()  # server closed its side: do not pool
                    raise
                except BaseException:
                    await self._checkin((reader, writer))
                    raise
            if reply != expect:
                writer.close()
                raise ProtocolError(
                    f"expected {protocol.describe_opcode(expect)}, "
                    f"got {protocol.describe_opcode(reply)}"
                )
            await self._checkin((reader, writer))
            return body
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # AsyncArchiveView
    # ------------------------------------------------------------------
    async def get(self, doc_id: int) -> bytes:
        return await self._request(
            Opcode.GET, protocol.pack_doc_id(doc_id), Opcode.R_DOC
        )

    async def get_many(self, doc_ids: Sequence[int]) -> List[bytes]:
        doc_ids = list(doc_ids)
        body = await self._request(
            Opcode.GET_MANY, protocol.pack_doc_ids(doc_ids), Opcode.R_DOCS
        )
        documents = protocol.unpack_documents(body)
        if len(documents) != len(doc_ids):
            raise ProtocolError(
                f"get_many asked for {len(doc_ids)} documents, got {len(documents)}"
            )
        return documents

    async def gather(self, doc_ids: Sequence[int]) -> List[bytes]:
        """Fan per-document requests out concurrently (pool + extra dials)."""
        return list(await asyncio.gather(*(self.get(doc_id) for doc_id in doc_ids)))

    async def doc_ids(self) -> List[int]:
        if self._doc_ids is None:
            body = await self._request(Opcode.DOC_IDS, b"", Opcode.R_DOC_IDS)
            self._doc_ids = protocol.unpack_doc_ids(body)
        return list(self._doc_ids)

    async def stats(self) -> Dict[str, float]:
        return protocol.unpack_stats(
            await self._request(Opcode.STATS, b"", Opcode.R_STATS)
        )

    async def ping(self) -> float:
        start = time.perf_counter()
        await self._request(Opcode.PING, b"", Opcode.R_PONG)
        return time.perf_counter() - start

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self._port

    async def close(self) -> None:
        async with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for _, writer in pool:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "AsyncRlzClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
