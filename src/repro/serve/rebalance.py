"""Live rebalancing: stream a joining shard's arc over, then bump the epoch.

``repro rebalance`` (and :func:`rebalance` behind it) adds a new shard to
a running partitioned fleet with **zero failed reads**:

1. Any fleet member is asked for the current map (``SHARD_MAP``: epoch
   *E*, labels, virtual nodes) and the global doc order (``DOC_IDS``).
2. The new map — the old labels plus the recipient — is hashed locally;
   the documents whose primary arc moves to the recipient are grouped by
   their current owner (every existing shard can donate, not just one).
3. The recipient is probed with an empty ``INGEST``: the reply lists
   every doc id already staged in its rebalance sidecar, so a driver
   restarted after a crash (its own or a donor's) resumes from the last
   acked document instead of re-streaming the arc.
4. Each donor's moving documents are streamed out over the existing
   chunked ``SCAN`` opcode and staged on the recipient in bounded
   ``INGEST`` batches (``batch_docs`` documents or ~8 MiB, whichever
   comes first), each batch deadline-bounded and acked before the next.
5. The new map (epoch *E+1*) is installed on the **recipient first** —
   from that moment it owns and serves the moving arc from its staged
   copy — and then on every donor, each of which rewrites its container
   to shed the moved documents and starts refusing them with
   ``R_WRONG_SHARD``.  Between those installs both sides answer for the
   moving arc (the bytes are identical — documents are immutable), so a
   read can never land nowhere.

Clients cut over without a restart: the first ``R_WRONG_SHARD`` from a
donor carries the new epoch, the client refreshes its map from any
member, learns the recipient's ``ringid@host:port`` label, and retries
against the new owner (see :class:`~repro.serve.cluster.ClusterClient`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ProtocolError
from .client import RlzClient
from .cluster import ShardMap

__all__ = ["RebalanceReport", "rebalance"]

#: Soft cap on the bytes staged per INGEST batch.
_BATCH_BYTES = 8 << 20


@dataclass
class RebalanceReport:
    """What one :func:`rebalance` run did."""

    epoch: int
    shards: Tuple[str, ...]
    virtual_nodes: int
    moved: int
    resumed: int
    donors: Dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        donors = ", ".join(
            f"{label}: {count}" for label, count in sorted(self.donors.items())
        )
        return (
            f"epoch {self.epoch}: moved {self.moved} documents "
            f"({self.resumed} already staged) from [{donors}] "
            f"across {len(self.shards)} shards"
        )


def _parse_endpoint(label: str) -> Tuple[str, str, int]:
    """``ringid@host:port`` → ``(ring_id, host, port)``."""
    ring_id = ShardMap.ring_id(label)
    transport = ShardMap.transport(label)
    host, _, port_text = transport.rpartition(":")
    if not host or not port_text:
        raise ProtocolError(
            f"endpoint {label!r} must look like ringid@host:port"
        )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ProtocolError(f"endpoint {label!r} has a bad port") from exc
    return ring_id, host, port


def rebalance(
    endpoints: Sequence[str],
    to: str,
    archive: str = "",
    batch_docs: int = 32,
    deadline_ms: int = 0,
    timeout: float = 30.0,
) -> RebalanceReport:
    """Move the joining shard ``to``'s arc onto it and bump the map epoch.

    ``endpoints`` are the current fleet members as ``ringid@host:port``
    serving labels (the ring ids must match the fleet's manifests); ``to``
    is the recipient in the same form, already serving an empty *joining*
    container (:func:`~repro.serve.partition.write_spare_shard`).  The
    call is resumable: crash it anywhere and run it again — documents the
    recipient already acked are skipped, and an epoch that was already
    installed is an idempotent no-op server-side.
    """
    if not endpoints:
        raise ProtocolError("rebalance needs at least one existing endpoint")
    if batch_docs < 1:
        raise ProtocolError("batch_docs must be at least 1")
    transports: Dict[str, Tuple[str, int]] = {}
    for label in endpoints:
        ring_id, host, port = _parse_endpoint(label)
        transports[ring_id] = (host, port)
    to_ring, to_host, to_port = _parse_endpoint(to)
    if to_ring in transports:
        raise ProtocolError(f"recipient ring id {to_ring!r} is already in the fleet")

    clients: Dict[str, RlzClient] = {}

    def client_for(ring_id: str, host: str, port: int) -> RlzClient:
        if ring_id not in clients:
            clients[ring_id] = RlzClient(
                host, port, archive=archive, timeout=timeout
            )
        return clients[ring_id]

    try:
        first_ring = next(iter(transports))
        seed = client_for(first_ring, *transports[first_ring])
        epoch, labels, virtual_nodes = seed.shard_map()
        if not labels:
            raise ProtocolError(
                "the fleet is not partitioned (SHARD_MAP answered an empty map)"
            )
        old_ids = [ShardMap.ring_id(label) for label in labels]
        unknown = sorted(set(old_ids) - set(transports))
        if unknown:
            raise ProtocolError(
                f"no endpoint given for shards {unknown} in the current map"
            )
        # Serving labels for the *new* map: manifest order with transports
        # grafted on, recipient appended.  Installing qualified labels is
        # what lets clients learn the recipient's address from the map.
        qualified = [
            f"{ring_id}@{transports[ring_id][0]}:{transports[ring_id][1]}"
            for ring_id in old_ids
        ]
        new_labels = qualified + [f"{to_ring}@{to_host}:{to_port}"]
        new_epoch = epoch + 1

        order = seed.doc_ids()
        old_ring = ShardMap(old_ids, virtual_nodes=virtual_nodes, epoch=epoch)
        new_ring = ShardMap(
            [ShardMap.ring_id(label) for label in new_labels],
            virtual_nodes=virtual_nodes,
            epoch=new_epoch,
        )
        moving_by_donor: Dict[str, List[int]] = {}
        for doc_id in order:
            if ShardMap.ring_id(new_ring.primary(doc_id)) != to_ring:
                continue
            donor = ShardMap.ring_id(old_ring.primary(doc_id))
            moving_by_donor.setdefault(donor, []).append(doc_id)
        moving_total = sum(len(ids) for ids in moving_by_donor.values())

        recipient = client_for(to_ring, to_host, to_port)
        acked = set(recipient.ingest([], deadline_ms=deadline_ms or None))
        resumed = sum(
            1
            for ids in moving_by_donor.values()
            for doc_id in ids
            if doc_id in acked
        )

        donors: Dict[str, int] = {}
        for donor, ids in sorted(moving_by_donor.items()):
            pending = [doc_id for doc_id in ids if doc_id not in acked]
            donors[donor] = len(pending)
            if not pending:
                continue
            source = client_for(donor, *transports[donor])
            batch: List[Tuple[int, bytes]] = []
            batch_bytes = 0
            for doc_id, content in source.scan(pending, chunk_docs=batch_docs):
                batch.append((doc_id, content))
                batch_bytes += len(content)
                if len(batch) >= batch_docs or batch_bytes >= _BATCH_BYTES:
                    acked.update(
                        recipient.ingest(batch, deadline_ms=deadline_ms or None)
                    )
                    batch, batch_bytes = [], 0
            if batch:
                acked.update(
                    recipient.ingest(batch, deadline_ms=deadline_ms or None)
                )

        still_missing = sorted(
            doc_id
            for ids in moving_by_donor.values()
            for doc_id in ids
            if doc_id not in acked
        )
        if still_missing:
            raise ProtocolError(
                f"recipient never acked documents {still_missing[:5]}"
                f"{'...' if len(still_missing) > 5 else ''}"
            )

        # Commit order: recipient first (it starts owning and serving the
        # arc from its staged copy), then each donor (which sheds it).
        recipient.install_shard_map(new_epoch, new_labels, virtual_nodes)
        for ring_id in old_ids:
            client_for(ring_id, *transports[ring_id]).install_shard_map(
                new_epoch, new_labels, virtual_nodes
            )
        return RebalanceReport(
            epoch=new_epoch,
            shards=tuple(new_labels),
            virtual_nodes=virtual_nodes,
            moved=moving_total,
            resumed=resumed,
            donors=donors,
        )
    finally:
        for client in clients.values():
            client.close()
