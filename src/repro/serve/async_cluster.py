"""Asyncio cluster client: consistent-hash fan-out over multiplexed sockets.

:class:`AsyncClusterClient` is the coroutine mirror of
:class:`~repro.serve.cluster.ClusterClient`: the same ring-id placement
(:class:`~repro.serve.cluster.ShardMap`), the same epoch bootstrap /
``R_WRONG_SHARD`` refresh machinery for partitioned fleets, and the same
byte-identical :class:`~repro.api.ArchiveView` semantics — but every
endpoint is an :class:`~repro.serve.client.AsyncRlzClient`, so all the
concurrency rides each shard's *one* multiplexed connection instead of a
thread per request.  ``get_many`` fans its per-shard batches out with
``asyncio.gather``; ``gather`` multiplexes per-document requests.

Failover is ring-order: a connection-level error moves the request to the
next endpoint on the document's arc.  Archive errors (a missing document)
are answers and propagate unchanged.  Wrong-shard refusals refresh the
map from the fleet and retry against the new owner, bounded by the shared
:class:`~repro.serve.retry.RetryBudget` exactly like the sync client.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import (
    ConfigurationError,
    ProtocolError,
    StoreClosedError,
    WrongShardError,
)
from .client import AsyncRlzClient
from .cluster import ShardMap, _FAILOVER_ERRORS
from .protocol import PROTOCOL_V4, SearchHit
from .retry import RetryBudget

__all__ = ["AsyncClusterClient"]


class AsyncClusterClient:
    """One async :class:`~repro.api.ArchiveView` over N server endpoints.

    Accepts the same endpoint labels as the sync cluster client:
    ``host:port`` for replica fleets (every endpoint serves everything)
    or ``ringid@host:port`` for partitioned fleets (the ring id is what
    placement hashes; the transport can move without remapping).
    """

    def __init__(
        self,
        endpoints: Sequence[Union[str, Tuple[str, int]]],
        archive: str = "",
        virtual_nodes: int = 64,
        deadline_ms: int = 0,
        retry_budget: Optional[RetryBudget] = None,
        **client_options,
    ) -> None:
        labels = [self._normalize(endpoint) for endpoint in endpoints]
        self._shard_map = ShardMap(labels, virtual_nodes=virtual_nodes)
        self._archive = archive
        self._budget = retry_budget if retry_budget is not None else RetryBudget()
        client_options.setdefault("deadline_ms", deadline_ms)
        client_options.setdefault("retry_budget", self._budget)
        self._client_options = client_options
        self._clients: Dict[str, AsyncRlzClient] = {}
        for label in labels:
            self._add_endpoint(label)
        self._closed = False
        self._doc_ids: Optional[List[int]] = None
        self._failovers = 0
        self._epoch_refreshes = 0
        self._wrong_shard_retries = 0
        self._bootstrapped = False
        self._stats_cache: "OrderedDict[str, Tuple[int, int, Dict[str, int]]]" = (
            OrderedDict()
        )
        self._stats_cache_hits = 0
        self._stats_cache_misses = 0

    @staticmethod
    def _normalize(endpoint: Union[str, Tuple[str, int]]) -> str:
        if isinstance(endpoint, tuple):
            host, port = endpoint
            return f"{host}:{int(port)}"
        endpoint = str(endpoint).strip()
        host, _, port_text = ShardMap.transport(endpoint).rpartition(":")
        if not host or not port_text.isdigit():
            raise ConfigurationError(
                f"endpoint must be host:port (optionally shard@host:port), "
                f"got {endpoint!r}"
            )
        return endpoint

    def _add_endpoint(self, label: str) -> None:
        if label in self._clients:
            return
        host, _, port_text = ShardMap.transport(label).rpartition(":")
        self._clients[label] = AsyncRlzClient(
            host, int(port_text), archive=self._archive, **self._client_options
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shard_map(self) -> ShardMap:
        return self._shard_map

    @property
    def endpoints(self) -> List[str]:
        return self._shard_map.endpoints

    @property
    def archive_name(self) -> str:
        return self._archive

    @property
    def epoch(self) -> int:
        """The epoch of the shard map currently routing requests."""
        return self._shard_map.epoch

    @property
    def epoch_refreshes(self) -> int:
        """How many times a newer shard map has been adopted."""
        return self._epoch_refreshes

    @property
    def failovers(self) -> int:
        """How many times a request was re-routed off its primary."""
        return self._failovers

    @property
    def retry_budget(self) -> RetryBudget:
        """The token bucket shared by every shard client's retries."""
        return self._budget

    # ------------------------------------------------------------------
    # Shard-map epochs (partitioned fleets)
    # ------------------------------------------------------------------
    def _resolve_wire_labels(self, labels: Sequence[str]) -> Optional[List[str]]:
        """Graft known transports onto ring-id-only wire labels.

        Mirrors :meth:`ClusterClient._resolve_wire_labels`: a ring id with
        no known transport makes the whole map unusable (``None``).
        """
        known = {
            ShardMap.ring_id(label): ShardMap.transport(label)
            for label in self._clients
        }
        resolved: List[str] = []
        for label in labels:
            if "@" in label or ":" in label:
                resolved.append(label)
                continue
            transport = known.get(ShardMap.ring_id(label))
            if transport is None:
                return None
            resolved.append(f"{label}@{transport}")
        return resolved

    def _adopt(self, epoch: int, labels: Sequence[str], virtual_nodes: int) -> bool:
        """Install a newer shard map (no-op unless ``epoch`` advances)."""
        if not labels or epoch <= self._shard_map.epoch:
            return False
        resolved = self._resolve_wire_labels(labels)
        if resolved is None:
            return False
        for label in resolved:
            self._add_endpoint(label)
        self._shard_map = ShardMap(resolved, virtual_nodes=virtual_nodes, epoch=epoch)
        self._epoch_refreshes += 1
        # A new epoch moves documents between shards; cached global corpus
        # statistics summed under the old placement are stale.
        self._stats_cache.clear()
        return True

    async def refresh_shard_map(self, prefer: Optional[str] = None) -> bool:
        """Pull the shard map from the fleet; adopt it if its epoch is newer."""
        self._ensure_open()
        ordering = [prefer] if prefer in self._clients else []
        ordering += [label for label in self.endpoints if label not in ordering]
        ordering += [label for label in self._clients if label not in ordering]
        for label in ordering:
            try:
                epoch, labels, virtual_nodes = await self._clients[label].shard_map()
            except _FAILOVER_ERRORS + (ProtocolError, asyncio.TimeoutError):
                continue
            if self._adopt(epoch, labels, virtual_nodes):
                return True
        return False

    async def _maybe_bootstrap(self) -> None:
        """One-time lazy shard-map bootstrap from any reachable endpoint."""
        if self._bootstrapped:
            return
        self._bootstrapped = True
        version = self._client_options.get("protocol_version", PROTOCOL_V4)
        if version < PROTOCOL_V4:
            return
        try:
            await self.refresh_shard_map()
        except StoreClosedError:
            raise
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreClosedError("async cluster client is closed")

    async def _shard_call(self, doc_id: int, call):
        """``await call(client)`` on the document's arc with ring failover."""
        candidates = self._shard_map.route(doc_id)
        last_error: Optional[BaseException] = None
        for position, label in enumerate(candidates):
            try:
                result = await call(self._clients[label])
            except _FAILOVER_ERRORS + (asyncio.TimeoutError,) as exc:
                last_error = exc
                if position + 1 < len(candidates):
                    self._failovers += 1
                continue
            return result
        assert last_error is not None
        raise last_error

    async def _retry_wrong_shard(self, call):
        """Run ``call``; on a wrong-shard refusal refresh the map and retry.

        Bounded exactly like the sync client: each retry must either
        follow an adopted newer epoch or spend a budget token.
        """
        attempts = 0
        while True:
            try:
                return await call()
            except WrongShardError:
                attempts += 1
                refreshed = await self.refresh_shard_map()
                if attempts > max(2, len(self.endpoints)) or not self._budget.spend():
                    raise
                if not refreshed and attempts > 1:
                    raise
                self._wrong_shard_retries += 1

    # ------------------------------------------------------------------
    # AsyncArchiveView
    # ------------------------------------------------------------------
    async def get(self, doc_id: int, deadline_ms: Optional[int] = None) -> bytes:
        """One decoded document from the shard that owns it."""
        self._ensure_open()
        await self._maybe_bootstrap()
        return await self._retry_wrong_shard(
            lambda: self._shard_call(
                doc_id, lambda client: client.get(doc_id, deadline_ms=deadline_ms)
            )
        )

    async def get_many(
        self, doc_ids: Sequence[int], deadline_ms: Optional[int] = None
    ) -> List[bytes]:
        """Batch retrieval fanned out per shard, request order preserved."""
        self._ensure_open()
        await self._maybe_bootstrap()
        doc_ids = list(doc_ids)
        if not doc_ids:
            return []
        results: List[Optional[bytes]] = [None] * len(doc_ids)

        async def fetch_all() -> List[bytes]:
            pending = [
                index for index, slot in enumerate(results) if slot is None
            ]
            by_shard: Dict[str, List[int]] = {}
            for index in pending:
                label = self._shard_map.primary(doc_ids[index])
                by_shard.setdefault(label, []).append(index)

            async def fetch(label: str, indexes: List[int]) -> None:
                ids = [doc_ids[index] for index in indexes]
                documents = await self._shard_call(
                    ids[0],
                    lambda client: client.get_many(ids, deadline_ms=deadline_ms),
                )
                for index, document in zip(indexes, documents):
                    results[index] = document

            await asyncio.gather(
                *(fetch(label, indexes) for label, indexes in by_shard.items())
            )
            return [document for document in results if document is not None]

        await self._retry_wrong_shard(fetch_all)
        assert all(document is not None for document in results)
        return list(results)  # type: ignore[arg-type]

    async def gather(self, doc_ids: Sequence[int]) -> List[bytes]:
        """Fan per-document requests out concurrently across the fleet."""
        return list(
            await asyncio.gather(*(self.get(doc_id) for doc_id in doc_ids))
        )

    async def iter_documents(self, batch_docs: int = 64):
        """Async-iterate every document in exact global store order.

        Implemented as batched :meth:`get_many` over the fleet's doc
        order, so the stream survives failovers *and* mid-iteration
        rebalances (each batch re-routes against the current map).
        """
        order = await self.doc_ids()
        for start in range(0, len(order), batch_docs):
            batch = order[start : start + batch_docs]
            documents = await self.get_many(batch)
            for doc_id, document in zip(batch, documents):
                yield doc_id, document

    async def doc_ids(self) -> List[int]:
        """Global store-order doc ids (from any endpoint; cached)."""
        self._ensure_open()
        await self._maybe_bootstrap()
        if self._doc_ids is None:
            last_error: Optional[BaseException] = None
            for label in self.endpoints:
                try:
                    self._doc_ids = await self._clients[label].doc_ids()
                except _FAILOVER_ERRORS + (asyncio.TimeoutError,) as exc:
                    last_error = exc
                    continue
                break
            if self._doc_ids is None:
                assert last_error is not None
                raise last_error
        return list(self._doc_ids)

    async def stats(self) -> Dict[str, float]:
        """Cluster counters plus every reachable endpoint's snapshot."""
        self._ensure_open()
        snapshot: Dict[str, float] = {
            "cluster_endpoints": len(self.endpoints),
            "cluster_failovers": self._failovers,
            "cluster_virtual_nodes": self._shard_map.virtual_nodes,
            "cluster_retry_budget_spent": self._budget.spent,
            "cluster_retry_budget_denied": self._budget.denied,
            "cluster_epoch": self._shard_map.epoch,
            "cluster_epoch_refreshes": self._epoch_refreshes,
            "cluster_wrong_shard_retries": self._wrong_shard_retries,
            "cluster_search_stats_cache_hits": self._stats_cache_hits,
            "cluster_search_stats_cache_misses": self._stats_cache_misses,
        }
        for index, label in enumerate(self.endpoints):
            try:
                shard_stats = await self._clients[label].stats()
            except _FAILOVER_ERRORS + (asyncio.TimeoutError,):
                snapshot[f"shard{index}_reachable"] = 0
                continue
            snapshot[f"shard{index}_reachable"] = 1
            for key, value in shard_stats.items():
                snapshot[f"shard{index}_{key}"] = value
        return snapshot

    # ------------------------------------------------------------------
    # Search (protocol v5)
    # ------------------------------------------------------------------
    async def search(
        self,
        query: str,
        top_k: int = 10,
        snippet_chars: int = 0,
        deadline_ms: Optional[int] = None,
    ) -> List[SearchHit]:
        """Exact global BM25 top-k across every shard.

        The coroutine mirror of :meth:`ClusterClient.search`: one
        ``asyncio.gather`` collects per-shard corpus statistics, their
        sums become the global idf inputs, a second gather ranks every
        shard with them, and the merged ``(-score, doc_id)`` order
        reproduces a single-index run exactly.  No failover — a shard
        that cannot answer fails the query (its documents exist nowhere
        else).
        """
        self._ensure_open()
        await self._maybe_bootstrap()
        labels = self.endpoints
        global_stats = await self._global_search_stats(query, deadline_ms)
        per_shard = await asyncio.gather(
            *(
                self._clients[label].search(
                    query,
                    top_k=top_k,
                    snippet_chars=snippet_chars,
                    global_stats=global_stats,
                    deadline_ms=deadline_ms,
                )
                for label in labels
            )
        )
        merged = [hit for hits in per_shard for hit in hits]
        merged.sort(key=lambda hit: (-hit.score, hit.doc_id))
        return merged[:top_k]

    #: Distinct queries whose global statistics are kept per epoch.
    _STATS_CACHE_CAP = 256

    async def _global_search_stats(
        self, query: str, deadline_ms: Optional[int]
    ) -> Tuple[int, int, Dict[str, int]]:
        """Global corpus statistics for ``query``, cached per shard-map epoch.

        The coroutine mirror of :meth:`ClusterClient._global_search_stats`:
        one stats fan-out per (query, epoch); :meth:`_adopt` clears the
        cache when a newer shard map moves documents between shards.
        """
        cached = self._stats_cache.get(query)
        if cached is not None:
            self._stats_cache.move_to_end(query)
            self._stats_cache_hits += 1
            return cached
        stats = await asyncio.gather(
            *(
                self._clients[label].search_stats(query, deadline_ms=deadline_ms)
                for label in self.endpoints
            )
        )
        num_documents = sum(shard[0] for shard in stats)
        total_length = sum(shard[1] for shard in stats)
        frequencies: Dict[str, int] = {}
        for _, _, shard_df in stats:
            for term, df in shard_df.items():
                frequencies[term] = frequencies.get(term, 0) + df
        global_stats = (num_documents, total_length, frequencies)
        self._stats_cache_misses += 1
        self._stats_cache[query] = global_stats
        self._stats_cache.move_to_end(query)
        while len(self._stats_cache) > self._STATS_CACHE_CAP:
            self._stats_cache.popitem(last=False)
        return global_stats

    async def ping(self) -> float:
        """Round-trip time to the slowest reachable endpoint."""
        self._ensure_open()
        times = []
        for label in self.endpoints:
            try:
                times.append(await self._clients[label].ping())
            except _FAILOVER_ERRORS + (asyncio.TimeoutError,):
                continue
        if not times:
            raise ConnectionError("no cluster endpoint is reachable")
        return max(times)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    async def close(self) -> None:
        """Close every per-endpoint client (idempotent)."""
        self._closed = True
        for client in self._clients.values():
            await client.close()

    async def __aenter__(self) -> "AsyncClusterClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
