"""The length-prefixed binary wire protocol between RlzServer and clients.

Framing
-------

Every message on the wire is one *frame*::

    +----------------+--------+-----------------+
    | length (u32 BE)| opcode |   payload ...   |
    +----------------+--------+-----------------+

``length`` counts the opcode byte plus the payload, so a frame occupies
``4 + length`` bytes.  Frames larger than the negotiated ``max_frame_bytes``
are rejected with :class:`~repro.errors.ProtocolError` *before* the payload
is read, on both sides.

A connection starts with a handshake: the client sends ``HELLO`` carrying
the 4-byte magic ``RLZN`` and the highest protocol version it speaks; the
server answers ``R_HELLO`` with the version it selected (currently it must
equal :data:`PROTOCOL_VERSION`) or an error frame if the magic or version
is unacceptable.  After the handshake the client issues request frames and
reads response frames; ``ITER`` is the one streaming opcode (a sequence of
``R_ITEM`` frames terminated by ``R_END``).

Errors travel as structured ``R_ERROR`` frames carrying a numeric code
from :data:`ERROR_CODES` plus the message, so the client re-raises the
*same* :mod:`repro.errors` class the server-side archive raised — a remote
miss is a :class:`~repro.errors.StorageError` exactly like a local one.

The payload codecs below are deliberately struct-based (no pickling): the
protocol surface is auditable and language-independent.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Optional, Sequence, Tuple, Type

from .. import errors
from ..errors import ProtocolError

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "Opcode",
    "ERROR_CODES",
    "encode_frame",
    "split_frame",
    "frame_length",
    "pack_hello",
    "unpack_hello",
    "pack_hello_reply",
    "unpack_hello_reply",
    "pack_doc_id",
    "unpack_doc_id",
    "pack_doc_ids",
    "unpack_doc_ids",
    "pack_documents",
    "unpack_documents",
    "pack_item",
    "unpack_item",
    "pack_stats",
    "unpack_stats",
    "pack_error",
    "unpack_error",
    "error_to_frame",
    "raise_error_frame",
]

MAGIC = b"RLZN"
PROTOCOL_VERSION = 1
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct("!I")
_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_HELLO = struct.Struct("!4sB")


class Opcode:
    """Request and response opcodes (one byte on the wire).

    Requests use the low half, responses set the high bit; ``R_ERROR`` can
    answer any request.
    """

    HELLO = 0x01
    PING = 0x02
    GET = 0x03
    GET_MANY = 0x04
    ITER = 0x05
    STATS = 0x06
    DOC_IDS = 0x07

    R_HELLO = 0x81
    R_PONG = 0x82
    R_DOC = 0x83
    R_DOCS = 0x84
    R_ITEM = 0x85
    R_END = 0x86
    R_STATS = 0x87
    R_DOC_IDS = 0x88
    R_ERROR = 0xFF


#: Wire code for every exported error class.  The codes are part of the
#: protocol: never renumber, only append.  ``decode`` walks the exception's
#: MRO, so an unregistered subclass degrades to its nearest ancestor.
ERROR_CODES: Dict[Type[BaseException], int] = {
    errors.ReproError: 1,
    errors.DictionaryError: 2,
    errors.FactorizationError: 3,
    errors.EncodingError: 4,
    errors.DecodingError: 5,
    errors.StorageError: 6,
    errors.StoreClosedError: 7,
    errors.ConfigurationError: 8,
    errors.CorpusError: 9,
    errors.SearchError: 10,
    errors.BenchmarkError: 11,
    errors.ProtocolError: 12,
}

_CODE_TO_ERROR: Dict[int, Type[BaseException]] = {
    code: cls for cls, code in ERROR_CODES.items()
}


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(opcode: int, payload: bytes = b"") -> bytes:
    """One wire frame: length prefix, opcode byte, payload."""
    return _LEN.pack(1 + len(payload)) + _U8.pack(opcode) + payload


def frame_length(prefix: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> int:
    """Validate a 4-byte length prefix and return the body length.

    Raises :class:`ProtocolError` if the prefix is short, the frame is
    empty (no opcode) or the body exceeds ``max_frame_bytes``.
    """
    if len(prefix) != 4:
        raise ProtocolError(
            f"truncated frame: expected a 4-byte length prefix, got {len(prefix)} bytes"
        )
    (length,) = _LEN.unpack(prefix)
    if length < 1:
        raise ProtocolError("malformed frame: zero-length body (no opcode)")
    if length > max_frame_bytes:
        raise ProtocolError(
            f"oversized frame: {length} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    return length


def split_frame(body: bytes) -> Tuple[int, bytes]:
    """Split a frame body into ``(opcode, payload)``."""
    if not body:
        raise ProtocolError("malformed frame: empty body")
    return body[0], body[1:]


# ----------------------------------------------------------------------
# Payload codecs
# ----------------------------------------------------------------------
def pack_hello(version: int = PROTOCOL_VERSION) -> bytes:
    return _HELLO.pack(MAGIC, version)


def unpack_hello(payload: bytes) -> int:
    """Validate a HELLO payload and return the client's protocol version."""
    if len(payload) != _HELLO.size:
        raise ProtocolError(f"malformed HELLO: {len(payload)} bytes")
    magic, version = _HELLO.unpack(payload)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}: not an rlz-serve client")
    return version


def pack_hello_reply(version: int = PROTOCOL_VERSION) -> bytes:
    return _U8.pack(version)


def unpack_hello_reply(payload: bytes) -> int:
    if len(payload) != 1:
        raise ProtocolError(f"malformed HELLO reply: {len(payload)} bytes")
    return payload[0]


def pack_doc_id(doc_id: int) -> bytes:
    return _I64.pack(doc_id)


def unpack_doc_id(payload: bytes) -> int:
    if len(payload) != _I64.size:
        raise ProtocolError(f"malformed doc-id payload: {len(payload)} bytes")
    return _I64.unpack(payload)[0]


def pack_doc_ids(doc_ids: Sequence[int]) -> bytes:
    return _U32.pack(len(doc_ids)) + struct.pack(f"!{len(doc_ids)}q", *doc_ids)


def unpack_doc_ids(payload: bytes) -> List[int]:
    if len(payload) < _U32.size:
        raise ProtocolError("malformed doc-id list: missing count")
    (count,) = _U32.unpack_from(payload)
    expected = _U32.size + count * _I64.size
    if len(payload) != expected:
        raise ProtocolError(
            f"malformed doc-id list: {count} ids need {expected} bytes, "
            f"got {len(payload)}"
        )
    return list(struct.unpack_from(f"!{count}q", payload, _U32.size))


def pack_documents(documents: Sequence[bytes]) -> bytes:
    parts = [_U32.pack(len(documents))]
    for document in documents:
        parts.append(_U32.pack(len(document)))
        parts.append(document)
    return b"".join(parts)


def unpack_documents(payload: bytes) -> List[bytes]:
    if len(payload) < _U32.size:
        raise ProtocolError("malformed document batch: missing count")
    (count,) = _U32.unpack_from(payload)
    documents: List[bytes] = []
    offset = _U32.size
    for _ in range(count):
        if len(payload) < offset + _U32.size:
            raise ProtocolError("malformed document batch: truncated length")
        (length,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        if len(payload) < offset + length:
            raise ProtocolError("malformed document batch: truncated document")
        documents.append(payload[offset : offset + length])
        offset += length
    if offset != len(payload):
        raise ProtocolError("malformed document batch: trailing bytes")
    return documents


def pack_item(doc_id: int, document: bytes) -> bytes:
    return _I64.pack(doc_id) + document


def unpack_item(payload: bytes) -> Tuple[int, bytes]:
    if len(payload) < _I64.size:
        raise ProtocolError(f"malformed stream item: {len(payload)} bytes")
    return _I64.unpack_from(payload)[0], payload[_I64.size :]


def pack_stats(stats: Dict[str, float]) -> bytes:
    return json.dumps(stats, sort_keys=True).encode("utf-8")


def unpack_stats(payload: bytes) -> Dict[str, float]:
    try:
        stats = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed stats payload: {exc}") from exc
    if not isinstance(stats, dict):
        raise ProtocolError("malformed stats payload: not an object")
    return stats


# ----------------------------------------------------------------------
# Error frames
# ----------------------------------------------------------------------
def pack_error(code: int, message: str) -> bytes:
    return _U16.pack(code) + message.encode("utf-8", errors="replace")


def unpack_error(payload: bytes) -> Tuple[int, str]:
    if len(payload) < _U16.size:
        raise ProtocolError(f"malformed error frame: {len(payload)} bytes")
    (code,) = _U16.unpack_from(payload)
    return code, payload[_U16.size :].decode("utf-8", errors="replace")


def error_to_frame(exc: BaseException) -> bytes:
    """Encode an exception as a complete ``R_ERROR`` frame.

    The exact class wins; otherwise the MRO is walked so subclasses map to
    their nearest registered ancestor (and anything non-repro to code 0,
    which decodes as a plain :class:`~repro.errors.ReproError`).
    """
    code = ERROR_CODES.get(type(exc))
    if code is None:
        for base in type(exc).__mro__:
            if base in ERROR_CODES:
                code = ERROR_CODES[base]
                break
        else:
            code = 0
    return encode_frame(Opcode.R_ERROR, pack_error(code, str(exc)))


def raise_error_frame(payload: bytes) -> None:
    """Re-raise the error carried by an ``R_ERROR`` payload.

    Unknown codes degrade to :class:`~repro.errors.ReproError` rather than
    failing the decode: a newer server may know error types this client
    does not.
    """
    code, message = unpack_error(payload)
    raise _CODE_TO_ERROR.get(code, errors.ReproError)(message)


def describe_opcode(opcode: int) -> str:
    """Human-readable opcode name (for error messages and stats keys)."""
    for name, value in vars(Opcode).items():
        if not name.startswith("_") and value == opcode:
            return name.lower()
    return f"0x{opcode:02x}"


def negotiate_version(client_version: int) -> int:
    """The server-side version pick for a client speaking ``client_version``.

    Currently one version exists, so anything else is a mismatch; the
    function is the single place a future version-2 server would widen.
    """
    if client_version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: client speaks {client_version}, "
            f"server supports {PROTOCOL_VERSION}"
        )
    return PROTOCOL_VERSION


def checked_version(server_version: int) -> int:
    """Client-side validation of the version the server selected."""
    if server_version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: server selected {server_version}, "
            f"client supports {PROTOCOL_VERSION}"
        )
    return server_version


#: Optional ``__all__`` additions used by the server/client modules.
__all__ += ["describe_opcode", "negotiate_version", "checked_version"]
