"""The length-prefixed binary wire protocol between RlzServer and clients.

Framing
-------

Every message on the wire is one *frame*.  Version 1 frames the opcode and
payload directly::

    +----------------+--------+-----------------+
    | length (u32 BE)| opcode |   payload ...   |
    +----------------+--------+-----------------+

Version 2 inserts a **u32 request id** between the opcode and the payload,
so replies can arrive out of order and a single connection can carry many
requests in flight (pipelining / multiplexing).  Clients allocate ids from
1; **id 0 is reserved** for connection-level ``R_ERROR`` frames the server
cannot attribute to a single request (e.g. an oversized frame rejected
before its id was read)::

    +----------------+--------+------------------+-----------------+
    | length (u32 BE)| opcode | request id (u32) |   payload ...   |
    +----------------+--------+------------------+-----------------+

Version 3 adds a **u32 deadline** (milliseconds of budget remaining when
the frame was sent; 0 = no deadline) to every *request* frame, so the
server can drop work whose deadline already passed instead of decoding
documents nobody is waiting for (``R_TIMEOUT``), and a trailing **u32
CRC32** over the frame body to *every* frame in both directions, so a
flipped bit on the wire surfaces as a :class:`~repro.errors.ProtocolError`
instead of silently wrong document bytes.  Responses carry the checksum
but not the deadline::

    request:
    +----------------+--------+------------------+----------------+---------+-------------+
    | length (u32 BE)| opcode | request id (u32) | deadline (u32) | payload | crc32 (u32) |
    +----------------+--------+------------------+----------------+---------+-------------+

    response:
    +----------------+--------+------------------+-----------------+-------------+
    | length (u32 BE)| opcode | request id (u32) |   payload ...   | crc32 (u32) |
    +----------------+--------+------------------+-----------------+-------------+

``length`` counts everything after the prefix, so a frame occupies
``4 + length`` bytes in every version.  Frames larger than the negotiated
``max_frame_bytes`` are rejected with :class:`~repro.errors.ProtocolError`
*before* the payload is read, on both sides.

A connection starts with a handshake, always spoken in **version-1
framing** (neither side knows the negotiated version yet): the client
sends ``HELLO`` carrying the 4-byte magic ``RLZN``, the highest protocol
version it speaks and — from version 2 — the *name* of the archive it
wants (empty selects the server's default); the server answers ``R_HELLO``
with the version it selected (``min(client, server)``, see
:func:`negotiate_version`) or an error frame if the magic, version or
archive name is unacceptable.  Every frame after the handshake uses the
negotiated version's framing.

After the handshake the client issues request frames and reads response
frames; ``ITER`` and ``SCAN`` are the streaming opcodes (``R_ITEM`` /
``R_CHUNK`` sequences terminated by ``R_END``; under version 2 every
stream frame carries the request id of the originating request, so stream
frames and ordinary replies can interleave on one connection).  ``R_BUSY``
is the backpressure hint: the server's ``max_inflight`` gate is saturated
and the client should retry the request after a short delay (every request
opcode is idempotent).  From version 3 the R_BUSY payload carries the
server-observed queue depth and a suggested retry-after (see
:func:`pack_busy`) so client backoff is proportional instead of blind,
``HEALTH`` reports per-archive readiness/load without competing for the
inflight gate, and ``R_TIMEOUT`` answers a request whose deadline expired
server-side (decoding work for it never starts).

Version 4 keeps the version-3 framing unchanged and adds the
*partitioned-serving* opcodes.  ``SHARD_MAP`` asks a server for its
current placement map — epoch, endpoint list and ``virtual_nodes`` — and
is answered (``R_SHARD_MAP``) outside the backpressure gate like
``HEALTH``, so clients can bootstrap and refresh routing even from a
saturated server.  A partitioned server that receives a request for a doc
id outside the arc it owns answers ``R_WRONG_SHARD`` carrying its current
epoch instead of serving stale bytes; clients refresh their map and retry
against the owner.  Two administrative opcodes drive live rebalancing:
``INGEST`` hands a recipient a batch of ``(doc_id, bytes)`` items (the
:func:`pack_chunk` layout; an empty batch is a resume probe) and is
answered with ``R_DOC_IDS`` listing *every* doc id the recipient has
staged so far, and ``INSTALL_MAP`` (payload = :func:`pack_shard_map`)
commits a new map epoch — the server recomputes its owned arc, rewrites
its store, and answers ``R_SHARD_MAP`` with the map it now serves.

Version 5 keeps the framing unchanged again and adds the *search-serving*
opcode.  ``SEARCH`` carries a query string, the requested ``top_k``, a
snippet window size in bytes and a flags byte; the server ranks its
shard-local :class:`~repro.search.serving.PostingsStore` with
doc-at-a-time BM25 and answers ``R_SEARCH`` with scored hits (plus a
query-biased snippet decoded through the windowed partial-decode path
when a window was requested).  Two flag bits drive sharded fan-out: a
*stats-only* SEARCH returns the shard's local term statistics instead of
results (the first leg of a cluster search), and a request carrying
*global stats* (collection-wide doc count, total length and per-term
document frequencies, summed by the client from every shard's stats
reply) is scored against those, which makes per-shard scores identical to
a single index over the whole collection — the merge step is then a pure
``(-score, doc_id)`` sort.

Errors travel as structured ``R_ERROR`` frames carrying a numeric code
from :data:`ERROR_CODES` plus the message, so the client re-raises the
*same* :mod:`repro.errors` class the server-side archive raised — a remote
miss is a :class:`~repro.errors.StorageError` exactly like a local one.

The payload codecs below are deliberately struct-based (no pickling): the
protocol surface is auditable and language-independent.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

from .. import errors
from ..errors import ProtocolError

__all__ = [
    "MAGIC",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "PROTOCOL_V3",
    "PROTOCOL_V4",
    "PROTOCOL_V5",
    "PROTOCOL_VERSION",
    "SEARCH_STATS_ONLY",
    "SEARCH_GLOBAL_STATS",
    "SearchHit",
    "DEFAULT_MAX_FRAME_BYTES",
    "MAX_ARCHIVE_NAME_BYTES",
    "Opcode",
    "ERROR_CODES",
    "encode_frame",
    "encode_frame2",
    "encode_frame3",
    "encode_reply3",
    "split_frame",
    "split_frame2",
    "split_frame3",
    "split_reply3",
    "frame_length",
    "pack_busy",
    "unpack_busy",
    "pack_health",
    "unpack_health",
    "pack_hello",
    "unpack_hello",
    "pack_hello_reply",
    "unpack_hello_reply",
    "pack_doc_id",
    "unpack_doc_id",
    "pack_doc_ids",
    "unpack_doc_ids",
    "pack_documents",
    "unpack_documents",
    "pack_item",
    "unpack_item",
    "pack_scan",
    "unpack_scan",
    "pack_chunk",
    "unpack_chunk",
    "pack_stats",
    "unpack_stats",
    "pack_search",
    "unpack_search",
    "pack_search_results",
    "unpack_search_results",
    "pack_search_stats",
    "unpack_search_stats",
    "pack_shard_map",
    "unpack_shard_map",
    "pack_wrong_shard",
    "unpack_wrong_shard",
    "pack_error",
    "unpack_error",
    "error_to_frame",
    "raise_error_frame",
]

MAGIC = b"RLZN"
#: The legacy request/response protocol (PR 4): no request ids, one
#: archive per server, strictly in-order replies.
PROTOCOL_V1 = 1
#: The pipelined protocol (PR 5): request ids, out-of-order replies,
#: named archives, SCAN and R_BUSY.
PROTOCOL_V2 = 2
#: The fault-tolerant protocol: request frames carry a deadline field,
#: R_BUSY payloads carry queue depth + retry-after, HEALTH/R_TIMEOUT.
PROTOCOL_V3 = 3
#: The partitioned protocol: SHARD_MAP/R_SHARD_MAP announce placement
#: (epoch + endpoints + virtual_nodes) and R_WRONG_SHARD refuses doc ids
#: the server no longer owns, carrying the current epoch.  Framing is
#: unchanged from version 3.
PROTOCOL_V4 = 4
#: The search-serving protocol: SEARCH/R_SEARCH rank the shard-local
#: postings index (stats-only and global-stats flags drive the sharded
#: two-leg fan-out).  Framing is unchanged from version 3.
PROTOCOL_V5 = 5
PROTOCOL_VERSION = PROTOCOL_V5
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024
MAX_ARCHIVE_NAME_BYTES = 255
#: Largest deadline expressible on the wire (u32 milliseconds).
MAX_DEADLINE_MS = 0xFFFFFFFF

_LEN = struct.Struct("!I")
_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_HELLO = struct.Struct("!4sB")
_OP_REQ = struct.Struct("!BI")
_OP_REQ_DL = struct.Struct("!BII")
_BUSY = struct.Struct("!II")
_U64 = struct.Struct("!Q")
_F64 = struct.Struct("!d")
_SHARD_MAP_HEAD = struct.Struct("!QIH")  # epoch, virtual nodes, endpoint count
_SEARCH_HEAD = struct.Struct("!BII")  # flags, top_k, snippet window bytes
_SEARCH_STATS_HEAD = struct.Struct("!QQH")  # docs, total length, term count
_SEARCH_HIT_HEAD = struct.Struct("!qdII")  # doc id, score, snippet start/len


class Opcode:
    """Request and response opcodes (one byte on the wire).

    Requests use the low half, responses set the high bit; ``R_ERROR`` can
    answer any request.
    """

    HELLO = 0x01
    PING = 0x02
    GET = 0x03
    GET_MANY = 0x04
    ITER = 0x05
    STATS = 0x06
    DOC_IDS = 0x07
    SCAN = 0x08
    HEALTH = 0x09
    SHARD_MAP = 0x0A
    INGEST = 0x0B
    INSTALL_MAP = 0x0C
    SEARCH = 0x0D

    R_HELLO = 0x81
    R_PONG = 0x82
    R_DOC = 0x83
    R_DOCS = 0x84
    R_ITEM = 0x85
    R_END = 0x86
    R_STATS = 0x87
    R_DOC_IDS = 0x88
    R_BUSY = 0x89
    R_CHUNK = 0x8A
    R_HEALTH = 0x8B
    R_TIMEOUT = 0x8C
    R_SHARD_MAP = 0x8D
    R_WRONG_SHARD = 0x8E
    R_SEARCH = 0x8F
    R_ERROR = 0xFF


#: Wire code for every exported error class.  The codes are part of the
#: protocol: never renumber, only append.  ``decode`` walks the exception's
#: MRO, so an unregistered subclass degrades to its nearest ancestor.
ERROR_CODES: Dict[Type[BaseException], int] = {
    errors.ReproError: 1,
    errors.DictionaryError: 2,
    errors.FactorizationError: 3,
    errors.EncodingError: 4,
    errors.DecodingError: 5,
    errors.StorageError: 6,
    errors.StoreClosedError: 7,
    errors.ConfigurationError: 8,
    errors.CorpusError: 9,
    errors.SearchError: 10,
    errors.BenchmarkError: 11,
    errors.ProtocolError: 12,
    errors.ServerBusyError: 13,
    errors.DeadlineExceededError: 14,
    errors.CorruptArchiveError: 15,
    errors.WrongShardError: 16,
}

_CODE_TO_ERROR: Dict[int, Type[BaseException]] = {
    code: cls for cls, code in ERROR_CODES.items()
}


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(opcode: int, payload: bytes = b"") -> bytes:
    """One version-1 wire frame: length prefix, opcode byte, payload."""
    return _LEN.pack(1 + len(payload)) + _U8.pack(opcode) + payload


def encode_frame2(opcode: int, request_id: int, payload: bytes = b"") -> bytes:
    """One version-2 wire frame: length prefix, opcode, request id, payload."""
    return _LEN.pack(5 + len(payload)) + _OP_REQ.pack(opcode, request_id) + payload


def encode_frame3(
    opcode: int, request_id: int, deadline_ms: int, payload: bytes = b""
) -> bytes:
    """One version-3 *request* frame: adds a u32 deadline (ms; 0 = none)
    and a trailing CRC32 over the frame body.

    Version-3 *responses* drop the deadline field but keep the checksum
    (:func:`encode_reply3` / :func:`split_reply3`).
    """
    if not 0 <= deadline_ms <= MAX_DEADLINE_MS:
        raise ProtocolError(
            f"deadline must be in [0, {MAX_DEADLINE_MS}] ms, got {deadline_ms}"
        )
    body = _OP_REQ_DL.pack(opcode, request_id, deadline_ms) + payload
    return _LEN.pack(len(body) + _U32.size) + body + _U32.pack(zlib.crc32(body))


def encode_reply3(opcode: int, request_id: int, payload: bytes = b"") -> bytes:
    """One version-3 *response* frame: the v2 layout plus a trailing CRC32."""
    body = _OP_REQ.pack(opcode, request_id) + payload
    return _LEN.pack(len(body) + _U32.size) + body + _U32.pack(zlib.crc32(body))


def _strip_crc3(body: bytes) -> bytes:
    """Verify and remove the trailing CRC32 of a version-3 frame body."""
    if len(body) < _U32.size:
        raise ProtocolError(f"malformed v3 frame: {len(body)} bytes (no checksum)")
    content, trailer = body[: -_U32.size], body[-_U32.size :]
    if zlib.crc32(content) != _U32.unpack(trailer)[0]:
        raise ProtocolError(
            "corrupt frame: body failed its CRC32 check (bytes damaged in transit)"
        )
    return content


def frame_length(prefix: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> int:
    """Validate a 4-byte length prefix and return the body length.

    Raises :class:`ProtocolError` if the prefix is short, the frame is
    empty (no opcode) or the body exceeds ``max_frame_bytes``.
    """
    if len(prefix) != 4:
        raise ProtocolError(
            f"truncated frame: expected a 4-byte length prefix, got {len(prefix)} bytes"
        )
    (length,) = _LEN.unpack(prefix)
    if length < 1:
        raise ProtocolError("malformed frame: zero-length body (no opcode)")
    if length > max_frame_bytes:
        raise ProtocolError(
            f"oversized frame: {length} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    return length


def split_frame(body: bytes) -> Tuple[int, bytes]:
    """Split a version-1 frame body into ``(opcode, payload)``."""
    if not body:
        raise ProtocolError("malformed frame: empty body")
    return body[0], body[1:]


def split_frame2(body: bytes) -> Tuple[int, int, bytes]:
    """Split a version-2 frame body into ``(opcode, request_id, payload)``."""
    if len(body) < _OP_REQ.size:
        raise ProtocolError(
            f"malformed v2 frame: {len(body)} bytes (need opcode + request id)"
        )
    opcode, request_id = _OP_REQ.unpack_from(body)
    return opcode, request_id, body[_OP_REQ.size :]


def split_frame3(body: bytes) -> Tuple[int, int, int, bytes]:
    """Split (and CRC-verify) a version-3 request body into
    ``(opcode, request_id, deadline_ms, payload)``."""
    content = _strip_crc3(body)
    if len(content) < _OP_REQ_DL.size:
        raise ProtocolError(
            f"malformed v3 frame: {len(content)} bytes "
            f"(need opcode + request id + deadline)"
        )
    opcode, request_id, deadline_ms = _OP_REQ_DL.unpack_from(content)
    return opcode, request_id, deadline_ms, content[_OP_REQ_DL.size :]


def split_reply3(body: bytes) -> Tuple[int, int, bytes]:
    """Split (and CRC-verify) a version-3 response body into
    ``(opcode, request_id, payload)``."""
    content = _strip_crc3(body)
    if len(content) < _OP_REQ.size:
        raise ProtocolError(
            f"malformed v3 frame: {len(content)} bytes (need opcode + request id)"
        )
    opcode, request_id = _OP_REQ.unpack_from(content)
    return opcode, request_id, content[_OP_REQ.size :]


# ----------------------------------------------------------------------
# Payload codecs
# ----------------------------------------------------------------------
def pack_hello(version: int = PROTOCOL_VERSION, archive: str = "") -> bytes:
    """A HELLO payload: magic, highest spoken version, archive name (v2+).

    Version-1 HELLOs are exactly the 5 legacy bytes (no name field), so a
    v1 client's handshake is parsed unchanged by a v2 server.
    """
    if version <= PROTOCOL_V1:
        if archive:
            raise ProtocolError(
                "protocol version 1 cannot name an archive (it predates the router)"
            )
        return _HELLO.pack(MAGIC, version)
    name = archive.encode("utf-8")
    if len(name) > MAX_ARCHIVE_NAME_BYTES:
        raise ProtocolError(
            f"archive name too long: {len(name)} bytes > {MAX_ARCHIVE_NAME_BYTES}"
        )
    return _HELLO.pack(MAGIC, version) + _U16.pack(len(name)) + name


def unpack_hello(payload: bytes) -> Tuple[int, str]:
    """Validate a HELLO payload; return ``(version, archive_name)``.

    A legacy 5-byte HELLO (any version) decodes with an empty archive name
    — the server maps that to its default archive.
    """
    if len(payload) < _HELLO.size:
        raise ProtocolError(f"malformed HELLO: {len(payload)} bytes")
    magic, version = _HELLO.unpack_from(payload)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}: not an rlz-serve client")
    if len(payload) == _HELLO.size:
        return version, ""
    if len(payload) < _HELLO.size + _U16.size:
        raise ProtocolError("malformed HELLO: truncated archive-name length")
    (name_length,) = _U16.unpack_from(payload, _HELLO.size)
    expected = _HELLO.size + _U16.size + name_length
    if len(payload) != expected:
        raise ProtocolError(
            f"malformed HELLO: archive name needs {expected} bytes, "
            f"got {len(payload)}"
        )
    name = payload[_HELLO.size + _U16.size :].decode("utf-8", errors="replace")
    return version, name


def pack_hello_reply(version: int = PROTOCOL_VERSION) -> bytes:
    return _U8.pack(version)


def unpack_hello_reply(payload: bytes) -> int:
    if len(payload) != 1:
        raise ProtocolError(f"malformed HELLO reply: {len(payload)} bytes")
    return payload[0]


def pack_doc_id(doc_id: int) -> bytes:
    return _I64.pack(doc_id)


def unpack_doc_id(payload: bytes) -> int:
    if len(payload) != _I64.size:
        raise ProtocolError(f"malformed doc-id payload: {len(payload)} bytes")
    return _I64.unpack(payload)[0]


def pack_doc_ids(doc_ids: Sequence[int]) -> bytes:
    return _U32.pack(len(doc_ids)) + struct.pack(f"!{len(doc_ids)}q", *doc_ids)


def unpack_doc_ids(payload: bytes) -> List[int]:
    if len(payload) < _U32.size:
        raise ProtocolError("malformed doc-id list: missing count")
    (count,) = _U32.unpack_from(payload)
    expected = _U32.size + count * _I64.size
    if len(payload) != expected:
        raise ProtocolError(
            f"malformed doc-id list: {count} ids need {expected} bytes, "
            f"got {len(payload)}"
        )
    return list(struct.unpack_from(f"!{count}q", payload, _U32.size))


def pack_documents(documents: Sequence[bytes]) -> bytes:
    parts = [_U32.pack(len(documents))]
    for document in documents:
        parts.append(_U32.pack(len(document)))
        parts.append(document)
    return b"".join(parts)


def unpack_documents(payload: bytes) -> List[bytes]:
    if len(payload) < _U32.size:
        raise ProtocolError("malformed document batch: missing count")
    (count,) = _U32.unpack_from(payload)
    documents: List[bytes] = []
    offset = _U32.size
    for _ in range(count):
        if len(payload) < offset + _U32.size:
            raise ProtocolError("malformed document batch: truncated length")
        (length,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        if len(payload) < offset + length:
            raise ProtocolError("malformed document batch: truncated document")
        documents.append(payload[offset : offset + length])
        offset += length
    if offset != len(payload):
        raise ProtocolError("malformed document batch: trailing bytes")
    return documents


def pack_scan(chunk_docs: int = 0, doc_ids: Optional[Sequence[int]] = None) -> bytes:
    """A SCAN request: chunk-size hint plus an optional doc-id subset.

    ``chunk_docs=0`` lets the server pick its default chunking; an empty
    ``doc_ids`` (or ``None``) scans every document in store order.
    """
    ids = list(doc_ids) if doc_ids is not None else []
    return _U32.pack(chunk_docs) + pack_doc_ids(ids)


def unpack_scan(payload: bytes) -> Tuple[int, List[int]]:
    if len(payload) < _U32.size:
        raise ProtocolError("malformed SCAN request: missing chunk size")
    (chunk_docs,) = _U32.unpack_from(payload)
    return chunk_docs, unpack_doc_ids(payload[_U32.size :])


def pack_chunk(items: Sequence[Tuple[int, bytes]]) -> bytes:
    """One R_CHUNK payload: a batch of ``(doc_id, document)`` pairs."""
    parts = [_U32.pack(len(items))]
    for doc_id, document in items:
        parts.append(_I64.pack(doc_id))
        parts.append(_U32.pack(len(document)))
        parts.append(document)
    return b"".join(parts)


def unpack_chunk(payload: bytes) -> List[Tuple[int, bytes]]:
    if len(payload) < _U32.size:
        raise ProtocolError("malformed scan chunk: missing count")
    (count,) = _U32.unpack_from(payload)
    items: List[Tuple[int, bytes]] = []
    offset = _U32.size
    for _ in range(count):
        if len(payload) < offset + _I64.size + _U32.size:
            raise ProtocolError("malformed scan chunk: truncated item header")
        (doc_id,) = _I64.unpack_from(payload, offset)
        offset += _I64.size
        (length,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        if len(payload) < offset + length:
            raise ProtocolError("malformed scan chunk: truncated document")
        items.append((doc_id, payload[offset : offset + length]))
        offset += length
    if offset != len(payload):
        raise ProtocolError("malformed scan chunk: trailing bytes")
    return items


def pack_item(doc_id: int, document: bytes) -> bytes:
    return _I64.pack(doc_id) + document


def unpack_item(payload: bytes) -> Tuple[int, bytes]:
    if len(payload) < _I64.size:
        raise ProtocolError(f"malformed stream item: {len(payload)} bytes")
    return _I64.unpack_from(payload)[0], payload[_I64.size :]


def pack_busy(retry_after_ms: int = 0, queue_depth: int = 0) -> bytes:
    """An R_BUSY payload: suggested retry-after (ms) + observed queue depth.

    ``retry_after_ms=0`` means "no hint, use your own backoff".  Servers
    that predate the hint send an empty payload, which
    :func:`unpack_busy` decodes as ``(0, 0)`` — the formats coexist.
    """
    return _BUSY.pack(
        min(max(0, retry_after_ms), MAX_DEADLINE_MS), min(max(0, queue_depth), MAX_DEADLINE_MS)
    )


def unpack_busy(payload: bytes) -> Tuple[int, int]:
    """Decode an R_BUSY payload to ``(retry_after_ms, queue_depth)``.

    Tolerates the legacy empty payload (no hint) for compatibility with
    protocol-v2 servers.
    """
    if not payload:
        return 0, 0
    if len(payload) < _BUSY.size:
        raise ProtocolError(f"malformed busy payload: {len(payload)} bytes")
    retry_after_ms, queue_depth = _BUSY.unpack_from(payload)
    return retry_after_ms, queue_depth


def pack_health(health: Dict[str, float]) -> bytes:
    """An R_HEALTH payload: the server's readiness/load snapshot (JSON)."""
    return json.dumps(health, sort_keys=True).encode("utf-8")


def unpack_health(payload: bytes) -> Dict[str, float]:
    try:
        health = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed health payload: {exc}") from exc
    if not isinstance(health, dict):
        raise ProtocolError("malformed health payload: not an object")
    return health


def pack_stats(stats: Dict[str, float]) -> bytes:
    return json.dumps(stats, sort_keys=True).encode("utf-8")


def unpack_stats(payload: bytes) -> Dict[str, float]:
    try:
        stats = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed stats payload: {exc}") from exc
    if not isinstance(stats, dict):
        raise ProtocolError("malformed stats payload: not an object")
    return stats


def pack_shard_map(epoch: int, endpoints: Sequence[str], virtual_nodes: int) -> bytes:
    """An R_SHARD_MAP payload: epoch, virtual-node count, endpoint labels.

    Layout: u64 epoch, u32 virtual_nodes, u16 endpoint count, then each
    endpoint as a u16 length + UTF-8 ``host:port`` label.  Endpoint order
    is part of the map (hash-ring tie-breaks are positional), so it is
    preserved exactly.
    """
    if epoch < 0 or epoch > 0xFFFFFFFFFFFFFFFF:
        raise ProtocolError(f"shard-map epoch out of range: {epoch}")
    if virtual_nodes < 1 or virtual_nodes > 0xFFFFFFFF:
        raise ProtocolError(f"shard-map virtual_nodes out of range: {virtual_nodes}")
    if len(endpoints) > 0xFFFF:
        raise ProtocolError(f"shard map too large: {len(endpoints)} endpoints")
    parts = [_SHARD_MAP_HEAD.pack(epoch, virtual_nodes, len(endpoints))]
    for endpoint in endpoints:
        label = endpoint.encode("utf-8")
        if len(label) > 0xFFFF:
            raise ProtocolError(f"endpoint label too long: {len(label)} bytes")
        parts.append(_U16.pack(len(label)))
        parts.append(label)
    return b"".join(parts)


def unpack_shard_map(payload: bytes) -> Tuple[int, List[str], int]:
    """Decode an R_SHARD_MAP payload to ``(epoch, endpoints, virtual_nodes)``."""
    if len(payload) < _SHARD_MAP_HEAD.size:
        raise ProtocolError(f"malformed shard map: {len(payload)} bytes")
    epoch, virtual_nodes, count = _SHARD_MAP_HEAD.unpack_from(payload)
    endpoints: List[str] = []
    offset = _SHARD_MAP_HEAD.size
    for _ in range(count):
        if len(payload) < offset + _U16.size:
            raise ProtocolError("malformed shard map: truncated endpoint length")
        (length,) = _U16.unpack_from(payload, offset)
        offset += _U16.size
        if len(payload) < offset + length:
            raise ProtocolError("malformed shard map: truncated endpoint label")
        endpoints.append(payload[offset : offset + length].decode("utf-8"))
        offset += length
    if offset != len(payload):
        raise ProtocolError("malformed shard map: trailing bytes")
    return epoch, endpoints, virtual_nodes


def pack_wrong_shard(epoch: int, doc_id: int) -> bytes:
    """An R_WRONG_SHARD payload: the refusing server's epoch + the doc id."""
    if epoch < 0 or epoch > 0xFFFFFFFFFFFFFFFF:
        raise ProtocolError(f"shard-map epoch out of range: {epoch}")
    return _U64.pack(epoch) + _I64.pack(doc_id)


def unpack_wrong_shard(payload: bytes) -> Tuple[int, int]:
    """Decode an R_WRONG_SHARD payload to ``(epoch, doc_id)``."""
    if len(payload) != _U64.size + _I64.size:
        raise ProtocolError(f"malformed wrong-shard payload: {len(payload)} bytes")
    (epoch,) = _U64.unpack_from(payload)
    (doc_id,) = _I64.unpack_from(payload, _U64.size)
    return epoch, doc_id


# ----------------------------------------------------------------------
# Search (protocol v5)
# ----------------------------------------------------------------------
#: SEARCH flag: return the shard's local term statistics (doc count,
#: total doc length, per-term df) instead of ranked results — the first
#: leg of a sharded fan-out.
SEARCH_STATS_ONLY = 0x01
#: SEARCH flag: the request carries collection-wide statistics to score
#: against (the second leg); without it the server uses its own index's.
SEARCH_GLOBAL_STATS = 0x02
_SEARCH_FLAGS = SEARCH_STATS_ONLY | SEARCH_GLOBAL_STATS
MAX_QUERY_BYTES = 0xFFFF


@dataclass(frozen=True)
class SearchHit:
    """One ranked SEARCH result as it travels on the wire.

    ``snippet`` is the server-decoded window around the first query-term
    hit (empty when no window was requested) and ``snippet_start`` its
    byte offset inside the document.
    """

    doc_id: int
    score: float
    snippet: bytes = b""
    snippet_start: int = 0


def _pack_term_frequencies(frequencies: Dict[str, int]) -> bytes:
    if len(frequencies) > 0xFFFF:
        raise ProtocolError(f"too many query terms: {len(frequencies)}")
    parts = []
    for term in sorted(frequencies):
        encoded = term.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ProtocolError(f"query term too long: {len(encoded)} bytes")
        parts.append(_U16.pack(len(encoded)))
        parts.append(encoded)
        parts.append(_U64.pack(frequencies[term]))
    return b"".join(parts)


def _unpack_term_frequencies(
    payload: bytes, offset: int, count: int
) -> Tuple[Dict[str, int], int]:
    frequencies: Dict[str, int] = {}
    for _ in range(count):
        if len(payload) < offset + _U16.size:
            raise ProtocolError("malformed term stats: truncated term length")
        (length,) = _U16.unpack_from(payload, offset)
        offset += _U16.size
        if len(payload) < offset + length + _U64.size:
            raise ProtocolError("malformed term stats: truncated term entry")
        term = payload[offset : offset + length].decode("utf-8", errors="replace")
        offset += length
        (frequencies[term],) = _U64.unpack_from(payload, offset)
        offset += _U64.size
    return frequencies, offset


def pack_search(
    query: str,
    top_k: int = 20,
    snippet_chars: int = 0,
    stats_only: bool = False,
    global_stats: Optional[Tuple[int, int, Dict[str, int]]] = None,
) -> bytes:
    """A SEARCH request payload.

    ``global_stats`` is ``(num_documents, total_doc_length, {term: df})``
    for the whole collection; passing it makes the shard score against
    collection-wide statistics.  ``stats_only`` asks for the shard's
    local statistics instead of results (``global_stats`` is meaningless
    then and rejected).
    """
    if stats_only and global_stats is not None:
        raise ProtocolError("a stats-only SEARCH cannot carry global stats")
    if top_k < 0 or top_k > 0xFFFFFFFF:
        raise ProtocolError(f"top_k out of range: {top_k}")
    if snippet_chars < 0 or snippet_chars > 0xFFFFFFFF:
        raise ProtocolError(f"snippet_chars out of range: {snippet_chars}")
    encoded = query.encode("utf-8")
    if len(encoded) > MAX_QUERY_BYTES:
        raise ProtocolError(f"query too long: {len(encoded)} bytes")
    flags = 0
    if stats_only:
        flags |= SEARCH_STATS_ONLY
    if global_stats is not None:
        flags |= SEARCH_GLOBAL_STATS
    payload = [
        _SEARCH_HEAD.pack(flags, top_k, snippet_chars),
        _U16.pack(len(encoded)),
        encoded,
    ]
    if global_stats is not None:
        num_documents, total_doc_length, frequencies = global_stats
        payload.append(
            _SEARCH_STATS_HEAD.pack(num_documents, total_doc_length, len(frequencies))
        )
        payload.append(_pack_term_frequencies(frequencies))
    return b"".join(payload)


def unpack_search(
    payload: bytes,
) -> Tuple[str, int, int, bool, Optional[Tuple[int, int, Dict[str, int]]]]:
    """Decode a SEARCH payload to ``(query, top_k, snippet_chars,
    stats_only, global_stats)``."""
    if len(payload) < _SEARCH_HEAD.size + _U16.size:
        raise ProtocolError(f"malformed SEARCH request: {len(payload)} bytes")
    flags, top_k, snippet_chars = _SEARCH_HEAD.unpack_from(payload)
    if flags & ~_SEARCH_FLAGS:
        raise ProtocolError(f"malformed SEARCH request: unknown flags 0x{flags:02x}")
    offset = _SEARCH_HEAD.size
    (query_length,) = _U16.unpack_from(payload, offset)
    offset += _U16.size
    if len(payload) < offset + query_length:
        raise ProtocolError("malformed SEARCH request: truncated query")
    query = payload[offset : offset + query_length].decode("utf-8", errors="replace")
    offset += query_length
    stats_only = bool(flags & SEARCH_STATS_ONLY)
    global_stats = None
    if flags & SEARCH_GLOBAL_STATS:
        if stats_only:
            raise ProtocolError("malformed SEARCH request: stats-only with globals")
        if len(payload) < offset + _SEARCH_STATS_HEAD.size:
            raise ProtocolError("malformed SEARCH request: truncated global stats")
        num_documents, total_doc_length, count = _SEARCH_STATS_HEAD.unpack_from(
            payload, offset
        )
        offset += _SEARCH_STATS_HEAD.size
        frequencies, offset = _unpack_term_frequencies(payload, offset, count)
        global_stats = (num_documents, total_doc_length, frequencies)
    if offset != len(payload):
        raise ProtocolError("malformed SEARCH request: trailing bytes")
    return query, top_k, snippet_chars, stats_only, global_stats


_R_SEARCH_RESULTS = 0
_R_SEARCH_STATS = 1


def pack_search_results(hits: Sequence[SearchHit]) -> bytes:
    """An R_SEARCH payload carrying ranked results (kind byte 0)."""
    parts = [_U8.pack(_R_SEARCH_RESULTS), _U32.pack(len(hits))]
    for hit in hits:
        parts.append(
            _SEARCH_HIT_HEAD.pack(
                hit.doc_id, hit.score, hit.snippet_start, len(hit.snippet)
            )
        )
        parts.append(hit.snippet)
    return b"".join(parts)


def pack_search_stats(
    num_documents: int, total_doc_length: int, frequencies: Dict[str, int]
) -> bytes:
    """An R_SEARCH payload carrying shard-local term stats (kind byte 1)."""
    return (
        _U8.pack(_R_SEARCH_STATS)
        + _SEARCH_STATS_HEAD.pack(num_documents, total_doc_length, len(frequencies))
        + _pack_term_frequencies(frequencies)
    )


def _split_search_reply(payload: bytes, expected_kind: int, what: str) -> bytes:
    if not payload:
        raise ProtocolError("malformed search reply: empty payload")
    if payload[0] != expected_kind:
        raise ProtocolError(
            f"malformed search reply: expected {what}, got kind {payload[0]}"
        )
    return payload[1:]


def unpack_search_results(payload: bytes) -> List[SearchHit]:
    """Decode a results-kind R_SEARCH payload."""
    body = _split_search_reply(payload, _R_SEARCH_RESULTS, "results")
    if len(body) < _U32.size:
        raise ProtocolError("malformed search results: missing count")
    (count,) = _U32.unpack_from(body)
    offset = _U32.size
    hits: List[SearchHit] = []
    for _ in range(count):
        if len(body) < offset + _SEARCH_HIT_HEAD.size:
            raise ProtocolError("malformed search results: truncated hit header")
        doc_id, score, snippet_start, snippet_length = _SEARCH_HIT_HEAD.unpack_from(
            body, offset
        )
        offset += _SEARCH_HIT_HEAD.size
        if len(body) < offset + snippet_length:
            raise ProtocolError("malformed search results: truncated snippet")
        snippet = body[offset : offset + snippet_length]
        offset += snippet_length
        hits.append(SearchHit(doc_id, score, snippet, snippet_start))
    if offset != len(body):
        raise ProtocolError("malformed search results: trailing bytes")
    return hits


def unpack_search_stats(payload: bytes) -> Tuple[int, int, Dict[str, int]]:
    """Decode a stats-kind R_SEARCH payload to ``(num_documents,
    total_doc_length, {term: df})``."""
    body = _split_search_reply(payload, _R_SEARCH_STATS, "stats")
    if len(body) < _SEARCH_STATS_HEAD.size:
        raise ProtocolError(f"malformed search stats: {len(body)} bytes")
    num_documents, total_doc_length, count = _SEARCH_STATS_HEAD.unpack_from(body)
    frequencies, offset = _unpack_term_frequencies(
        body, _SEARCH_STATS_HEAD.size, count
    )
    if offset != len(body):
        raise ProtocolError("malformed search stats: trailing bytes")
    return num_documents, total_doc_length, frequencies


# ----------------------------------------------------------------------
# Error frames
# ----------------------------------------------------------------------
def pack_error(code: int, message: str) -> bytes:
    return _U16.pack(code) + message.encode("utf-8", errors="replace")


def unpack_error(payload: bytes) -> Tuple[int, str]:
    if len(payload) < _U16.size:
        raise ProtocolError(f"malformed error frame: {len(payload)} bytes")
    (code,) = _U16.unpack_from(payload)
    return code, payload[_U16.size :].decode("utf-8", errors="replace")


def pack_error_for(exc: BaseException) -> bytes:
    """An ``R_ERROR`` payload for an exception.

    The exact class wins; otherwise the MRO is walked so subclasses map to
    their nearest registered ancestor (and anything non-repro to code 0,
    which decodes as a plain :class:`~repro.errors.ReproError`).
    """
    code = ERROR_CODES.get(type(exc))
    if code is None:
        for base in type(exc).__mro__:
            if base in ERROR_CODES:
                code = ERROR_CODES[base]
                break
        else:
            code = 0
    return pack_error(code, str(exc))


def error_to_frame(exc: BaseException) -> bytes:
    """Encode an exception as a complete version-1 ``R_ERROR`` frame."""
    return encode_frame(Opcode.R_ERROR, pack_error_for(exc))


def raise_error_frame(payload: bytes) -> None:
    """Re-raise the error carried by an ``R_ERROR`` payload.

    Unknown codes degrade to :class:`~repro.errors.ReproError` rather than
    failing the decode: a newer server may know error types this client
    does not.
    """
    code, message = unpack_error(payload)
    raise _CODE_TO_ERROR.get(code, errors.ReproError)(message)


def describe_opcode(opcode: int) -> str:
    """Human-readable opcode name (for error messages and stats keys)."""
    for name, value in vars(Opcode).items():
        if not name.startswith("_") and value == opcode:
            return name.lower()
    return f"0x{opcode:02x}"


def negotiate_version(client_version: int) -> int:
    """The server-side version pick for a client speaking ``client_version``.

    ``client_version`` is the *highest* version the client speaks, so the
    server selects ``min(client, server)`` — a v1 client keeps its legacy
    request/response framing against a v2 server, and a future v3 client
    degrades to v2 here.  Anything below :data:`PROTOCOL_V1` is a mismatch.
    """
    if client_version < PROTOCOL_V1:
        raise ProtocolError(
            f"protocol version mismatch: client speaks {client_version}, "
            f"server supports {PROTOCOL_V1}..{PROTOCOL_VERSION}"
        )
    return min(client_version, PROTOCOL_VERSION)


def checked_version(server_version: int) -> int:
    """Client-side validation of the version the server selected."""
    if not PROTOCOL_V1 <= server_version <= PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: server selected {server_version}, "
            f"client supports {PROTOCOL_V1}..{PROTOCOL_VERSION}"
        )
    return server_version


#: Optional ``__all__`` additions used by the server/client modules.
__all__ += ["describe_opcode", "negotiate_version", "checked_version", "pack_error_for"]
