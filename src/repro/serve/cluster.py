"""Consistent-hash client fan-out: one :class:`ArchiveView` over N servers.

The north star is heavy traffic from millions of users, which means many
servers.  :class:`ClusterClient` makes a fleet of
:class:`~repro.serve.RlzServer` endpoints look like one archive:

* a :class:`ShardMap` — a consistent-hash ring built with the same
  Fibonacci-hash multiplier as :class:`repro.storage.SharedMemoryCache`
  and :class:`repro.suffix.CompactJumpIndex` — assigns every doc id a
  stable *preference order* over the endpoints.  Each endpoint owns the
  arc behind its virtual points, so adding or removing one endpoint only
  remaps the documents it owned (the classic consistent-hashing
  guarantee), which keeps per-server decode caches hot across fleet
  changes;
* every endpoint is assumed to be able to serve every document (replicas
  of one archive, the deployment the benchmarks and CI run): the shard
  map spreads load and concentrates each document's cache hits on its
  primary, and the remaining ring order is the **failover path**;
* a per-endpoint :class:`CircuitBreaker` trips after consecutive
  connection failures and re-routes around the dead endpoint for a
  cooldown, so a dead shard costs one failed dial per cooldown instead
  of hammering retries on every request;
* ``get_many`` fans out one *pipelined* batch per endpoint (concurrent
  threads), fans the replies back in, and preserves input order exactly —
  duplicates included; documents of a shard that dies mid-batch are
  re-routed to the next endpoint on their ring order and the result is
  byte-identical to a single-archive read;
* ``iter_documents`` scans every shard with the chunked ``SCAN`` opcode
  (each endpoint streams only the documents it owns, in store order) and
  merges the streams back into exact store order.

The client implements :class:`repro.api.ArchiveView`, so everything
written against the facade — ``repro get``, the conformance battery, the
benchmarks — runs unchanged over a whole fleet.
"""

from __future__ import annotations

import queue
import threading
import time
from bisect import bisect_left
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import (
    ConfigurationError,
    ProtocolError,
    ServerBusyError,
    StoreClosedError,
    WrongShardError,
)
from .client import RlzClient
from .protocol import PROTOCOL_V4, SearchHit
from .retry import RetryBudget

__all__ = ["CircuitBreaker", "ClusterClient", "ShardMap"]

#: Fibonacci-hashing multiplier (odd, ~2**64 / golden ratio) — the same
#: constant the shared cache and the compact jump index use.
_FIB_MULTIPLIER = 0x9E3779B97F4A7C15
_MASK_64 = (1 << 64) - 1
#: Odd mixing constant for virtual-node indices (a second multiplier so a
#: vnode's points do not collide with doc-id hashes).
_VNODE_MIX = 0xA24BAED4963EE407


def _fib32(value: int) -> int:
    """The high 32 bits of the 64-bit Fibonacci hash of ``value``."""
    return ((value * _FIB_MULTIPLIER) & _MASK_64) >> 32


def _endpoint_seed(endpoint: str) -> int:
    """A stable 64-bit seed for an endpoint label (no PYTHONHASHSEED)."""
    seed = 0xCBF29CE484222325  # FNV-1a offset basis
    for byte in endpoint.encode("utf-8"):
        seed = ((seed ^ byte) * 0x100000001B3) & _MASK_64
    return seed


class ShardMap:
    """A consistent-hash ring from doc ids to endpoint preference orders.

    Every endpoint contributes ``virtual_nodes`` points on a 32-bit ring;
    a doc id hashes (Fibonacci) to a ring position and its *primary* is
    the endpoint owning the next point clockwise.  Walking further
    clockwise yields the failover order.  Ring points depend only on the
    endpoint *labels*, so two clients built from the same endpoint list —
    in any order — route identically, and removing an endpoint only
    remaps the documents it owned.

    A label is either a plain ``host:port`` (replica clusters, where the
    endpoint *is* the identity) or ``name@host:port`` for partitioned
    fleets: the part before ``@`` is the **ring id** that placement
    hashes, the part after is the transport address.  Splitting the two
    lets an offline ``repro partition`` build decide placement with
    logical shard names ("shard0", "shard1", ...) before any server has
    an address, and lets a rebalance move a shard to a new address
    without remapping a single document.

    ``epoch`` versions the map: partitioned fleets bump it on every
    rebalance, servers refuse doc ids they no longer own with the epoch
    they are at, and clients adopt whichever map carries the highest
    epoch.  Epoch 0 means "static/unversioned" (the PR-5 replica mode).
    """

    def __init__(
        self, endpoints: Sequence[str], virtual_nodes: int = 64, epoch: int = 0
    ) -> None:
        labels = [str(endpoint) for endpoint in endpoints]
        if not labels:
            raise ConfigurationError("ShardMap needs at least one endpoint")
        if len(set(labels)) != len(labels):
            raise ConfigurationError(f"duplicate endpoints: {labels}")
        ring_ids = [self.ring_id(label) for label in labels]
        if len(set(ring_ids)) != len(ring_ids):
            raise ConfigurationError(f"duplicate shard ring ids: {ring_ids}")
        if virtual_nodes <= 0:
            raise ConfigurationError("virtual_nodes must be positive")
        if epoch < 0:
            raise ConfigurationError("epoch must be non-negative")
        self._endpoints = labels
        self._virtual_nodes = virtual_nodes
        self._epoch = epoch
        points: List[Tuple[int, int]] = []
        for index, ring in enumerate(ring_ids):
            seed = _endpoint_seed(ring)
            for vnode in range(virtual_nodes):
                mixed = (seed ^ ((vnode * _VNODE_MIX) & _MASK_64)) & _MASK_64
                points.append((_fib32(mixed), index))
        # Ties (astronomically unlikely) resolve by endpoint index so the
        # ring is deterministic regardless of construction order.
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    @staticmethod
    def ring_id(label: str) -> str:
        """The placement identity of a label (the part before ``@``)."""
        return label.partition("@")[0]

    @staticmethod
    def transport(label: str) -> str:
        """The connection address of a label (after ``@``, or the whole)."""
        _, separator, address = label.partition("@")
        return address if separator else label

    @property
    def endpoints(self) -> List[str]:
        return list(self._endpoints)

    @property
    def virtual_nodes(self) -> int:
        return self._virtual_nodes

    @property
    def epoch(self) -> int:
        """The map's version (0 = static, unversioned)."""
        return self._epoch

    def route(self, doc_id: int) -> List[str]:
        """Every endpoint in preference order for ``doc_id`` (primary first)."""
        start = bisect_left(self._points, _fib32(doc_id)) % len(self._points)
        seen: List[str] = []
        seen_indices = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen_indices:
                seen_indices.add(owner)
                seen.append(self._endpoints[owner])
                if len(seen) == len(self._endpoints):
                    break
        return seen

    def primary(self, doc_id: int) -> str:
        """The endpoint that owns ``doc_id``."""
        start = bisect_left(self._points, _fib32(doc_id)) % len(self._points)
        return self._endpoints[self._owners[start]]

    def assignments(self, doc_ids: Sequence[int]) -> Dict[str, List[int]]:
        """Doc ids grouped by primary endpoint (order preserved per group)."""
        groups: Dict[str, List[int]] = {}
        for doc_id in doc_ids:
            groups.setdefault(self.primary(doc_id), []).append(doc_id)
        return groups


class CircuitBreaker:
    """Consecutive-failure trip with cooldown (per endpoint).

    Closed: requests flow and failures count.  After ``threshold``
    consecutive failures the breaker *opens*: :meth:`allow` answers False
    until ``cooldown`` seconds pass, at which point a *single* trial
    request is let through (half-open); a success closes the breaker, a
    failure re-opens it for another cooldown.  :meth:`allow` is a pure
    query — it never changes state, so routing layers may call it freely
    to *order* candidates without burning the half-open trial.
    :meth:`try_trial` is the admission check: in half-open it grants the
    probe to exactly one caller (concurrent callers are refused until the
    probe resolves), so a recovering endpoint sees one request, not a
    thundering herd of them arriving the instant the cooldown lapses.
    Thread-safe.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ConfigurationError("breaker threshold must be at least 1")
        if cooldown < 0:
            raise ConfigurationError("breaker cooldown must be non-negative")
        self._threshold = threshold
        self._cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._trial_inflight = False
        self._lock = threading.Lock()
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._clock() - self._opened_at >= self._cooldown:
                return "half-open"
            return "open"

    def allow(self) -> bool:
        """Whether a request may go to this endpoint right now (pure query)."""
        with self._lock:
            if self._opened_at is None:
                return True
            return self._clock() - self._opened_at >= self._cooldown

    def try_trial(self) -> bool:
        """Admit one request: always when closed, exactly once in half-open.

        A ``True`` from a non-closed breaker claims the half-open probe;
        the caller owes the breaker a ``record_success``,
        ``record_failure`` or ``release_trial`` to resolve it.  While the
        probe is unresolved every other caller is refused — two threads
        both probing a barely-recovered endpoint is how half-open states
        re-kill it.
        """
        with self._lock:
            if self._opened_at is None:
                return True
            if self._clock() - self._opened_at < self._cooldown:
                return False
            if self._trial_inflight:
                return False
            self._trial_inflight = True
            return True

    def release_trial(self) -> None:
        """Give the half-open probe back without deciding the outcome
        (e.g. the trial was answered R_BUSY: alive, but proof of nothing)."""
        with self._lock:
            self._trial_inflight = False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._trial_inflight = False

    def record_failure(self) -> None:
        with self._lock:
            self._trial_inflight = False
            self._failures += 1
            if self._failures >= self._threshold:
                if self._opened_at is None:
                    self.trips += 1
                self._opened_at = self._clock()


#: Connection-level failures that trigger failover (archive-level errors —
#: a missing document, say — are answers, not failures).
_FAILOVER_ERRORS = (ConnectionError, TimeoutError, OSError)


class _Success:
    """A failover attempt's result (may legitimately be any value)."""

    __slots__ = ("result",)

    def __init__(self, result) -> None:
        self.result = result


class _Failure:
    """A failover attempt's connection-level error."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


class ClusterClient:
    """One :class:`~repro.api.ArchiveView` over N server endpoints.

    Parameters
    ----------
    endpoints:
        ``host:port`` strings (or ``(host, port)`` tuples) of the servers.
        Every endpoint must be able to serve every document (replicas).
    archive:
        Archive name passed in each HELLO (multi-archive routers).
    virtual_nodes:
        Consistent-hash points per endpoint (see :class:`ShardMap`).
    breaker_threshold, breaker_cooldown:
        Per-endpoint :class:`CircuitBreaker` tuning.
    pipeline_window:
        In-flight request window per endpoint for ``get_many`` /
        ``pipelined_get`` fan-out.
    deadline_ms:
        Default per-request deadline propagated to every shard client
        (0 = none); per-call ``deadline_ms=`` arguments override it.
    hedge_delay:
        Seconds to wait for a primary shard before firing a backup
        request at the next replica (0 = hedging off).  The first reply
        wins; the loser is abandoned.  Set near the fleet's p99 so hedges
        stay rare — hedging trades a little extra load for cutting the
        latency tail of one slow shard.
    retry_budget:
        One token-bucket :class:`~repro.serve.retry.RetryBudget` shared
        by *every* shard client, so total cluster retry volume during a
        brownout is capped at the bucket's refill rate (``None`` creates
        a default shared bucket).
    client_options:
        Extra keyword arguments for every underlying :class:`RlzClient`
        (``timeout``, ``retries``, ``protocol_version``, ...).
    """

    def __init__(
        self,
        endpoints: Sequence[Union[str, Tuple[str, int]]],
        archive: str = "",
        virtual_nodes: int = 64,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        pipeline_window: int = 32,
        deadline_ms: int = 0,
        hedge_delay: float = 0.0,
        retry_budget: Optional[RetryBudget] = None,
        **client_options,
    ) -> None:
        if hedge_delay < 0:
            raise ConfigurationError("hedge_delay must be non-negative")
        labels = [self._normalize(endpoint) for endpoint in endpoints]
        self._shard_map = ShardMap(labels, virtual_nodes=virtual_nodes)
        self._archive = archive
        self._pipeline_window = pipeline_window
        self._hedge_delay = hedge_delay
        self._budget = retry_budget if retry_budget is not None else RetryBudget()
        client_options.setdefault("deadline_ms", deadline_ms)
        client_options.setdefault("retry_budget", self._budget)
        self._client_options = client_options
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._clients: Dict[str, RlzClient] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        for label in labels:
            self._add_endpoint(label)
        self._closed = False
        self._doc_ids: Optional[List[int]] = None
        self._failovers = 0
        self._hedges = 0
        self._hedge_wins = 0
        self._epoch_refreshes = 0
        self._wrong_shard_retries = 0
        self._bootstrapped = False
        self._stats_cache: "OrderedDict[str, Tuple[int, int, Dict[str, int]]]" = (
            OrderedDict()
        )
        self._stats_cache_hits = 0
        self._stats_cache_misses = 0
        self._lock = threading.Lock()

    @staticmethod
    def _normalize(endpoint: Union[str, Tuple[str, int]]) -> str:
        if isinstance(endpoint, tuple):
            host, port = endpoint
            return f"{host}:{int(port)}"
        endpoint = str(endpoint).strip()
        host, _, port_text = ShardMap.transport(endpoint).rpartition(":")
        if not host or not port_text.isdigit():
            raise ConfigurationError(
                f"endpoint must be host:port (optionally shard@host:port), "
                f"got {endpoint!r}"
            )
        return endpoint

    def _add_endpoint(self, label: str) -> None:
        """Create the client + breaker for a (possibly new) endpoint label."""
        if label in self._clients:
            return
        host, _, port_text = ShardMap.transport(label).rpartition(":")
        self._clients[label] = RlzClient(
            host, int(port_text), archive=self._archive, **self._client_options
        )
        self._breakers[label] = CircuitBreaker(
            self._breaker_threshold, self._breaker_cooldown
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shard_map(self) -> ShardMap:
        return self._shard_map

    @property
    def endpoints(self) -> List[str]:
        return self._shard_map.endpoints

    @property
    def archive_name(self) -> str:
        return self._archive

    @property
    def epoch(self) -> int:
        """The epoch of the shard map currently routing requests."""
        return self._shard_map.epoch

    @property
    def epoch_refreshes(self) -> int:
        """How many times a newer shard map has been adopted."""
        return self._epoch_refreshes

    @property
    def failovers(self) -> int:
        """How many times a request was re-routed off its primary."""
        return self._failovers

    @property
    def hedges(self) -> int:
        """How many backup requests hedged ``get`` has fired."""
        return self._hedges

    @property
    def hedge_wins(self) -> int:
        """How many hedged ``get``\\ s the backup leg won."""
        return self._hedge_wins

    @property
    def retry_budget(self) -> RetryBudget:
        """The token bucket shared by every shard client's retries."""
        return self._budget

    def breaker(self, endpoint: str) -> CircuitBreaker:
        """The circuit breaker guarding ``endpoint``."""
        return self._breakers[endpoint]

    # ------------------------------------------------------------------
    # Shard-map epochs (partitioned fleets)
    # ------------------------------------------------------------------
    def _resolve_wire_labels(self, labels: Sequence[str]) -> Optional[List[str]]:
        """Attach transports to ring-id-only labels from a wire shard map.

        Servers whose map still comes from the build manifest announce
        plain ring ids ("shard0"); this client already knows where those
        shards live, so the transports are grafted from its own endpoint
        table.  A ring id with no known transport makes the whole map
        unusable (``None``) — adopting it would strand an arc.
        """
        known = {
            ShardMap.ring_id(label): ShardMap.transport(label)
            for label in self._clients
        }
        resolved: List[str] = []
        for label in labels:
            if "@" in label or ":" in label:
                resolved.append(label)
                continue
            transport = known.get(ShardMap.ring_id(label))
            if transport is None:
                return None
            resolved.append(f"{label}@{transport}")
        return resolved

    def _adopt(self, epoch: int, labels: Sequence[str], virtual_nodes: int) -> bool:
        """Install a newer shard map (no-op unless ``epoch`` advances)."""
        if not labels or epoch <= self._shard_map.epoch:
            return False
        resolved = self._resolve_wire_labels(labels)
        if resolved is None:
            return False
        with self._lock:
            if epoch <= self._shard_map.epoch:
                return False
            for label in resolved:
                self._add_endpoint(label)
            self._shard_map = ShardMap(
                resolved, virtual_nodes=virtual_nodes, epoch=epoch
            )
            self._epoch_refreshes += 1
            # A new epoch moves documents between shards: per-shard corpus
            # statistics summed under the old placement are no longer the
            # global truth.
            self._stats_cache.clear()
            return True

    def refresh_shard_map(self, prefer: Optional[str] = None) -> bool:
        """Pull the shard map from the fleet; adopt it if its epoch is newer.

        Queries ``prefer`` first (the endpoint that just refused a request
        has the freshest view), then the rest of the fleet, and stops at
        the first answer that advances the epoch.  Returns whether a newer
        map was adopted.  Unreachable endpoints are skipped — refreshing
        must never be harder than the read it is trying to save.
        """
        self._ensure_open()
        ordering = [prefer] if prefer in self._clients else []
        ordering += [label for label in self.endpoints if label not in ordering]
        ordering += [label for label in self._clients if label not in ordering]
        for label in ordering:
            try:
                epoch, labels, virtual_nodes = self._clients[label].shard_map()
            except _FAILOVER_ERRORS + (ProtocolError,):
                continue
            if self._adopt(epoch, labels, virtual_nodes):
                return True
        return False

    def _maybe_bootstrap(self) -> None:
        """One-time lazy shard-map bootstrap from any reachable endpoint.

        Partitioned servers announce an epoch ≥ 1; replica servers answer
        epoch 0 and the static map stands.  Pre-v4 peers (or an entirely
        unreachable fleet) leave the static map in place too — bootstrap
        is an upgrade, never a precondition.
        """
        if self._bootstrapped:
            return
        self._bootstrapped = True
        version = self._client_options.get("protocol_version", PROTOCOL_V4)
        if version < PROTOCOL_V4:
            return
        try:
            self.refresh_shard_map()
        except StoreClosedError:
            raise
        except Exception:
            pass

    def _retry_wrong_shard(self, call: Callable[[], object]):
        """Run ``call``; on :class:`WrongShardError` refresh the map and
        retry against the new owner, spending the shared retry budget.

        Bounded: each retry must either follow an adopted newer epoch or
        spend a budget token; when neither is possible the error stands.
        """
        attempts = 0
        while True:
            try:
                return call()
            except WrongShardError as exc:
                attempts += 1
                refreshed = self.refresh_shard_map()
                if attempts > max(2, len(self.endpoints)) or not self._budget.spend():
                    raise
                if not refreshed and attempts > 1:
                    raise
                with self._lock:
                    self._wrong_shard_retries += 1
                del exc

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreClosedError("cluster client is closed")

    def _candidates(self, doc_id: int) -> List[str]:
        """The ring order for ``doc_id`` with tripped endpoints demoted.

        Endpoints whose breaker is open go to the back rather than being
        dropped: if *every* breaker is open the request still tries them
        (an all-open cluster should fail with the real connection error,
        not an artificial one).
        """
        route = self._shard_map.route(doc_id)
        allowed = [label for label in route if self._breakers[label].allow()]
        blocked = [label for label in route if label not in allowed]
        return allowed + blocked

    def _with_failover(self, doc_id: int, call: Callable[[RlzClient], object]):
        """Run ``call`` against the ring order, recording breaker outcomes.

        Connection-level failures trip the breaker; a sustained ``R_BUSY``
        (:class:`~repro.errors.ServerBusyError`) re-routes *without*
        tripping it — the endpoint is alive, just saturated, and should
        come straight back into rotation.  Endpoints whose breaker
        refuses admission (open, or half-open with the probe already
        claimed) are skipped in the first pass; if *nothing* admitted the
        request, a forced second pass tries them anyway so an all-open
        cluster fails with the real connection error.
        """
        self._ensure_open()
        last_error: Optional[BaseException] = None
        candidates = self._candidates(doc_id)
        skipped: List[Tuple[int, str]] = []
        for position, label in enumerate(candidates):
            if not self._breakers[label].try_trial():
                skipped.append((position, label))
                continue
            outcome = self._one_attempt(label, position, call)
            if not isinstance(outcome, _Failure):
                return outcome.result
            last_error = outcome.error
        for position, label in skipped:
            outcome = self._one_attempt(label, position, call)
            if not isinstance(outcome, _Failure):
                return outcome.result
            last_error = outcome.error
        assert last_error is not None
        raise last_error

    def _one_attempt(
        self, label: str, position: int, call: Callable[[RlzClient], object]
    ):
        """One failover attempt with breaker bookkeeping; archive errors
        (answers about the data, not the endpoint) propagate."""
        breaker = self._breakers[label]
        try:
            result = call(self._clients[label])
        except ServerBusyError as exc:
            breaker.release_trial()
            return _Failure(exc)
        except _FAILOVER_ERRORS as exc:
            breaker.record_failure()
            return _Failure(exc)
        except BaseException:
            breaker.release_trial()
            raise
        breaker.record_success()
        if position:
            with self._lock:
                self._failovers += 1
        return _Success(result)

    # ------------------------------------------------------------------
    # ArchiveView
    # ------------------------------------------------------------------
    def get(self, doc_id: int, deadline_ms: Optional[int] = None) -> bytes:
        """One document from its primary shard (failover down the ring).

        With ``hedge_delay`` set, a primary that has not answered within
        the delay gets a backup request fired at the next replica and the
        first reply wins — one slow shard then costs roughly the hedge
        delay instead of the shard's full stall.
        """
        self._maybe_bootstrap()
        return self._retry_wrong_shard(lambda: self._get_once(doc_id, deadline_ms))

    def _get_once(self, doc_id: int, deadline_ms: Optional[int]) -> bytes:
        if self._hedge_delay > 0 and len(self.endpoints) > 1:
            return self._hedged_get(doc_id, deadline_ms)
        return self._with_failover(
            doc_id, lambda client: client.get(doc_id, deadline_ms)
        )

    def _hedged_get(self, doc_id: int, deadline_ms: Optional[int]) -> bytes:
        """Primary + delayed-backup race; sequential failover as backstop.

        Each leg runs in its own thread and reports into one queue; the
        first successful reply wins.  The losing leg cannot be cancelled
        mid-socket-read (synchronous sockets), so it is abandoned: its
        thread finishes in the background and its result is discarded —
        bounded by the leg client's own timeout/deadline.
        """
        candidates = self._candidates(doc_id)
        replies: "queue.Queue[Tuple[str, object]]" = queue.Queue()

        def leg(label: str) -> None:
            breaker = self._breakers[label]
            try:
                result = self._clients[label].get(doc_id, deadline_ms)
            except ServerBusyError as exc:
                breaker.release_trial()
                replies.put((label, _Failure(exc)))
            except _FAILOVER_ERRORS as exc:
                breaker.record_failure()
                replies.put((label, _Failure(exc)))
            except BaseException as exc:
                breaker.release_trial()
                replies.put((label, exc))
            else:
                breaker.record_success()
                replies.put((label, _Success(result)))

        def fire(label: str) -> None:
            threading.Thread(
                target=leg, args=(label,), name=f"rlz-hedge-{label}", daemon=True
            ).start()

        primary = candidates[0]
        fire(primary)
        fired = [primary]
        hedged = False
        last_error: Optional[BaseException] = None
        outstanding = 1
        while outstanding:
            try:
                timeout = None if hedged else self._hedge_delay
                label, outcome = replies.get(timeout=timeout)
            except queue.Empty:
                # The primary is slow: fire the backup leg.
                hedged = True
                with self._lock:
                    self._hedges += 1
                backup = next(
                    (c for c in candidates if c not in fired), None
                )
                if backup is None:  # pragma: no cover - len(endpoints) > 1
                    continue
                fire(backup)
                fired.append(backup)
                outstanding += 1
                continue
            outstanding -= 1
            if isinstance(outcome, _Success):
                if label != primary:
                    with self._lock:
                        self._hedge_wins += 1
                        self._failovers += 1
                return outcome.result
            if isinstance(outcome, _Failure):
                last_error = outcome.error
                continue
            raise outcome  # archive-level error: an answer, not a failure
        # Both legs failed: walk the rest of the ring sequentially.
        for position, label in enumerate(candidates):
            if label in fired:
                continue
            outcome = self._one_attempt(
                label, position, lambda client: client.get(doc_id, deadline_ms)
            )
            if not isinstance(outcome, _Failure):
                return outcome.result
            last_error = outcome.error
        assert last_error is not None
        raise last_error

    def get_many(
        self,
        doc_ids: Sequence[int],
        window: Optional[int] = None,
        deadline_ms: Optional[int] = None,
    ) -> List[bytes]:
        """Fan out by shard, fan in preserving input order exactly.

        Each endpoint receives one pipelined batch of the documents it
        owns (its requests overlap on one connection); batches run
        concurrently across endpoints.  A shard that fails mid-batch has
        its still-missing documents re-routed to the next endpoints on
        their ring order, so one dead server degrades throughput, not
        results.
        """
        self._ensure_open()
        self._maybe_bootstrap()
        pipeline_window = window if window is not None else self._pipeline_window
        doc_ids = list(doc_ids)
        if not doc_ids:
            return []
        results: List = [None] * len(doc_ids)
        done = [False] * len(doc_ids)
        remaining = list(range(len(doc_ids)))
        #: Endpoints that failed *within this call*: re-routed around
        #: immediately, independent of the breaker threshold (the breaker
        #: shields future calls; the dead-set shields this one).
        dead: set = set()
        wrong_refreshes = 0
        while remaining:
            groups: Dict[str, List[int]] = {}
            for index in remaining:
                for label in self._candidates(doc_ids[index]):
                    if label not in dead:
                        groups.setdefault(label, []).append(index)
                        break
            if not groups:  # pragma: no cover - dead-set exhaustion raises below
                raise ConnectionError("no cluster endpoint is reachable")
            failures: Dict[str, BaseException] = {}
            #: Endpoints that refused a doc id with R_WRONG_SHARD: the
            #: endpoint is healthy and the *map* is stale, so these feed a
            #: shard-map refresh, never the dead-set or the breaker.
            wrong_shard: Dict[str, WrongShardError] = {}
            hard_errors: List[BaseException] = []

            def fetch(label: str, indices: List[int]) -> None:
                client = self._clients[label]
                breaker = self._breakers[label]
                try:
                    documents = client.pipelined_get(
                        [doc_ids[index] for index in indices],
                        window=pipeline_window,
                        deadline_ms=deadline_ms,
                    )
                except ServerBusyError as exc:
                    # The endpoint is alive but saturated: re-route this
                    # batch to a replica without tripping the breaker.
                    failures[label] = exc
                    return
                except WrongShardError as exc:
                    breaker.record_success()
                    wrong_shard[label] = exc
                    return
                except _FAILOVER_ERRORS as exc:
                    breaker.record_failure()
                    failures[label] = exc
                    return
                except BaseException as exc:
                    # Archive/protocol errors are answers about the data,
                    # not the endpoint: surface them to the caller.
                    hard_errors.append(exc)
                    return
                breaker.record_success()
                for index, document in zip(indices, documents):
                    results[index] = document
                    done[index] = True

            if len(groups) == 1:
                label, indices = next(iter(groups.items()))
                fetch(label, indices)
            else:
                threads = [
                    threading.Thread(
                        target=fetch, args=(label, indices), name=f"rlz-fanout-{label}"
                    )
                    for label, indices in groups.items()
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            if hard_errors:
                raise hard_errors[0]
            still = [index for index in remaining if not done[index]]
            if still and wrong_shard:
                # A stale map sent work to a shard that no longer owns it:
                # adopt the fleet's newer map and re-group what's left.
                wrong_refreshes += 1
                exhausted = wrong_refreshes > max(2, len(self.endpoints))
                if exhausted or not self._budget.spend():
                    raise next(iter(wrong_shard.values()))
                if not self.refresh_shard_map(prefer=next(iter(wrong_shard))):
                    raise next(iter(wrong_shard.values()))
                with self._lock:
                    self._wrong_shard_retries += 1
                remaining = still
                continue
            if still:
                if not failures:
                    raise ProtocolError("cluster get_many made no progress")
                dead.update(failures)
                if len(dead) >= len(self.endpoints):
                    raise next(iter(failures.values()))
                with self._lock:
                    self._failovers += len(still)
            remaining = still
        return results

    def pipelined_get(
        self,
        doc_ids: Sequence[int],
        window: Optional[int] = None,
        deadline_ms: Optional[int] = None,
    ) -> List[bytes]:
        """Alias of :meth:`get_many` (the cluster always pipelines);
        ``window`` overrides the per-shard in-flight window for this call."""
        return self.get_many(doc_ids, window=window, deadline_ms=deadline_ms)

    def iter_documents(self) -> Iterator[Tuple[int, bytes]]:
        """Stream every document in store order via per-shard SCANs.

        Each endpoint scans only the documents it owns (one chunked SCAN
        stream per shard, store-order within the shard), and the streams
        merge back into exact store order.  A shard that dies mid-scan
        has its remaining documents re-scanned from the next endpoint on
        their ring order.

        On a partitioned fleet a mid-scan rebalance surfaces as a
        ``R_WRONG_SHARD`` refusal: the scan then refreshes the shard map
        and re-plans the remaining documents against the new owners, so
        the stream stays in exact store order across the epoch bump.
        """
        self._ensure_open()
        self._maybe_bootstrap()
        order = self.doc_ids()
        offset = 0
        replans = 0
        while offset < len(order):
            stream = self._iter_from(order[offset:])
            try:
                for doc_id, document in stream:
                    yield doc_id, document
                    offset += 1
                return
            except WrongShardError:
                # The plan was drawn from a stale map: adopt the newer
                # epoch and re-plan everything not yet yielded.
                replans += 1
                if replans > max(2, len(self.endpoints)):
                    raise
                if not self.refresh_shard_map():
                    raise
                with self._lock:
                    self._wrong_shard_retries += 1
            finally:
                stream.close()

    def _iter_from(self, order: List[int]) -> Iterator[Tuple[int, bytes]]:
        """One scan-merge plan over ``order`` under the current shard map."""
        owners = {doc_id: self._candidates(doc_id)[0] for doc_id in order}
        per_shard: Dict[str, List[int]] = {}
        for doc_id in order:
            per_shard.setdefault(owners[doc_id], []).append(doc_id)
        streams: Dict[str, Iterator[Tuple[int, bytes]]] = {
            label: self._clients[label].scan(ids)
            for label, ids in per_shard.items()
        }
        consumed: Dict[str, int] = {label: 0 for label in per_shard}
        try:
            for doc_id in order:
                label = owners[doc_id]
                while True:
                    try:
                        got_id, document = next(streams[label])
                    except ServerBusyError:
                        # Saturated, not dead: re-route the tail, breaker intact.
                        label = self._rescan(
                            per_shard, consumed, streams, owners, label, doc_id
                        )
                        continue
                    except _FAILOVER_ERRORS:
                        self._breakers[label].record_failure()
                        label = self._rescan(
                            per_shard, consumed, streams, owners, label, doc_id
                        )
                        continue
                    except StopIteration:
                        raise ProtocolError(
                            f"shard {label} ended its scan early (at doc {doc_id})"
                        ) from None
                    consumed[label] += 1
                    if got_id != doc_id:
                        raise ProtocolError(
                            f"scan order broke: expected doc {doc_id}, got {got_id}"
                        )
                    yield doc_id, document
                    break
        finally:
            for stream in streams.values():
                close = getattr(stream, "close", None)
                if close is not None:
                    close()

    def _rescan(
        self,
        per_shard: Dict[str, List[int]],
        consumed: Dict[str, int],
        streams: Dict[str, Iterator[Tuple[int, bytes]]],
        owners: Dict[int, str],
        dead_label: str,
        from_doc: int,
    ) -> str:
        """Re-route a dead shard's unserved scan tail to a live endpoint."""
        tail = per_shard[dead_label][consumed[dead_label] :]
        assert tail and tail[0] == from_doc
        # A merged label chains every endpoint that already failed for
        # this tail ("E3#E2#E1"): never route back to one of those.
        exhausted = set(dead_label.split("#"))
        replacement = None
        for label in self._candidates(from_doc):
            if label not in exhausted:
                replacement = label
                break
        if replacement is None:
            raise ConnectionError(
                f"shard {dead_label} died mid-scan and no replica is available"
            )
        with self._lock:
            self._failovers += 1
        # The replacement endpoint scans the tail as its own fresh stream;
        # its previously-assigned documents are unaffected (separate
        # stream bookkeeping under a merged label).
        merged_label = f"{replacement}#{dead_label}"
        per_shard[merged_label] = tail
        consumed[merged_label] = 0
        streams[merged_label] = self._clients[replacement].scan(tail)
        for doc_id in tail:
            owners[doc_id] = merged_label
        # Breaker bookkeeping for the merged label routes to the live
        # endpoint's breaker.
        self._breakers.setdefault(merged_label, self._breakers[replacement])
        return merged_label

    def doc_ids(self) -> List[int]:
        """Store-order doc ids (from the first healthy endpoint; cached).

        Partitioned servers answer DOC_IDS with the *global* collection
        order recorded in their manifest (identical on every shard and
        invariant across rebalances), so one endpoint's answer is the
        whole fleet's answer in both deployments.
        """
        self._ensure_open()
        self._maybe_bootstrap()
        if self._doc_ids is None:
            last_error: Optional[BaseException] = None
            candidates = [
                label
                for label in self.endpoints
                if self._breakers[label].allow()
            ] or self.endpoints
            for label in candidates:
                breaker = self._breakers[label]
                try:
                    self._doc_ids = self._clients[label].doc_ids()
                except _FAILOVER_ERRORS as exc:
                    breaker.record_failure()
                    last_error = exc
                    continue
                breaker.record_success()
                break
            if self._doc_ids is None:
                assert last_error is not None
                raise last_error
        return list(self._doc_ids)

    def __len__(self) -> int:
        return len(self.doc_ids())

    def stats(self) -> Dict[str, float]:
        """Cluster counters plus every reachable endpoint's snapshot.

        Per-endpoint keys are prefixed ``shard<i>_``; endpoints that are
        down contribute ``shard<i>_reachable = 0`` instead of failing the
        whole snapshot.
        """
        self._ensure_open()
        snapshot: Dict[str, float] = {
            "cluster_endpoints": len(self.endpoints),
            "cluster_failovers": self._failovers,
            "cluster_virtual_nodes": self._shard_map.virtual_nodes,
            "cluster_hedges": self._hedges,
            "cluster_hedge_wins": self._hedge_wins,
            "cluster_retry_budget_spent": self._budget.spent,
            "cluster_retry_budget_denied": self._budget.denied,
            "cluster_epoch": self._shard_map.epoch,
            "cluster_epoch_refreshes": self._epoch_refreshes,
            "cluster_wrong_shard_retries": self._wrong_shard_retries,
            "cluster_search_stats_cache_hits": self._stats_cache_hits,
            "cluster_search_stats_cache_misses": self._stats_cache_misses,
        }
        for index, label in enumerate(self.endpoints):
            breaker = self._breakers[label]
            snapshot[f"shard{index}_breaker_open"] = int(breaker.state != "closed")
            snapshot[f"shard{index}_breaker_trips"] = breaker.trips
            snapshot[f"shard{index}_busy_hints"] = self._clients[label].busy_hints
            try:
                shard_stats = self._clients[label].stats()
            except _FAILOVER_ERRORS:
                snapshot[f"shard{index}_reachable"] = 0
                continue
            snapshot[f"shard{index}_reachable"] = 1
            for key, value in shard_stats.items():
                snapshot[f"shard{index}_{key}"] = value
        return snapshot

    # ------------------------------------------------------------------
    # Search (protocol v5)
    # ------------------------------------------------------------------
    def search(
        self,
        query: str,
        top_k: int = 10,
        snippet_chars: int = 0,
        deadline_ms: Optional[int] = None,
    ) -> List[SearchHit]:
        """Exact global BM25 top-k across every shard.

        Two concurrent fan-out legs: first every shard reports its corpus
        statistics for the query's terms (document count, total document
        length, per-term document frequency), which sum to the *global*
        statistics because a partitioned fleet stores each document on
        exactly one shard.  Then every shard ranks its own documents with
        those global statistics and returns its local top-k; the union
        necessarily contains the global top-k, so merging by
        ``(-score, doc_id)`` and truncating reproduces a single-index run
        exactly — same ids, same scores, same order.

        Unlike ``get``, search has no failover: every shard holds results
        no other shard can produce, so a shard that cannot answer fails
        the query rather than silently dropping its documents.
        """
        self._ensure_open()
        self._maybe_bootstrap()
        global_stats = self._global_search_stats(query, deadline_ms)
        per_shard = self._search_all(
            lambda client: client.search(
                query,
                top_k=top_k,
                snippet_chars=snippet_chars,
                global_stats=global_stats,
                deadline_ms=deadline_ms,
            )
        )
        merged = [hit for hits in per_shard.values() for hit in hits]
        merged.sort(key=lambda hit: (-hit.score, hit.doc_id))
        return merged[:top_k]

    #: Distinct queries whose global statistics are kept per epoch.
    _STATS_CACHE_CAP = 256

    def _global_search_stats(
        self, query: str, deadline_ms: Optional[int]
    ) -> Tuple[int, int, Dict[str, int]]:
        """Global corpus statistics for ``query``, cached per shard-map epoch.

        The stats leg of the search fan-out asks every shard for its
        document count, total length and per-term document frequencies.
        Those sums depend only on what each shard stores, which changes
        placement only when a newer shard map is adopted — so the answer
        for a query is reused until :meth:`_adopt` installs a new epoch
        and clears the cache.  A bounded LRU keeps memory flat under many
        distinct queries; repeated queries (the common interactive case)
        pay one fan-out per epoch instead of one per call.
        """
        with self._lock:
            cached = self._stats_cache.get(query)
            if cached is not None:
                self._stats_cache.move_to_end(query)
                self._stats_cache_hits += 1
                return cached
        stats = self._search_all(
            lambda client: client.search_stats(query, deadline_ms=deadline_ms)
        )
        num_documents = sum(shard[0] for shard in stats.values())
        total_length = sum(shard[1] for shard in stats.values())
        frequencies: Dict[str, int] = {}
        for _, _, shard_df in stats.values():
            for term, df in shard_df.items():
                frequencies[term] = frequencies.get(term, 0) + df
        global_stats = (num_documents, total_length, frequencies)
        with self._lock:
            self._stats_cache_misses += 1
            self._stats_cache[query] = global_stats
            self._stats_cache.move_to_end(query)
            while len(self._stats_cache) > self._STATS_CACHE_CAP:
                self._stats_cache.popitem(last=False)
        return global_stats

    def _search_all(self, call: Callable[[RlzClient], object]) -> Dict[str, object]:
        """Run ``call`` on every endpoint concurrently; all must answer.

        Breakers record connection outcomes as usual, but open breakers
        are not skipped — correctness needs every shard, so the request
        is the probe.  The first failure (in endpoint order, archive
        errors preferred over connection errors as the more specific
        diagnosis) propagates to the caller.
        """
        labels = self.endpoints
        results: Dict[str, object] = {}
        connection_errors: Dict[str, BaseException] = {}
        archive_errors: Dict[str, BaseException] = {}

        def run(label: str) -> None:
            breaker = self._breakers[label]
            try:
                results[label] = call(self._clients[label])
            except _FAILOVER_ERRORS as exc:
                breaker.record_failure()
                connection_errors[label] = exc
            except BaseException as exc:
                archive_errors[label] = exc
            else:
                breaker.record_success()

        if len(labels) == 1:
            run(labels[0])
        else:
            threads = [
                threading.Thread(
                    target=run, args=(label,), name=f"rlz-search-{label}"
                )
                for label in labels
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for label in labels:
            if label in archive_errors:
                raise archive_errors[label]
        for label in labels:
            if label in connection_errors:
                raise connection_errors[label]
        return results

    def ping(self) -> float:
        """Round-trip time to the slowest reachable endpoint."""
        self._ensure_open()
        times = []
        for label in self.endpoints:
            try:
                times.append(self._clients[label].ping())
            except _FAILOVER_ERRORS:
                continue
        if not times:
            raise ConnectionError("no cluster endpoint is reachable")
        return max(times)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close every per-endpoint client (idempotent)."""
        self._closed = True
        for client in self._clients.values():
            client.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
