"""Retry policy primitives shared by the serving clients.

Three small pieces the fault-tolerance layer is built from:

* :class:`Deadline` — a monotonic-clock budget for one logical call.
  Retries, backoff sleeps and socket waits all draw from the same
  budget, and :meth:`Deadline.wire_ms` is what a protocol-v3 request
  frame carries so the *server* can drop the work once it expires.
* :class:`RetryBudget` — a token bucket capping how many retries a
  client issues per unit time.  Per-request retry counters multiply
  under load (every request retries, so a brownout doubles or triples
  the offered load exactly when the server can least afford it); a
  shared budget makes total retry volume proportional to the refill
  rate instead of to the request rate.  When the bucket is empty the
  original error surfaces immediately — no amplification.
* :func:`full_jitter` / :func:`hinted_backoff` — the backoff sleeps.
  Full jitter (``uniform(0, delay)``) decorrelates a thundering herd of
  reconnecting clients; the hinted variant spreads sleeps around a
  server-suggested retry-after instead of guessing.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional

from ..errors import ConfigurationError, DeadlineExceededError

__all__ = ["Deadline", "RetryBudget", "full_jitter", "hinted_backoff"]


class Deadline:
    """A monotonic deadline for one logical call (dial + retries included).

    ``Deadline(seconds)`` starts the clock now; every layer that sleeps
    or blocks on the call's behalf asks :meth:`remaining` first, so the
    budget is end-to-end rather than per-attempt.
    """

    __slots__ = ("_at",)

    def __init__(self, seconds: float, clock: Callable[[], float] = time.monotonic) -> None:
        if seconds <= 0:
            raise DeadlineExceededError(f"deadline of {seconds}s is already spent")
        self._at = clock() + seconds

    @classmethod
    def from_ms(cls, deadline_ms: Optional[float]) -> Optional["Deadline"]:
        """A deadline from a millisecond budget; ``None``/0 means none."""
        if not deadline_ms:
            return None
        return cls(deadline_ms / 1000.0)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self._at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def wire_ms(self) -> int:
        """The millisecond budget a v3 request frame carries right now.

        At least 1 — a frame is only sent while the deadline is live, and
        0 means "no deadline" on the wire.
        """
        return max(1, int(self.remaining() * 1000))

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(f"{what} deadline exceeded")


class RetryBudget:
    """Token bucket bounding a client's total retry volume.

    Each retry (connection re-dial, R_BUSY backoff, failed-exchange
    replay) spends one token; tokens refill at ``refill_rate`` per
    second up to ``capacity``.  :meth:`spend` answers whether the retry
    may proceed — a ``False`` means the caller should surface its
    current error instead of retrying.  Thread-safe, so one budget can
    be shared by every client of a cluster (that is the point: the cap
    is on the *fleet's* retry pressure, not per socket).
    """

    def __init__(
        self,
        capacity: float = 64.0,
        refill_rate: float = 16.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError("retry budget capacity must be positive")
        if refill_rate < 0:
            raise ConfigurationError("retry budget refill_rate must be non-negative")
        self._capacity = float(capacity)
        self._refill_rate = float(refill_rate)
        self._clock = clock
        self._tokens = float(capacity)
        self._stamp = clock()
        self._lock = threading.Lock()
        #: Retries granted / denied since construction (observability).
        self.spent = 0
        self.denied = 0

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def refill_rate(self) -> float:
        return self._refill_rate

    def tokens(self) -> float:
        """Tokens available right now."""
        with self._lock:
            self._refill()
            return self._tokens

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        self._stamp = now
        if elapsed > 0 and self._refill_rate:
            self._tokens = min(self._capacity, self._tokens + elapsed * self._refill_rate)

    def spend(self, tokens: float = 1.0) -> bool:
        """Try to pay for one retry; ``False`` = budget exhausted, don't."""
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                self.spent += 1
                return True
            self.denied += 1
            return False


def full_jitter(delay: float, rng: Optional[random.Random] = None) -> float:
    """A full-jitter backoff sleep: ``uniform(0, delay)``.

    Simultaneous reconnects after a server restart all compute the same
    exponential delay; sleeping a uniform fraction of it spreads the
    herd across the whole window instead of synchronizing the retries.
    """
    return (rng or random).uniform(0.0, max(0.0, delay))


def hinted_backoff(
    retry_after: float, fallback: float, rng: Optional[random.Random] = None
) -> float:
    """The sleep before retrying after R_BUSY, given a server hint.

    The hint is jittered (``uniform(0.5, 1.5) x hint``) so hinted clients
    do not return in lockstep, but it only ever *lengthens* the sleep
    relative to the client's own full-jittered exponential delay: a
    lightly loaded server's hint is its queue-drain estimate, which can
    be a millisecond — retrying that fast would burn the whole retry
    allowance before a saturated gate has admitted anyone.  Taking the
    max keeps the blind schedule's escalation as the floor and lets the
    server stretch it when its queue says to stay away longer.
    """
    r = rng or random
    blind = full_jitter(fallback, r)
    if retry_after <= 0:
        return blind
    return max(blind, retry_after * r.uniform(0.5, 1.5))
