"""The asyncio :class:`RlzServer`: an archive behind a socket.

The server puts an :class:`repro.api.AsyncRlzArchive` behind the framed
wire protocol of :mod:`repro.serve.protocol`:

* every connection handshakes (magic + version negotiation), then issues
  request frames and reads responses; connections are independent and a
  slow client never blocks another (each connection runs its own task);
* a **backpressure gate** bounds the number of requests being served at
  once across *all* connections (``max_inflight``); excess requests wait
  in order at the gate, so a burst degrades to queueing, not to memory
  growth or thread-pool starvation;
* archive failures travel back as structured error frames carrying the
  concrete :mod:`repro.errors` class, and the connection keeps serving;
  protocol violations (bad magic, oversized or truncated frames) close
  the connection after an error frame, because its framing can no longer
  be trusted;
* **graceful shutdown**: :meth:`close` stops accepting, gives in-flight
  requests ``drain_seconds`` to finish, cancels stragglers, and closes
  the front (and with it the archive and cache tier) when it owns it.

:class:`BackgroundServer` runs the whole thing on a dedicated event-loop
thread — the handle tests, benchmarks and examples use to serve and keep
interacting from synchronous code.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Set, Union

from ..api.async_front import AsyncRlzArchive
from ..api.config import ArchiveConfig, ServeSpec
from ..errors import ProtocolError, ReproError
from . import protocol
from .protocol import Opcode

__all__ = ["BackgroundServer", "ConnectionStats", "RlzServer"]


@dataclass
class ConnectionStats:
    """What one client connection has cost so far."""

    peer: str
    requests: int = 0
    errors: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    by_opcode: Dict[str, int] = field(default_factory=dict)

    def count(self, opcode: int) -> None:
        self.requests += 1
        name = protocol.describe_opcode(opcode)
        self.by_opcode[name] = self.by_opcode.get(name, 0) + 1


class RlzServer:
    """Serve an :class:`AsyncRlzArchive` over a TCP socket.

    Parameters
    ----------
    front:
        The async front to serve.  With ``own_front=True`` (default) the
        server closes it — archive and cache tier included — on shutdown.
    spec:
        The :class:`ServeSpec` carrying host/port/backpressure settings
        (defaults to ``ServeSpec()``: loopback, ephemeral port).
    """

    def __init__(
        self,
        front: AsyncRlzArchive,
        spec: Optional[ServeSpec] = None,
        own_front: bool = True,
    ) -> None:
        self._front = front
        self._spec = spec or ServeSpec()
        self._own_front = own_front
        self._server: Optional[asyncio.base_events.Server] = None
        # Created in start(): asyncio primitives must be built on the loop
        # that will use them (pre-3.10 they bind get_event_loop() eagerly).
        self._gate: Optional[asyncio.Semaphore] = None
        self._connections: Set[asyncio.Task] = set()
        self._busy: Set[asyncio.Task] = set()
        self._conn_stats: Dict[asyncio.Task, ConnectionStats] = {}
        self._closing = False
        self._closed = False
        self._connections_total = 0
        self._requests = 0
        self._errors = 0

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        config: Optional[ArchiveConfig] = None,
        max_workers: Optional[int] = None,
    ) -> "RlzServer":
        """Open an archive, wrap it in an async front, and build a server
        configured by ``config.serve`` (not yet started)."""
        config = config or ArchiveConfig()
        front = AsyncRlzArchive.open(path, config, max_workers=max_workers)
        return cls(front, spec=config.serve)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def front(self) -> AsyncRlzArchive:
        """The async front being served."""
        return self._front

    @property
    def spec(self) -> ServeSpec:
        """The serve configuration."""
        return self._spec

    @property
    def host(self) -> str:
        return self._spec.host

    @property
    def port(self) -> int:
        """The actual bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self._spec.port

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> Dict[str, float]:
        """Server counters merged with the front's (archive + cache) stats."""
        snapshot = self._front.stats() if not self._front.closed else {}
        snapshot["server_connections_total"] = self._connections_total
        snapshot["server_connections_active"] = len(self._connections)
        snapshot["server_requests"] = self._requests
        snapshot["server_errors"] = self._errors
        snapshot["server_inflight_capacity"] = self._spec.max_inflight
        return snapshot

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ProtocolError("server already started")
        self._gate = asyncio.Semaphore(self._spec.max_inflight)
        self._server = await asyncio.start_server(
            self._on_connection, host=self._spec.host, port=self._spec.port
        )

    async def serve_forever(self) -> None:
        """Block until :meth:`close` (convenience for CLI use)."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def close(self) -> None:
        """Graceful shutdown: drain in-flight requests, then release.

        Stops accepting, cancels *idle* connections immediately (they are
        parked waiting for a next request that will never be answered),
        waits up to ``drain_seconds`` for connections serving a request to
        finish it, cancels stragglers, and closes the front if this server
        owns it.  Idempotent.
        """
        if self._closed:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [task for task in self._connections if not task.done()]
        idle = [task for task in pending if task not in self._busy]
        busy = [task for task in pending if task in self._busy]
        for task in idle:
            task.cancel()
        if busy:
            done, still_pending = await asyncio.wait(
                busy, timeout=self._spec.drain_seconds
            )
            for task in still_pending:
                task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._closed = True
        if self._own_front and not self._front.closed:
            await self._front.close()

    async def __aenter__(self) -> "RlzServer":
        if self._server is None:
            await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Run each connection as its own task and register it so close()
        # can drain (then cancel) live connections.
        handler = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(handler)
        self._connections_total += 1
        handler.add_done_callback(self._connections.discard)
        handler.add_done_callback(self._busy.discard)
        handler.add_done_callback(lambda t: self._conn_stats.pop(t, None))

    async def _read_frame(
        self, reader: asyncio.StreamReader, stats: ConnectionStats
    ) -> tuple:
        prefix = await reader.readexactly(4)
        length = protocol.frame_length(prefix, self._spec.max_frame_bytes)
        body = await reader.readexactly(length)
        stats.bytes_in += 4 + length
        return protocol.split_frame(body)

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        frame: bytes,
        stats: ConnectionStats,
    ) -> None:
        writer.write(frame)
        stats.bytes_out += len(frame)
        await writer.drain()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        stats = ConnectionStats(peer=str(peername))
        task = asyncio.current_task()
        if task is not None:
            self._conn_stats[task] = stats
        try:
            await self._handshake(reader, writer, stats)
            while not self._closing:
                try:
                    opcode, payload = await self._read_frame(reader, stats)
                except asyncio.IncompleteReadError:
                    return  # client hung up between requests: normal
                stats.count(opcode)
                self._requests += 1
                # Mark the connection busy while a request is in flight so a
                # graceful close drains it; idle connections (parked in the
                # read above) are cancelled immediately instead.
                if task is not None:
                    self._busy.add(task)
                try:
                    async with self._gate:  # backpressure, all connections
                        try:
                            await self._dispatch(opcode, payload, writer, stats)
                        except ProtocolError as exc:
                            stats.errors += 1
                            self._errors += 1
                            await self._write(
                                writer, protocol.error_to_frame(exc), stats
                            )
                            return  # framing no longer trustworthy
                        except ReproError as exc:
                            stats.errors += 1
                            self._errors += 1
                            await self._write(
                                writer, protocol.error_to_frame(exc), stats
                            )
                        except (ConnectionError, asyncio.IncompleteReadError):
                            return
                        except Exception as exc:  # server bug: report, go on
                            stats.errors += 1
                            self._errors += 1
                            await self._write(
                                writer, protocol.error_to_frame(exc), stats
                            )
                finally:
                    if task is not None:
                        self._busy.discard(task)
        except ProtocolError as exc:
            stats.errors += 1
            self._errors += 1
            try:
                await self._write(writer, protocol.error_to_frame(exc), stats)
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        stats: ConnectionStats,
    ) -> None:
        opcode, payload = await self._read_frame(reader, stats)
        if opcode != Opcode.HELLO:
            raise ProtocolError(
                f"expected HELLO, got {protocol.describe_opcode(opcode)}"
            )
        version = protocol.negotiate_version(protocol.unpack_hello(payload))
        await self._write(
            writer,
            protocol.encode_frame(Opcode.R_HELLO, protocol.pack_hello_reply(version)),
            stats,
        )

    async def _dispatch(
        self,
        opcode: int,
        payload: bytes,
        writer: asyncio.StreamWriter,
        stats: ConnectionStats,
    ) -> None:
        if opcode == Opcode.PING:
            await self._write(
                writer, protocol.encode_frame(Opcode.R_PONG, payload), stats
            )
        elif opcode == Opcode.GET:
            document = await self._front.get(protocol.unpack_doc_id(payload))
            await self._write(
                writer, protocol.encode_frame(Opcode.R_DOC, document), stats
            )
        elif opcode == Opcode.GET_MANY:
            documents = await self._front.get_many(protocol.unpack_doc_ids(payload))
            await self._write(
                writer,
                protocol.encode_frame(Opcode.R_DOCS, protocol.pack_documents(documents)),
                stats,
            )
        elif opcode == Opcode.ITER:
            # Stream one document per frame (decodes go through the front,
            # so the cache tier and coalescing apply), then terminate.
            for doc_id in self._front.archive.doc_ids():
                document = await self._front.get(doc_id)
                await self._write(
                    writer,
                    protocol.encode_frame(
                        Opcode.R_ITEM, protocol.pack_item(doc_id, document)
                    ),
                    stats,
                )
            await self._write(writer, protocol.encode_frame(Opcode.R_END), stats)
        elif opcode == Opcode.STATS:
            await self._write(
                writer,
                protocol.encode_frame(Opcode.R_STATS, protocol.pack_stats(self.stats())),
                stats,
            )
        elif opcode == Opcode.DOC_IDS:
            await self._write(
                writer,
                protocol.encode_frame(
                    Opcode.R_DOC_IDS,
                    protocol.pack_doc_ids(self._front.archive.doc_ids()),
                ),
                stats,
            )
        else:
            raise ProtocolError(
                f"unknown request opcode {protocol.describe_opcode(opcode)}"
            )


class BackgroundServer:
    """Run an :class:`RlzServer` on its own event-loop thread.

    Synchronous code (tests, benchmarks, the quickstart example) uses this
    to put an archive on a socket without restructuring around asyncio::

        with BackgroundServer(path, config) as server:
            client = RlzClient(*server.address)
            ...

    ``stop()`` (or leaving the ``with`` block) performs the server's
    graceful shutdown and returns its final stats snapshot.
    """

    def __init__(
        self,
        path: Union[str, Path],
        config: Optional[ArchiveConfig] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self._path = Path(path)
        self._config = config or ArchiveConfig()
        self._max_workers = max_workers
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[RlzServer] = None
        self._final_stats: Dict[str, float] = {}

    @property
    def address(self) -> tuple:
        """``(host, port)`` of the live server."""
        if self._server is None:
            raise ProtocolError("BackgroundServer is not running")
        return self._server.host, self._server.port

    def stats(self) -> Dict[str, float]:
        """A live stats snapshot (final snapshot after :meth:`stop`)."""
        if self._server is None or self._loop is None:
            return dict(self._final_stats)
        return asyncio.run_coroutine_threadsafe(
            self._snapshot(), self._loop
        ).result(timeout=30)

    async def _snapshot(self) -> Dict[str, float]:
        return self._server.stats()

    def start(self) -> tuple:
        """Start the loop thread and the server; returns ``(host, port)``."""
        if self._server is not None:
            raise ProtocolError("BackgroundServer already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="rlz-serve-loop", daemon=True
        )
        self._thread.start()

        async def boot() -> RlzServer:
            server = RlzServer.open(
                self._path, self._config, max_workers=self._max_workers
            )
            await server.start()
            return server

        try:
            self._server = asyncio.run_coroutine_threadsafe(
                boot(), self._loop
            ).result(timeout=60)
        except Exception:
            self._teardown_loop()
            raise
        return self.address

    def stop(self) -> Dict[str, float]:
        """Gracefully shut the server down; returns the final stats."""
        if self._server is not None and self._loop is not None:
            async def shutdown() -> Dict[str, float]:
                stats = self._server.stats()
                await self._server.close()
                return stats

            try:
                self._final_stats = asyncio.run_coroutine_threadsafe(
                    shutdown(), self._loop
                ).result(timeout=60)
            finally:
                self._server = None
                self._teardown_loop()
        return dict(self._final_stats)

    def _teardown_loop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=30)
            self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
