"""The asyncio :class:`RlzServer`: archives behind a socket.

The server separates **connection handling** (this module) from **archive
dispatch** (:class:`repro.serve.router.RlzRouter`): every server owns one
router, the router hosts any number of named archives (each a lazily
opened :class:`repro.api.AsyncRlzArchive`), and a connection's HELLO picks
the archive it talks to.

* every connection handshakes (magic + version negotiation + archive
  name), then issues request frames and reads responses; connections are
  independent and a slow client never blocks another (each connection
  runs its own task);
* protocol-**v1** connections keep PR 4's strict request/response loop:
  one request in flight, replies in order;
* protocol-**v2** connections are *pipelined*: every request frame
  carries a u32 request id, the server runs each request as its own task
  and writes replies as they finish — out of order when that is faster —
  tagged with the originating id.  ``max_pipeline`` bounds how many
  requests one connection may have in flight before the server stops
  reading its frames (natural TCP backpressure);
* a per-archive **backpressure gate** bounds the number of requests being
  served at once across *all* connections (``max_inflight``); excess
  requests wait in order at the gate, and once the queue is a full gate
  deep, v2 requests are shed with an ``R_BUSY`` hint instead of queueing
  (v1 clients, which cannot parse it, keep queueing).  The R_BUSY payload
  carries the queue depth and a retry-after estimate from the archive's
  service-time EWMA, so shed clients back off proportionally;
* protocol-**v3** request frames carry a millisecond **deadline**; a
  request whose deadline expired while it queued is answered with
  ``R_TIMEOUT`` and never touches the archive — decoding a document
  nobody is waiting for only deepens a brownout.  ``HEALTH`` requests
  bypass the gate entirely so load can be observed *during* saturation;
* archive failures travel back as structured error frames carrying the
  concrete :mod:`repro.errors` class, and the connection keeps serving;
  protocol violations (bad magic, oversized or truncated frames,
  duplicate request ids) close the connection after an error frame,
  because its framing can no longer be trusted;
* **graceful shutdown**: :meth:`close` stops accepting, gives in-flight
  requests ``drain_seconds`` to finish, cancels stragglers, and closes
  the router (and with it every owned archive and cache tier).

:class:`BackgroundServer` runs the whole thing on a dedicated event-loop
thread — the handle tests, benchmarks and examples use to serve and keep
interacting from synchronous code.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Set, Union

from ..api.async_front import AsyncRlzArchive
from ..api.config import ArchiveConfig, ServeSpec
from ..errors import ProtocolError, ReproError, SearchError, StorageError
from ..search.serving import GlobalStats
from . import protocol
from .protocol import Opcode
from .router import ArchiveEntry, RlzRouter

__all__ = ["BackgroundServer", "ConnectionStats", "RlzServer"]

#: Documents per R_CHUNK frame when a SCAN request does not say.
DEFAULT_SCAN_CHUNK = 64


class _WrongShard(Exception):
    """Internal: a fetch crossed onto an arc this shard no longer owns.

    Raised mid-dispatch (e.g. a concurrent epoch install shed the doc
    between the ownership check and the store read) and translated into an
    ``R_WRONG_SHARD`` reply — never propagated to the protocol layer.
    """

    def __init__(self, doc_id: int) -> None:
        super().__init__(f"doc {doc_id} is not owned by this shard")
        self.doc_id = doc_id


@dataclass
class ConnectionStats:
    """What one client connection has cost so far."""

    peer: str
    version: int = 0
    archive: str = ""
    requests: int = 0
    errors: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    by_opcode: Dict[str, int] = field(default_factory=dict)

    def count(self, opcode: int) -> None:
        self.requests += 1
        name = protocol.describe_opcode(opcode)
        self.by_opcode[name] = self.by_opcode.get(name, 0) + 1


class _Connection:
    """One client connection: handshake, then the version's request loop."""

    def __init__(
        self,
        server: "RlzServer",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.stats = ConnectionStats(peer=str(writer.get_extra_info("peername")))
        self.version = protocol.PROTOCOL_V1
        self.entry: Optional[ArchiveEntry] = None
        #: Request tasks in flight on this (v2) connection.
        self.tasks: Set[asyncio.Task] = set()
        self.inflight_ids: Set[int] = set()

    # -- I/O ------------------------------------------------------------
    async def read_body(self) -> bytes:
        prefix = await self.reader.readexactly(4)
        length = protocol.frame_length(prefix, self.server.spec.max_frame_bytes)
        body = await self.reader.readexactly(length)
        self.stats.bytes_in += 4 + length
        return body

    async def write_frame(self, frame: bytes) -> None:
        self.writer.write(frame)
        self.stats.bytes_out += len(frame)
        await self.writer.drain()

    async def respond(
        self, opcode: int, payload: bytes = b"", request_id: Optional[int] = None
    ) -> None:
        """One reply frame in the connection's negotiated framing."""
        if request_id is None:
            await self.write_frame(protocol.encode_frame(opcode, payload))
        elif self.version >= protocol.PROTOCOL_V3:
            await self.write_frame(protocol.encode_reply3(opcode, request_id, payload))
        else:
            await self.write_frame(protocol.encode_frame2(opcode, request_id, payload))


class RlzServer:
    """Serve one or many archives over a TCP socket.

    Parameters
    ----------
    source:
        What to serve: a pre-opened :class:`AsyncRlzArchive` (the
        single-archive path; with ``own_front=True`` the server closes it
        on shutdown) or an :class:`RlzRouter` hosting named archives.
    spec:
        The :class:`ServeSpec` carrying host/port/backpressure settings
        (defaults to ``ServeSpec()``: loopback, ephemeral port).
    """

    def __init__(
        self,
        source: Union[AsyncRlzArchive, RlzRouter],
        spec: Optional[ServeSpec] = None,
        own_front: bool = True,
    ) -> None:
        self._spec = spec or ServeSpec()
        if isinstance(source, RlzRouter):
            self._router = source
        else:
            self._router = RlzRouter.for_front(
                source,
                config=ArchiveConfig(serve=self._spec),
                owned=own_front,
            )
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[asyncio.Task] = set()
        self._busy: Set[asyncio.Task] = set()
        self._conn_stats: Dict[asyncio.Task, ConnectionStats] = {}
        self._conn_objects: Dict[asyncio.Task, _Connection] = {}
        self._closing = False
        self._closed = False
        self._connections_total = 0
        self._requests = 0
        self._errors = 0
        self._busy_rejections = 0
        self._deadline_rejections = 0

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        config: Optional[ArchiveConfig] = None,
        max_workers: Optional[int] = None,
    ) -> "RlzServer":
        """Open one archive, wrap it in an async front, and build a server
        configured by ``config.serve`` (not yet started)."""
        config = config or ArchiveConfig()
        front = AsyncRlzArchive.open(path, config, max_workers=max_workers)
        return cls(front, spec=config.serve)

    @classmethod
    def open_many(
        cls,
        archives: Mapping[str, Union[str, Path]],
        config: Optional[ArchiveConfig] = None,
        default: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> "RlzServer":
        """A server hosting every named archive (each opened lazily on the
        first connection that asks for it)."""
        config = config or ArchiveConfig()
        router = RlzRouter(
            archives, config=config, default=default, max_workers=max_workers
        )
        return cls(router, spec=config.serve)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def front(self) -> AsyncRlzArchive:
        """The default archive's async front (single-archive compatibility
        accessor; raises until the archive has been opened)."""
        return self._router.default_front()

    @property
    def router(self) -> RlzRouter:
        """The archive router behind this server."""
        return self._router

    @property
    def spec(self) -> ServeSpec:
        """The serve configuration."""
        return self._spec

    @property
    def host(self) -> str:
        return self._spec.host

    @property
    def port(self) -> int:
        """The actual bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self._spec.port

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> Dict[str, float]:
        """Server counters merged with the router's per-archive stats."""
        snapshot = self._router.stats()
        snapshot["server_connections_total"] = self._connections_total
        snapshot["server_connections_active"] = len(self._connections)
        snapshot["server_requests"] = self._requests
        snapshot["server_errors"] = self._errors
        snapshot["server_busy_rejections"] = self._busy_rejections
        snapshot["server_deadline_rejections"] = self._deadline_rejections
        snapshot["server_inflight_capacity"] = self._spec.max_inflight
        return snapshot

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ProtocolError("server already started")
        self._server = await asyncio.start_server(
            self._on_connection, host=self._spec.host, port=self._spec.port
        )

    async def serve_forever(self) -> None:
        """Block until :meth:`close` (convenience for CLI use)."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def close(self) -> None:
        """Graceful shutdown: drain in-flight requests, then release.

        Stops accepting, cancels *idle* connections immediately (they are
        parked waiting for a next request that will never be answered),
        waits up to ``drain_seconds`` for connections serving a request to
        finish it, cancels stragglers, and closes the router (and every
        owned front).  Idempotent.
        """
        if self._closed:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [task for task in self._connections if not task.done()]
        idle = [task for task in pending if task not in self._busy]
        busy = [task for task in pending if task in self._busy]
        for task in idle:
            task.cancel()
        # What actually needs the drain window: v1 connection tasks finish
        # their in-flight request inside the task itself; a pipelined v2
        # connection task is parked reading the socket and never finishes
        # on its own — its in-flight *request tasks* are the drain target.
        drain_targets = []
        for task in busy:
            conn = self._conn_objects.get(task)
            if conn is not None and conn.version >= 2:
                drain_targets.extend(t for t in conn.tasks if not t.done())
            else:
                drain_targets.append(task)
        if drain_targets:
            done, still_pending = await asyncio.wait(
                drain_targets, timeout=self._spec.drain_seconds
            )
            for task in still_pending:
                task.cancel()
        for task in busy:
            if not task.done():
                task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._closed = True
        await self._router.close()

    async def __aenter__(self) -> "RlzServer":
        if self._server is None:
            await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Run each connection as its own task and register it so close()
        # can drain (then cancel) live connections.
        handler = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(handler)
        self._connections_total += 1
        handler.add_done_callback(self._connections.discard)
        handler.add_done_callback(self._busy.discard)
        handler.add_done_callback(lambda t: self._conn_stats.pop(t, None))
        handler.add_done_callback(lambda t: self._conn_objects.pop(t, None))

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(self, reader, writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_stats[task] = conn.stats
            self._conn_objects[task] = conn
        try:
            await self._handshake(conn)
            if conn.version >= 2:
                await self._run_pipelined(conn, task)
            else:
                await self._run_sequential(conn, task)
        except (ProtocolError, ReproError) as exc:
            # Handshake failures (bad magic/version, unknown archive name)
            # answer in v1 framing — nothing is negotiated yet.  After a
            # v2 handshake, connection-level errors are v2-framed with the
            # reserved request id 0 so a compliant client parses them.
            conn.stats.errors += 1
            self._errors += 1
            try:
                if conn.version >= 2:
                    await conn.respond(
                        Opcode.R_ERROR, protocol.pack_error_for(exc), 0
                    )
                else:
                    await conn.write_frame(protocol.error_to_frame(exc))
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            for pending in conn.tasks:
                pending.cancel()
            if conn.tasks:
                await asyncio.gather(*conn.tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(self, conn: _Connection) -> None:
        opcode, payload = protocol.split_frame(await conn.read_body())
        if opcode != Opcode.HELLO:
            raise ProtocolError(
                f"expected HELLO, got {protocol.describe_opcode(opcode)}"
            )
        client_version, archive_name = protocol.unpack_hello(payload)
        version = protocol.negotiate_version(client_version)
        conn.entry = await self._router.resolve(archive_name)
        conn.version = version
        conn.stats.version = version
        conn.stats.archive = conn.entry.name
        # The whole handshake speaks v1 framing; the negotiated framing
        # starts with the first frame after R_HELLO.
        await conn.write_frame(
            protocol.encode_frame(Opcode.R_HELLO, protocol.pack_hello_reply(version))
        )

    # ------------------------------------------------------------------
    # v1: strict request/response
    # ------------------------------------------------------------------
    async def _run_sequential(
        self, conn: _Connection, task: Optional[asyncio.Task]
    ) -> None:
        entry = conn.entry
        while not self._closing:
            try:
                opcode, payload = protocol.split_frame(await conn.read_body())
            except asyncio.IncompleteReadError:
                return  # client hung up between requests: normal
            conn.stats.count(opcode)
            self._requests += 1
            entry.requests += 1
            # Mark the connection busy while a request is in flight so a
            # graceful close drains it; idle connections (parked in the
            # read above) are cancelled immediately instead.
            if task is not None:
                self._busy.add(task)
            try:
                # HEALTH and SHARD_MAP are pure bookkeeping and must stay
                # answerable while the gate is saturated — no queueing.
                if opcode == Opcode.HEALTH:
                    await conn.respond(
                        Opcode.R_HEALTH, protocol.pack_health(self._router.health())
                    )
                    continue
                if opcode == Opcode.SHARD_MAP:
                    await self._answer_shard_map(conn, None)
                    continue
                entry.waiting += 1
                try:
                    await entry.gate.acquire()
                finally:
                    entry.waiting -= 1
                entry.active += 1
                started = time.monotonic()
                try:
                    await self._dispatch(conn, opcode, payload, None)
                finally:
                    entry.active -= 1
                    entry.observe(time.monotonic() - started)
                    entry.gate.release()
            except ProtocolError as exc:
                self._count_error(conn)
                await conn.write_frame(protocol.error_to_frame(exc))
                return  # framing no longer trustworthy
            except ReproError as exc:
                self._count_error(conn)
                await conn.write_frame(protocol.error_to_frame(exc))
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            except Exception as exc:  # server bug: report, go on
                self._count_error(conn)
                await conn.write_frame(protocol.error_to_frame(exc))
            finally:
                if task is not None:
                    self._busy.discard(task)

    # ------------------------------------------------------------------
    # v2: pipelined, out-of-order replies
    # ------------------------------------------------------------------
    async def _run_pipelined(
        self, conn: _Connection, task: Optional[asyncio.Task]
    ) -> None:
        window = asyncio.Semaphore(self._spec.max_pipeline)
        while not self._closing:
            # Stop reading frames while the pipeline window is full: the
            # kernel buffer fills and the client blocks — backpressure
            # without bookkeeping.
            await window.acquire()
            try:
                body = await conn.read_body()
            except asyncio.IncompleteReadError:
                window.release()
                return  # client hung up between requests: normal
            # v3 request frames carry a millisecond deadline after the
            # request id; v2 frames have none.  Responses use v2 framing
            # either way.  The deadline is pinned to the monotonic clock
            # *now*, at frame-read time — queueing counts against it.
            if conn.version >= protocol.PROTOCOL_V3:
                opcode, request_id, deadline_ms, payload = protocol.split_frame3(body)
            else:
                opcode, request_id, payload = protocol.split_frame2(body)
                deadline_ms = 0
            deadline_at = (
                time.monotonic() + deadline_ms / 1000.0 if deadline_ms else None
            )
            if request_id in conn.inflight_ids:
                # A duplicate id would make two replies indistinguishable:
                # the connection's correlation state is untrustworthy.
                exc = ProtocolError(
                    f"duplicate request id {request_id} is already in flight"
                )
                self._count_error(conn)
                await conn.respond(
                    Opcode.R_ERROR, protocol.pack_error_for(exc), request_id
                )
                window.release()
                return
            conn.stats.count(opcode)
            self._requests += 1
            conn.entry.requests += 1
            conn.inflight_ids.add(request_id)
            if task is not None:
                self._busy.add(task)
            request = asyncio.ensure_future(
                self._run_request(conn, opcode, request_id, payload, deadline_at)
            )
            conn.tasks.add(request)

            def _done(done_task: asyncio.Task, request_id=request_id) -> None:
                conn.tasks.discard(done_task)
                conn.inflight_ids.discard(request_id)
                window.release()
                if not conn.tasks and task is not None:
                    self._busy.discard(task)

            request.add_done_callback(_done)
        # Drain politely on server shutdown.
        if conn.tasks:
            await asyncio.gather(*conn.tasks, return_exceptions=True)

    async def _run_request(
        self,
        conn: _Connection,
        opcode: int,
        request_id: int,
        payload: bytes,
        deadline_at: Optional[float] = None,
    ) -> None:
        """One pipelined request: deadline check, gate, dispatch, reply."""
        entry = conn.entry
        try:
            # HEALTH and SHARD_MAP are pure bookkeeping and must stay
            # answerable while the gate is saturated — no queueing.
            if opcode == Opcode.HEALTH:
                await conn.respond(
                    Opcode.R_HEALTH,
                    protocol.pack_health(self._router.health()),
                    request_id,
                )
                return
            if opcode == Opcode.SHARD_MAP:
                await self._answer_shard_map(conn, request_id)
                return
            if deadline_at is not None and time.monotonic() >= deadline_at:
                await self._reject_expired(conn, entry, request_id)
                return
            # Shed load once the gate queue is itself a full gate deep: a
            # v2 client knows R_BUSY means "retry in a moment, elsewhere
            # if you have a replica".  The payload tells it *when*: queue
            # depth plus a retry-after estimate from the service EWMA.
            if entry.gate.locked() and entry.waiting >= entry.max_inflight:
                entry.busy_rejections += 1
                self._busy_rejections += 1
                await conn.respond(
                    Opcode.R_BUSY,
                    protocol.pack_busy(entry.retry_after_ms(), entry.waiting),
                    request_id,
                )
                return
            entry.waiting += 1
            try:
                await entry.gate.acquire()
            finally:
                entry.waiting -= 1
            try:
                # Re-check after the queue wait: a request whose deadline
                # expired at the gate is dead — decoding it would only
                # steal a slot from a request someone still wants.
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    await self._reject_expired(conn, entry, request_id)
                    return
                entry.active += 1
                started = time.monotonic()
                try:
                    await self._dispatch(conn, opcode, payload, request_id)
                finally:
                    entry.active -= 1
                    entry.observe(time.monotonic() - started)
            finally:
                entry.gate.release()
        except asyncio.CancelledError:
            raise
        except ProtocolError as exc:
            self._count_error(conn)
            try:
                await conn.respond(
                    Opcode.R_ERROR, protocol.pack_error_for(exc), request_id
                )
            except (ConnectionError, OSError):
                pass
            # The peer sent something structurally wrong: close the
            # transport, which unblocks the read loop and tears the
            # connection down (matching the v1 close-on-ProtocolError).
            conn.writer.close()
        except ReproError as exc:
            self._count_error(conn)
            await conn.respond(Opcode.R_ERROR, protocol.pack_error_for(exc), request_id)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        except Exception as exc:  # server bug: report, go on
            self._count_error(conn)
            await conn.respond(Opcode.R_ERROR, protocol.pack_error_for(exc), request_id)

    async def _reject_expired(
        self, conn: _Connection, entry: ArchiveEntry, request_id: int
    ) -> None:
        """Answer R_TIMEOUT for a request whose wire deadline has passed."""
        entry.deadline_rejections += 1
        self._deadline_rejections += 1
        await conn.respond(
            Opcode.R_TIMEOUT,
            b"request deadline expired before the server could serve it",
            request_id,
        )

    def _count_error(self, conn: _Connection) -> None:
        conn.stats.errors += 1
        self._errors += 1
        if conn.entry is not None:
            conn.entry.errors += 1

    # ------------------------------------------------------------------
    # Partitioned serving helpers
    # ------------------------------------------------------------------
    async def _answer_shard_map(
        self, conn: _Connection, request_id: Optional[int]
    ) -> None:
        """R_SHARD_MAP with the archive's current placement (pre-gate)."""
        epoch, labels, virtual_nodes = conn.entry.shard_map_reply()
        await conn.respond(
            Opcode.R_SHARD_MAP,
            protocol.pack_shard_map(epoch, labels, virtual_nodes),
            request_id,
        )

    async def _refuse_wrong_shard(
        self, conn: _Connection, doc_id: int, request_id: Optional[int]
    ) -> None:
        """R_WRONG_SHARD carrying the epoch this shard currently serves."""
        entry = conn.entry
        entry.wrong_shard_rejections += 1
        epoch = entry.partition.epoch if entry.partition is not None else 0
        await conn.respond(
            Opcode.R_WRONG_SHARD,
            protocol.pack_wrong_shard(epoch, doc_id),
            request_id,
        )

    def _first_unowned(self, entry: ArchiveEntry, doc_ids) -> Optional[int]:
        """The first doc id this shard does not own, or ``None``."""
        if entry.partition is None:
            return None
        for doc_id in doc_ids:
            if not entry.owns(doc_id):
                return doc_id
        return None

    async def _get_document(
        self, conn: _Connection, front: AsyncRlzArchive, doc_id: int
    ) -> bytes:
        """One owned document: overlay first, then the store.

        A store miss is re-judged against the *current* partition state —
        a concurrent epoch install may have shed the doc (refuse it as
        wrong-shard, not as a storage error) or committed it into a new
        front (retry there).
        """
        document = conn.entry.overlay.get(doc_id)
        if document is not None:
            return document
        try:
            return await front.get(doc_id)
        except StorageError:
            entry = conn.entry
            if not entry.owns(doc_id):
                raise _WrongShard(doc_id) from None
            if entry.front is not None and entry.front is not front:
                return await entry.front.get(doc_id)
            raise

    async def _get_batch(
        self, conn: _Connection, front: AsyncRlzArchive, doc_ids
    ) -> list:
        """A batch of owned documents, mixing overlay and store reads."""
        entry = conn.entry
        overlay_hits = {
            doc_id: entry.overlay[doc_id]
            for doc_id in doc_ids
            if doc_id in entry.overlay
        }
        misses = [doc_id for doc_id in doc_ids if doc_id not in overlay_hits]
        fetched: Dict[int, bytes] = {}
        if misses:
            try:
                documents = await front.get_many(misses)
            except StorageError:
                entry = conn.entry
                unowned = self._first_unowned(entry, misses)
                if unowned is not None:
                    raise _WrongShard(unowned) from None
                if entry.front is not None and entry.front is not front:
                    documents = await entry.front.get_many(misses)
                else:
                    raise
            fetched = dict(zip(misses, documents))
        return [
            overlay_hits[doc_id] if doc_id in overlay_hits else fetched[doc_id]
            for doc_id in doc_ids
        ]

    def _served_ids(self, entry: ArchiveEntry) -> list:
        """Every doc id this entry can serve right now, in store order.

        Store docs plus staged overlay docs; on a partitioned entry the
        order follows the manifest's global ``doc_order`` so a handoff
        does not reorder streams.
        """
        front_ids = entry.front.archive.doc_ids()
        extra = [doc_id for doc_id in entry.overlay if doc_id not in set(front_ids)]
        if not extra:
            return front_ids
        served = set(front_ids) | set(extra)
        if entry.partition is not None:
            return [
                doc_id
                for doc_id in entry.partition.manifest.doc_order
                if doc_id in served
            ]
        return front_ids + sorted(extra)

    # ------------------------------------------------------------------
    # Dispatch (shared by both request loops)
    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        conn: _Connection,
        opcode: int,
        payload: bytes,
        request_id: Optional[int],
    ) -> None:
        try:
            await self._dispatch_inner(conn, opcode, payload, request_id)
        except _WrongShard as exc:
            await self._refuse_wrong_shard(conn, exc.doc_id, request_id)

    async def _dispatch_inner(
        self,
        conn: _Connection,
        opcode: int,
        payload: bytes,
        request_id: Optional[int],
    ) -> None:
        entry = conn.entry
        front = entry.front
        if opcode == Opcode.PING:
            await conn.respond(Opcode.R_PONG, payload, request_id)
        elif opcode == Opcode.GET:
            doc_id = protocol.unpack_doc_id(payload)
            if not entry.owns(doc_id):
                raise _WrongShard(doc_id)
            document = await self._get_document(conn, front, doc_id)
            await conn.respond(Opcode.R_DOC, document, request_id)
        elif opcode == Opcode.GET_MANY:
            doc_ids = protocol.unpack_doc_ids(payload)
            unowned = self._first_unowned(entry, doc_ids)
            if unowned is not None:
                raise _WrongShard(unowned)
            documents = await self._get_batch(conn, front, doc_ids)
            await conn.respond(
                Opcode.R_DOCS, protocol.pack_documents(documents), request_id
            )
        elif opcode == Opcode.ITER:
            # Stream one document per frame (decodes go through the front,
            # so the cache tier and coalescing apply), then terminate.
            for doc_id in self._served_ids(entry):
                document = await self._get_document(conn, front, doc_id)
                await conn.respond(
                    Opcode.R_ITEM, protocol.pack_item(doc_id, document), request_id
                )
            await conn.respond(Opcode.R_END, b"", request_id)
        elif opcode == Opcode.SCAN:
            await self._dispatch_scan(conn, payload, request_id)
        elif opcode == Opcode.STATS:
            await conn.respond(
                Opcode.R_STATS, protocol.pack_stats(self.stats()), request_id
            )
        elif opcode == Opcode.DOC_IDS:
            if entry.partition is not None:
                doc_ids = list(entry.partition.manifest.doc_order)
            else:
                doc_ids = front.archive.doc_ids()
            await conn.respond(
                Opcode.R_DOC_IDS,
                protocol.pack_doc_ids(doc_ids),
                request_id,
            )
        elif opcode == Opcode.SHARD_MAP:
            # Normally answered pre-gate; kept here so a direct dispatch
            # (or a future loop refactor) cannot drop the opcode.
            await self._answer_shard_map(conn, request_id)
        elif opcode == Opcode.INGEST:
            items = protocol.unpack_chunk(payload)
            staged = await self._router.ingest(entry, items)
            await conn.respond(
                Opcode.R_DOC_IDS, protocol.pack_doc_ids(staged), request_id
            )
        elif opcode == Opcode.SEARCH:
            await self._dispatch_search(conn, payload, request_id)
        elif opcode == Opcode.INSTALL_MAP:
            epoch, labels, virtual_nodes = protocol.unpack_shard_map(payload)
            epoch, labels, virtual_nodes = await self._router.install_map(
                entry, epoch, labels, virtual_nodes
            )
            await conn.respond(
                Opcode.R_SHARD_MAP,
                protocol.pack_shard_map(epoch, labels, virtual_nodes),
                request_id,
            )
        else:
            raise ProtocolError(
                f"unknown request opcode {protocol.describe_opcode(opcode)}"
            )

    async def _dispatch_search(
        self, conn: _Connection, payload: bytes, request_id: Optional[int]
    ) -> None:
        """SEARCH: shard-local BM25 top-k over the persistent posting lists.

        Two request shapes share the opcode (see :mod:`repro.serve.protocol`):
        a *stats* leg (``stats_only``) returning this shard's corpus counts
        so a fan-out client can assemble exact global idf, and a *scoring*
        leg ranking with either shard-local statistics or the client's
        exchanged global ones.  When the request asks for snippets, each
        hit's window is materialized through the store's partial-decode
        path (:meth:`RlzStore.get_window`) — never a whole-document decode.
        """
        entry = conn.entry
        index = entry.search_index
        query, top_k, snippet_chars, stats_only, global_stats = protocol.unpack_search(
            payload
        )
        if index is None:
            raise SearchError(
                f"archive {entry.name!r} has no search index; build it with "
                "SearchSpec(enabled=True) (repro partition --search-index)"
            )
        entry.search_requests += 1
        loop = asyncio.get_running_loop()
        if stats_only:
            num_docs, total_length, frequencies = await loop.run_in_executor(
                None, index.term_stats, query
            )
            await conn.respond(
                Opcode.R_SEARCH,
                protocol.pack_search_stats(num_docs, total_length, frequencies),
                request_id,
            )
            return
        spec = entry.config.search
        stats_arg = (
            GlobalStats(
                num_documents=global_stats[0],
                total_doc_length=global_stats[1],
                document_frequencies=global_stats[2],
            )
            if global_stats is not None
            else None
        )

        def _score():
            return index.search(
                query, top_k=top_k, k1=spec.k1, b=spec.b, global_stats=stats_arg
            )

        hits = await loop.run_in_executor(None, _score)
        store = entry.front.archive.store
        wire_hits = []
        for hit in hits:
            snippet = b""
            snippet_start = 0
            if snippet_chars > 0:
                # Center the window on the first occurrence of a matched
                # query term; decode only the covering factors.
                snippet_start = max(0, hit.hit_offset - snippet_chars // 2)
                snippet = await loop.run_in_executor(
                    None, store.get_window, hit.doc_id, snippet_start, snippet_chars
                )
            wire_hits.append(
                protocol.SearchHit(
                    doc_id=hit.doc_id,
                    score=hit.score,
                    snippet=snippet,
                    snippet_start=snippet_start,
                )
            )
        await conn.respond(
            Opcode.R_SEARCH, protocol.pack_search_results(wire_hits), request_id
        )

    async def _dispatch_scan(
        self, conn: _Connection, payload: bytes, request_id: Optional[int]
    ) -> None:
        """Bulk scan: batched container reads, many documents per frame.

        Unlike ITER (one ``get`` and one frame per document), SCAN decodes
        ``chunk_docs`` documents per batched ``get_many`` — one vectorized
        pass over the container per chunk — and ships each batch as one
        R_CHUNK frame.  An explicit doc-id list scans just that subset, in
        the requested order (the cluster client uses this to scan only the
        documents a shard owns).

        Ownership is re-checked per chunk on a partitioned archive: a
        rebalance that sheds part of the requested set mid-stream turns
        into an ``R_WRONG_SHARD`` (the client re-plans from the moved
        document) instead of stale bytes.
        """
        entry = conn.entry
        front = entry.front
        chunk_docs, doc_ids = protocol.unpack_scan(payload)
        if not doc_ids:
            doc_ids = self._served_ids(entry)
        chunk = chunk_docs or DEFAULT_SCAN_CHUNK
        for start in range(0, len(doc_ids), chunk):
            batch = doc_ids[start : start + chunk]
            unowned = self._first_unowned(entry, batch)
            if unowned is not None:
                raise _WrongShard(unowned)
            documents = await self._get_batch(conn, front, batch)
            await conn.respond(
                Opcode.R_CHUNK,
                protocol.pack_chunk(list(zip(batch, documents))),
                request_id,
            )
        await conn.respond(Opcode.R_END, b"", request_id)


class BackgroundServer:
    """Run an :class:`RlzServer` on its own event-loop thread.

    Synchronous code (tests, benchmarks, the quickstart example) uses this
    to put one archive — or a named map of archives — on a socket without
    restructuring around asyncio::

        with BackgroundServer(path, config) as server:
            client = RlzClient(*server.address)
            ...

        with BackgroundServer({"gov": gov_path, "wiki": wiki_path}) as server:
            client = RlzClient(*server.address, archive="wiki")
            ...

    ``stop()`` (or leaving the ``with`` block) performs the server's
    graceful shutdown and returns its final stats snapshot.
    """

    def __init__(
        self,
        source: Union[str, Path, Mapping[str, Union[str, Path]]],
        config: Optional[ArchiveConfig] = None,
        max_workers: Optional[int] = None,
        default: Optional[str] = None,
    ) -> None:
        self._source = source
        self._config = config or ArchiveConfig()
        self._max_workers = max_workers
        self._default = default
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[RlzServer] = None
        self._final_stats: Dict[str, float] = {}

    @property
    def address(self) -> tuple:
        """``(host, port)`` of the live server."""
        if self._server is None:
            raise ProtocolError("BackgroundServer is not running")
        return self._server.host, self._server.port

    def stats(self) -> Dict[str, float]:
        """A live stats snapshot (final snapshot after :meth:`stop`)."""
        if self._server is None or self._loop is None:
            return dict(self._final_stats)
        return asyncio.run_coroutine_threadsafe(
            self._snapshot(), self._loop
        ).result(timeout=30)

    async def _snapshot(self) -> Dict[str, float]:
        return self._server.stats()

    def start(self) -> tuple:
        """Start the loop thread and the server; returns ``(host, port)``."""
        if self._server is not None:
            raise ProtocolError("BackgroundServer already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="rlz-serve-loop", daemon=True
        )
        self._thread.start()

        async def boot() -> RlzServer:
            # Archive opens read container headers and dictionaries off
            # disk; keep them off the event loop so the loop stays
            # responsive from its very first request.
            loop = asyncio.get_running_loop()
            if isinstance(self._source, Mapping):
                server = await loop.run_in_executor(
                    None,
                    lambda: RlzServer.open_many(
                        self._source,
                        self._config,
                        default=self._default,
                        max_workers=self._max_workers,
                    ),
                )
            else:
                server = await loop.run_in_executor(
                    None,
                    lambda: RlzServer.open(
                        self._source, self._config, max_workers=self._max_workers
                    ),
                )
            await server.start()
            return server

        try:
            self._server = asyncio.run_coroutine_threadsafe(
                boot(), self._loop
            ).result(timeout=60)
        except Exception:
            self._teardown_loop()
            raise
        return self.address

    def stop(self) -> Dict[str, float]:
        """Gracefully shut the server down; returns the final stats."""
        if self._server is not None and self._loop is not None:
            async def shutdown() -> Dict[str, float]:
                stats = self._server.stats()
                await self._server.close()
                return stats

            try:
                self._final_stats = asyncio.run_coroutine_threadsafe(
                    shutdown(), self._loop
                ).result(timeout=60)
            finally:
                self._server = None
                self._teardown_loop()
        return dict(self._final_stats)

    def _teardown_loop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=30)
            self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
