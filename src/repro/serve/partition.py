"""Partitioned builds: one collection in, N per-shard stores out.

``repro partition`` (and :func:`build_partitioned_archives` behind it)
splits a collection across N RPRC2 containers by consistent hash: each
shard's container holds *only* the documents whose arc of doc-id space it
owns under the :class:`~repro.serve.cluster.ShardMap` recorded in its
partition manifest.  This retires the cluster layer's "every replica has
everything" assumption — a partitioned fleet stores each document once.

Placement hashes logical *ring ids* (``"shard0"`` … ``"shardN-1"`` by
default), not transport addresses: the manifest's shard labels stay
stable when a shard moves hosts, and serving labels of the form
``ringid@host:port`` graft the transport on without remapping a single
document (see :meth:`ShardMap.ring_id`).

Dictionary policy follows :class:`~repro.api.config.PartitionSpec`:

``shared_dictionary=True`` (default)
    One dictionary is sampled from the *whole* collection, the whole
    collection is compressed once, and the encoded blobs are dealt out to
    shards.  Every shard embeds the same dictionary, so a document's
    encoded bytes are identical to a full-replica build — and rebalances
    can copy blobs between shards verbatim.
``shared_dictionary=False``
    Each shard samples its own dictionary from its own documents —
    smaller build memory, shard-local tuning, but shards can no longer
    exchange encoded blobs (rebalances re-encode; an empty shard borrows
    the first non-empty shard's dictionary so it can still decode staged
    documents later).

:func:`write_spare_shard` writes the empty container a rebalance
*recipient* starts from: same dictionary, scheme and global doc order as
the fleet, zero documents, and a manifest naming a ring id that is not in
the map yet — a *joining* shard that owns nothing until an INSTALL_MAP
adds it to the ring.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..api.archive import DocumentSource, _as_collection
from ..api.config import ArchiveConfig, PartitionSpec
from ..core.compressor import (
    CompressedCollection,
    DictionaryConfig,
    RlzCompressor,
)
from ..corpus.document import DocumentCollection
from ..errors import ConfigurationError, StorageError
from ..storage.container import read_container_header, write_container
from ..storage.document_map import DocumentMap
from ..search.serving import index_sidecar_path, write_postings
from ..storage.partition import PartitionManifest, read_manifest
from ..storage.rlz_store import RlzStore
from .cluster import ShardMap

__all__ = ["build_partitioned_archives", "write_spare_shard"]


def _compressor_for(
    config: ArchiveConfig, collection: DocumentCollection
) -> RlzCompressor:
    """The compressor RlzArchive.build would use for this collection."""
    spec = config.dictionary
    return RlzCompressor(
        dictionary_config=DictionaryConfig(
            size=spec.sized_for(collection.total_size),
            sample_size=spec.sample_size,
            policy=spec.policy,
            prefix_fraction=spec.prefix_fraction,
            seed=spec.seed,
        ),
        scheme=config.encoding.scheme,
        sa_algorithm=spec.sa_algorithm,
        accelerated=spec.accelerated,
        workers=config.parallel.workers,
        start_method=config.parallel.start_method,
        share_memory=config.parallel.share_memory,
        jump_start=spec.jump_start,
    )


def build_partitioned_archives(
    collection_or_docs: DocumentSource,
    config: Optional[ArchiveConfig] = None,
    directory: Path | str = ".",
    labels: Optional[Sequence[str]] = None,
) -> Dict[str, Path]:
    """Build one store per shard and return ``{label: container_path}``.

    ``labels`` defaults to ``shard0`` … ``shardN-1`` with
    ``N = config.partition.shards``; pass explicit labels (bare ring ids
    or ``ringid@host:port``) to control naming.  Each container lands at
    ``directory/<ring_id>.rlz`` and holds exactly the documents whose
    consistent-hash arc its ring id owns — nothing else.
    """
    config = config or ArchiveConfig()
    spec: PartitionSpec = config.partition
    collection = _as_collection(collection_or_docs)
    if labels is None:
        labels = [f"shard{index}" for index in range(spec.shards)]
    elif not labels:
        raise ConfigurationError("a partitioned build needs at least one shard")
    ring = ShardMap(list(labels), virtual_nodes=spec.virtual_nodes, epoch=spec.epoch)
    ring_ids = [ShardMap.ring_id(label) for label in labels]

    doc_order = [document.doc_id for document in collection]
    owned: Dict[str, List] = {ring_id: [] for ring_id in ring_ids}
    for document in collection:
        owned[ShardMap.ring_id(ring.primary(document.doc_id))].append(document)

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    shard_compressed: Dict[str, CompressedCollection] = {}
    if spec.shared_dictionary:
        # One dictionary, one encode pass; blobs are dealt out per shard
        # and stay byte-identical to a full-replica build.
        compressed = _compressor_for(config, collection).compress(collection)
        by_id = {document.doc_id: document for document in compressed.documents}
        for ring_id in ring_ids:
            shard_compressed[ring_id] = CompressedCollection(
                dictionary=compressed.dictionary,
                scheme_name=compressed.scheme_name,
                documents=[by_id[doc.doc_id] for doc in owned[ring_id]],
                collection_name=compressed.collection_name,
            )
    else:
        for ring_id in ring_ids:
            documents = owned[ring_id]
            if not documents:
                continue
            sub = DocumentCollection(
                documents, name=f"{collection.name}/{ring_id}"
            )
            shard_compressed[ring_id] = _compressor_for(config, sub).compress(sub)
        donor = next(
            (shard_compressed[r] for r in ring_ids if r in shard_compressed), None
        )
        if donor is None:
            raise ConfigurationError(
                "cannot build per-shard dictionaries: every shard is empty"
            )
        for ring_id in ring_ids:
            # An empty shard still needs *a* dictionary to decode staged
            # documents after a future rebalance: borrow one.
            if ring_id not in shard_compressed:
                shard_compressed[ring_id] = CompressedCollection(
                    dictionary=donor.dictionary,
                    scheme_name=donor.scheme_name,
                    documents=[],
                    collection_name=f"{collection.name}/{ring_id}",
                )

    paths: Dict[str, Path] = {}
    for label, ring_id in zip(labels, ring_ids):
        manifest = PartitionManifest(
            epoch=spec.epoch,
            shard=label,
            shards=tuple(labels),
            virtual_nodes=spec.virtual_nodes,
            doc_order=tuple(doc_order),
        )
        path = directory / f"{ring_id}.rlz"
        RlzStore.write(
            shard_compressed[ring_id],
            path,
            extra_metadata={"partition": manifest.to_metadata()},
        )
        if config.search.enabled:
            # Each shard indexes exactly the documents it owns: the
            # SEARCH fan-out unions per-shard results, so one document
            # indexed twice would be scored (and returned) twice.
            write_postings(
                (
                    (document.doc_id, document.content)
                    for document in owned[ring_id]
                ),
                index_sidecar_path(path),
            )
        paths[label] = path
    return paths


def write_spare_shard(
    source_path: Path | str, path: Path | str, label: str
) -> Path:
    """Write the empty container a rebalance recipient starts from.

    Clones the fleet's dictionary, scheme and global doc order from an
    existing shard container at ``source_path``, holds zero documents,
    and records ``label`` as a *joining* ring id: it is not in the copied
    shard map, so the new server owns nothing (and refuses every doc id)
    until ``repro rebalance`` streams its arc over and installs the epoch
    that adds it to the ring.
    """
    source_path = Path(source_path)
    path = Path(path)
    manifest = read_manifest(source_path)
    if manifest is None:
        raise StorageError(f"{source_path} is not a partitioned shard container")
    header = read_container_header(source_path)
    if header.store_type != "rlz":
        raise StorageError(
            f"cannot clone a {header.store_type!r} container as a spare shard"
        )
    joining = PartitionManifest(
        epoch=manifest.epoch,
        shard=label,
        shards=manifest.shards,
        virtual_nodes=manifest.virtual_nodes,
        doc_order=manifest.doc_order,
    )
    metadata = dict(header.metadata)
    metadata["original_size"] = 0
    metadata["partition"] = joining.to_metadata()
    write_container(
        path,
        header.store_type,
        metadata,
        DocumentMap(),
        header.dictionary,
        b"",
    )
    return path
