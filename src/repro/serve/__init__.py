"""Network serving: the archive behind a socket, clients that mirror it.

The paper's claim is that RLZ makes retrieval from a compressed web
collection cheap enough to *serve from*; this package makes that serving
story cross the process boundary:

* :mod:`repro.serve.protocol` — the length-prefixed binary wire protocol:
  framed request/response with opcodes for ``get``/``get_many``/
  ``iter_documents``/``stats``/``ping``, structured error frames that
  round-trip every :mod:`repro.errors` class, and protocol version
  negotiation;
* :class:`RlzServer` — the asyncio server over
  :class:`repro.api.AsyncRlzArchive`: per-connection stats, a
  ``max_inflight`` backpressure gate shared by all connections, and
  graceful drain-then-cancel shutdown (:class:`BackgroundServer` runs it
  on a dedicated thread for synchronous callers);
* :class:`RlzClient` / :class:`AsyncRlzClient` — clients implementing the
  same :class:`repro.api.ArchiveView` surface as a local
  :class:`repro.api.RlzArchive`, with connection pooling and retry, so
  everything written against the facade runs unchanged against a remote
  archive.

Configuration lives in :class:`repro.api.ServeSpec` (the ``serve`` section
of :class:`repro.api.ArchiveConfig`); the CLI front ends are ``repro
serve`` and ``repro get --connect``.
"""

from .client import AsyncRlzClient, RlzClient
from .protocol import ERROR_CODES, MAGIC, PROTOCOL_VERSION, Opcode
from .server import BackgroundServer, ConnectionStats, RlzServer

__all__ = [
    "AsyncRlzClient",
    "BackgroundServer",
    "ConnectionStats",
    "ERROR_CODES",
    "MAGIC",
    "Opcode",
    "PROTOCOL_VERSION",
    "RlzClient",
    "RlzServer",
]
