"""Network serving: archives behind sockets, clients that mirror them.

The paper's claim is that RLZ makes retrieval from a compressed web
collection cheap enough to *serve from*; this package makes that serving
story cross the process boundary — and, with the cluster layer, the
machine boundary:

* :mod:`repro.serve.protocol` — the length-prefixed binary wire protocol:
  framed request/response with opcodes for ``get``/``get_many``/
  ``iter_documents``/``scan``/``stats``/``ping``, structured error frames
  that round-trip every :mod:`repro.errors` class, and protocol version
  negotiation.  Version 2 tags every frame with a request id, so replies
  may arrive out of order — one connection carries a whole pipeline —
  and the HELLO handshake names the archive to talk to;
* :class:`RlzRouter` — many named archives (lazily opened, per-archive
  inflight gates and stats) behind one server;
* :class:`RlzServer` — the asyncio server: per-connection stats, v2
  request pipelining with ``R_BUSY`` load shedding, graceful
  drain-then-cancel shutdown (:class:`BackgroundServer` runs it on a
  dedicated thread for synchronous callers);
* :class:`RlzClient` / :class:`AsyncRlzClient` — clients implementing the
  same :class:`repro.api.ArchiveView` surface as a local
  :class:`repro.api.RlzArchive`, with connection pooling, retry,
  pipelined windows (:meth:`RlzClient.pipelined_get`), chunked bulk scans
  and — async, on v2 — full single-connection multiplexing;
* :class:`ClusterClient` — one ``ArchiveView`` over N endpoints:
  consistent-hash routing (:class:`ShardMap`), per-endpoint
  :class:`CircuitBreaker`\\ s, ordered ``get_many`` fan-out/fan-in and
  failover that keeps results byte-identical when a shard dies;
* :mod:`repro.serve.retry` — the fault-tolerance primitives: protocol v3
  propagates per-request **deadlines** (:class:`Deadline`) on the wire so
  servers drop expired work, every client retry draws from a shared
  token-bucket :class:`RetryBudget` so brownouts are not amplified, and
  ``R_BUSY`` replies carry queue depth + a retry-after hint honoured with
  jittered backoff.  ``ClusterClient`` can additionally *hedge* reads
  (``hedge_delay``) to cut the tail of one slow shard;
* search serving (protocol v5): a ``SEARCH`` opcode ranks BM25 top-k
  against each shard's persistent posting-list sidecar
  (:class:`repro.search.serving.PostingsStore`), with optional
  query-biased snippets decoded through the store's windowed
  partial-decode path; :meth:`ClusterClient.search` /
  :meth:`AsyncClusterClient.search` fan the query out to every shard,
  exchange global corpus statistics so sharded scores equal a
  single-index run exactly, and merge the per-shard top-k;
* partitioned archives (protocol v4): :func:`build_partitioned_archives`
  splits one collection into per-shard stores that each hold *only* the
  doc ids their arc of the ring owns, servers refuse unowned ids with
  ``R_WRONG_SHARD`` (carrying the current map epoch) and answer
  ``SHARD_MAP`` outside the backpressure gate, :func:`rebalance` streams
  a joining shard's arc over live (resumable, epoch-bumping, zero failed
  reads), and :class:`ClusterClient` / :class:`AsyncClusterClient`
  bootstrap and refresh their :class:`ShardMap` from the fleet itself —
  pushed epochs, no static map, no restart.

Configuration lives in :class:`repro.api.ServeSpec` (the ``serve`` section
of :class:`repro.api.ArchiveConfig`); the CLI front ends are ``repro
serve`` (``name=path`` archives) and ``repro get --connect`` (comma-
separated endpoints fan out through a :class:`ClusterClient`).
"""

from .async_cluster import AsyncClusterClient
from .client import AsyncRlzClient, RlzClient
from .cluster import CircuitBreaker, ClusterClient, ShardMap
from .partition import build_partitioned_archives, write_spare_shard
from .protocol import (
    ERROR_CODES,
    MAGIC,
    PROTOCOL_V1,
    PROTOCOL_V2,
    PROTOCOL_V3,
    PROTOCOL_V4,
    PROTOCOL_V5,
    PROTOCOL_VERSION,
    Opcode,
    SearchHit,
)
from .rebalance import RebalanceReport, rebalance
from .retry import Deadline, RetryBudget
from .router import RlzRouter
from .server import BackgroundServer, ConnectionStats, RlzServer

__all__ = [
    "AsyncClusterClient",
    "AsyncRlzClient",
    "BackgroundServer",
    "CircuitBreaker",
    "ClusterClient",
    "ConnectionStats",
    "Deadline",
    "ERROR_CODES",
    "MAGIC",
    "Opcode",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "PROTOCOL_V3",
    "PROTOCOL_V4",
    "PROTOCOL_V5",
    "PROTOCOL_VERSION",
    "RebalanceReport",
    "RetryBudget",
    "RlzClient",
    "RlzRouter",
    "RlzServer",
    "SearchHit",
    "ShardMap",
    "build_partitioned_archives",
    "rebalance",
    "write_spare_shard",
]
