"""Fault injection for the serving stack: a misbehaving TCP proxy.

Chaos testing the paper's serving story needs a network that fails in
every way real networks do — slowly, loudly, and mid-frame.  Rather than
mock sockets, :class:`FaultProxy` is a real in-process TCP proxy that
forwards between a client and a live server while injecting faults
according to a :class:`FaultPlan`:

* **delay** — hold a forwarded chunk for a fixed time (brownout / slow
  shard; deadline and hedging tests);
* **drop** — silently discard a chunk (data loss without a close: the
  stream desynchronizes and the client must fail by framing error or
  timeout, never by returning wrong bytes);
* **reset** — hard TCP reset (``SO_LINGER`` 0) so the peer sees
  ``ECONNRESET`` instead of a clean EOF;
* **truncate** — forward only the first N bytes of the server's response
  stream, then close mid-frame;
* **corrupt** — XOR a byte inside a forwarded chunk (the wire-level
  analogue of the container corruptors below);
* **blackhole** — accept the connection and then forward nothing in
  either direction, forever (the pure-hang case deadlines exist for).

Every fault draws from a seeded RNG, so a given schedule is reproducible;
``proxy.plan`` may be swapped at runtime to phase faults in and out of a
running test.  Counters record what was actually injected.

The module also ships byte-level *file* corruptors
(:func:`corrupt_file_byte`, :func:`truncate_file`) used to exercise the
container checksum machinery (``repro verify``).
"""

from __future__ import annotations

import random
import socket
import struct
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

__all__ = ["FaultPlan", "FaultProxy", "corrupt_file_byte", "truncate_file"]


@dataclass
class FaultPlan:
    """What :class:`FaultProxy` does to forwarded traffic.

    All probabilities are per forwarded chunk, evaluated independently;
    ``0.0`` disables the fault, ``1.0`` fires every time.  Faults apply to
    the server→client direction (responses) unless ``upstream`` is set —
    that is the direction where a byte flip or truncation can silently
    change what a client believes it read, which is the failure mode
    under test.

    Attributes
    ----------
    delay_seconds / delay_probability:
        Sleep before forwarding a chunk (added tail latency).
    drop_probability:
        Discard a chunk without closing (stream desynchronization).
    reset_probability:
        Hard-reset both sockets (``ECONNRESET`` at the peer).
    corrupt_probability / corrupt_xor:
        XOR one byte of the chunk with ``corrupt_xor``.
    truncate_after_bytes:
        Forward only this many response bytes per connection, then close
        abruptly (mid-frame truncation).  ``None`` disables.
    blackhole:
        Accept, then forward nothing in either direction.
    upstream:
        Apply the chunk faults to client→server traffic too.
    """

    delay_seconds: float = 0.0
    delay_probability: float = 1.0
    drop_probability: float = 0.0
    reset_probability: float = 0.0
    corrupt_probability: float = 0.0
    corrupt_xor: int = 0xFF
    truncate_after_bytes: Optional[int] = None
    blackhole: bool = False
    upstream: bool = False


class _Counters:
    """Thread-safe tallies of the faults actually injected."""

    _FIELDS = (
        "connections",
        "forwarded_bytes",
        "delays",
        "drops",
        "resets",
        "corruptions",
        "truncations",
        "blackholed",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> dict:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}


class FaultProxy:
    """An in-process TCP proxy that injects faults per a :class:`FaultPlan`.

    ::

        with FaultProxy("127.0.0.1", server.port, FaultPlan(reset_probability=0.2)) as proxy:
            client = RlzClient("127.0.0.1", proxy.port, ...)

    The proxy listens on an ephemeral port (:attr:`port`), forwards every
    accepted connection to ``target_host:target_port``, and applies the
    current :attr:`plan` to each chunk.  ``plan`` is read per chunk, so a
    test can swap it mid-run (e.g. fault a shard for a while, then heal
    it).  Faults draw from one seeded RNG; the same seed and traffic give
    the same schedule.
    """

    _CHUNK = 16 * 1024

    def __init__(
        self,
        target_host: str,
        target_port: int,
        plan: Optional[FaultPlan] = None,
        host: str = "127.0.0.1",
        seed: int = 0,
    ) -> None:
        self.target_host = target_host
        self.target_port = target_port
        self.plan = plan if plan is not None else FaultPlan()
        self.counters = _Counters()
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._closed = False
        self._conns_lock = threading.Lock()
        self._conns: list = []
        self._listener = socket.create_server((host, 0))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fault-proxy-accept", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        """Stop accepting and tear down every live connection."""
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._conns_lock:
            conns, self._conns = self._conns[:], []
        for sock in conns:
            _hard_close(sock)
        self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "FaultProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client_sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.counters.bump("connections")
            threading.Thread(
                target=self._serve_connection,
                args=(client_sock,),
                name="fault-proxy-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, client_sock: socket.socket) -> None:
        try:
            upstream = socket.create_connection(
                (self.target_host, self.target_port), timeout=5.0
            )
        except OSError:
            _hard_close(client_sock)
            return
        with self._conns_lock:
            if self._closed:
                _hard_close(client_sock)
                _hard_close(upstream)
                return
            self._conns.extend((client_sock, upstream))
        state = {"response_bytes": 0}
        down = threading.Thread(
            target=self._pump,
            args=(upstream, client_sock, True, state),
            daemon=True,
        )
        down.start()
        self._pump(client_sock, upstream, False, state)
        down.join(timeout=5.0)

    def _chance(self, probability: float) -> bool:
        if probability <= 0.0:
            return False
        with self._rng_lock:
            return self._rng.random() < probability

    def _pump(
        self,
        source: socket.socket,
        sink: socket.socket,
        is_response: bool,
        state: dict,
    ) -> None:
        """Forward source→sink applying the current plan; close both at EOF."""
        try:
            while True:
                try:
                    chunk = source.recv(self._CHUNK)
                except OSError:
                    break
                if not chunk:
                    break
                plan = self.plan  # re-read every chunk: tests swap it live
                if plan.blackhole:
                    self.counters.bump("blackholed", len(chunk))
                    continue
                faulted = is_response or plan.upstream
                if faulted and plan.reset_probability and self._chance(plan.reset_probability):
                    self.counters.bump("resets")
                    _hard_close(sink)
                    _hard_close(source)
                    return
                if (
                    faulted
                    and plan.delay_seconds > 0
                    and self._chance(plan.delay_probability)
                ):
                    self.counters.bump("delays")
                    _interruptible_sleep(plan.delay_seconds, lambda: self._closed)
                if faulted and self._chance(plan.drop_probability):
                    self.counters.bump("drops")
                    continue
                if faulted and self._chance(plan.corrupt_probability):
                    with self._rng_lock:
                        index = self._rng.randrange(len(chunk))
                    mutable = bytearray(chunk)
                    mutable[index] ^= plan.corrupt_xor & 0xFF
                    chunk = bytes(mutable)
                    self.counters.bump("corruptions")
                if is_response and plan.truncate_after_bytes is not None:
                    budget = plan.truncate_after_bytes - state["response_bytes"]
                    if budget <= 0:
                        self.counters.bump("truncations")
                        _hard_close(sink)
                        _hard_close(source)
                        return
                    if len(chunk) > budget:
                        chunk = chunk[:budget]
                        state["response_bytes"] += len(chunk)
                        try:
                            sink.sendall(chunk)
                        except OSError:
                            pass
                        self.counters.bump("forwarded_bytes", len(chunk))
                        self.counters.bump("truncations")
                        _hard_close(sink)
                        _hard_close(source)
                        return
                    state["response_bytes"] += len(chunk)
                try:
                    sink.sendall(chunk)
                except OSError:
                    break
                self.counters.bump("forwarded_bytes", len(chunk))
        finally:
            for sock in (source, sink):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass


def _hard_close(sock: socket.socket) -> None:
    """Close with a zero linger so the peer sees a TCP reset, not EOF."""
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def _interruptible_sleep(seconds: float, cancelled) -> None:
    deadline = seconds
    step = 0.05
    while deadline > 0 and not cancelled():
        slice_ = min(step, deadline)
        threading.Event().wait(slice_)
        deadline -= slice_


# ----------------------------------------------------------------------
# File corruptors (for the container checksum machinery)
# ----------------------------------------------------------------------
def corrupt_file_byte(
    path: str | Path,
    offset: Optional[int] = None,
    xor: int = 0xFF,
    rng: Optional[random.Random] = None,
) -> int:
    """XOR one byte of ``path`` in place; returns the offset corrupted.

    ``offset=None`` picks a uniformly random position (seeded via
    ``rng``).  ``xor`` must not be 0 — that would be a no-op disguised as
    corruption.
    """
    if xor & 0xFF == 0:
        raise ValueError("xor=0 would not change the byte")
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        raise ValueError(f"{path} is empty; nothing to corrupt")
    if offset is None:
        offset = (rng or random).randrange(size)
    if not 0 <= offset < size:
        raise ValueError(f"offset {offset} outside file of {size} bytes")
    with path.open("r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ (xor & 0xFF)]))
    return offset


def truncate_file(path: str | Path, keep_fraction: float = 0.5) -> int:
    """Chop the tail off ``path`` in place; returns the new size."""
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in [0, 1)")
    path = Path(path)
    size = path.stat().st_size
    keep = int(size * keep_fraction)
    with path.open("r+b") as handle:
        handle.truncate(keep)
    return keep
