"""Test-support tooling shipped with the library.

:mod:`repro.testing.faults` is the chaos-injection harness: a TCP proxy
that sits between a client and an :class:`repro.serve.RlzServer` and
misbehaves on purpose (delays, resets, truncated frames, corrupted bytes,
blackholes), plus byte-level file corruptors for exercising the container
checksum machinery.  The serving stack's fault-tolerance tests
(``tests/serve/test_chaos.py``) are built on it, and downstream users can
point the same proxy at their own deployments.
"""

from .faults import (
    FaultPlan,
    FaultProxy,
    corrupt_file_byte,
    truncate_file,
)

__all__ = [
    "FaultPlan",
    "FaultProxy",
    "corrupt_file_byte",
    "truncate_file",
]
