"""Relative Lempel-Ziv factorization (the ``Encode``/``Factor`` algorithms).

This module is a faithful implementation of Figure 1 of the paper: documents
are parsed greedily into factors, where each factor is the longest prefix of
the remaining text that occurs in the dictionary (found by refining an
interval of the dictionary's suffix array), or a single literal character
when the first character does not occur in the dictionary at all.

Decoding (Figure 2) is in :mod:`repro.core.decoder`.

Performance note: the literal pseudo-code performs one binary-search
refinement per matched character.  On top of that we support (and default
to) the 8-byte-key acceleration provided by :class:`repro.suffix.SuffixArray`,
which advances eight characters per step via vectorised key searches.
The parse produced is identical — the k-gram index maps to exactly the same
suffix-array interval that ``k`` refinements would reach — and the ablation
benchmark (``bench_ablation_acceleration``) verifies this while measuring the
speed difference.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from ..errors import FactorizationError
from .dictionary import RlzDictionary
from .factor import Factor, Factorization

__all__ = ["RlzFactorizer"]


class RlzFactorizer:
    """Parse documents into RLZ factors relative to a fixed dictionary."""

    def __init__(self, dictionary: RlzDictionary) -> None:
        self._dictionary = dictionary
        # Touch the suffix array eagerly so the construction cost is paid at
        # factorizer-creation time rather than inside the first document.
        self._suffix_array = dictionary.suffix_array

    @property
    def dictionary(self) -> RlzDictionary:
        """The dictionary this factorizer parses against."""
        return self._dictionary

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def factorize(self, text: bytes) -> Factorization:
        """Compute the RLZ factorization of ``text`` (the paper's ``Encode``).

        The document is parsed greedily left to right.  Because the library
        factorizes each document separately (the compressor calls this once
        per document), the paper's "stop at a document boundary" rule is
        implicit: a factor can never span two documents.
        """
        if not isinstance(text, (bytes, bytearray)):
            raise FactorizationError("factorize expects a bytes-like document")
        return Factorization(list(self.iter_factors(bytes(text))))

    def iter_factors(self, text: bytes) -> Iterator[Factor]:
        """Yield factors of ``text`` one at a time (streaming form of ``Encode``).

        Runs on :meth:`repro.suffix.SuffixArray.match_stream`, the same
        engine behind :meth:`factorize_streams`, so the streaming form pays
        the per-document setup (query keys, jump probes) once instead of
        once per factor.
        """
        for position, length in self._suffix_array.match_stream(text):
            if length == 0:
                # The character does not occur in the dictionary: the pair
                # carries the byte value itself.
                yield Factor.literal(position)
            else:
                yield Factor.copy(position, length)

    def factorize_streams(self, text: bytes) -> Tuple[List[int], List[int]]:
        """The parse of ``text`` as parallel (positions, lengths) streams.

        This is the hot-path form of :meth:`factorize`: it produces exactly
        the streams the pair encoders consume without materialising a
        :class:`Factor` object per factor.  ``factorize(text)`` and
        ``factorize_streams(text)`` always describe the identical parse.
        """
        if not isinstance(text, (bytes, bytearray)):
            raise FactorizationError("factorize expects a bytes-like document")
        return self._suffix_array.factorize_stream(bytes(text))

    def factorize_many(
        self,
        documents: Iterable[bytes],
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        share_memory: Optional[bool] = None,
    ) -> List[Factorization]:
        """Factorize an iterable of documents, in order.

        With ``workers`` greater than 1 the documents are parsed by a
        :class:`repro.core.parallel.ParallelCompressor` pool sharing this
        factorizer's dictionary; the result is identical to the serial path.
        ``start_method`` and ``share_memory`` configure the pool exactly as
        on :class:`ParallelCompressor` (shared-memory dictionary attachment
        for ``spawn`` workers).
        """
        documents = list(documents)
        if workers is not None and workers != 1 and len(documents) > 1:
            from .parallel import ParallelCompressor

            pipeline = ParallelCompressor(
                self._dictionary,
                workers=workers,
                start_method=start_method,
                share_memory=share_memory,
            )
            return [
                Factorization(
                    [
                        Factor(position=position, length=length)
                        for position, length in zip(positions, lengths)
                    ]
                )
                for positions, lengths in pipeline.factorize_documents(documents)
            ]
        return [self.factorize(document) for document in documents]
