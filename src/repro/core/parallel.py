"""Parallel encode pipeline: chunk documents across a process pool.

Factorization is embarrassingly parallel — every document is parsed against
the same read-only dictionary — so the encode path scales across cores by
chunking the document list over a ``multiprocessing`` pool.  The dictionary
(and its fully built suffix-array acceleration state: key levels, jump-start
index, suffix-array list) is shared with the workers read-only:

* with the ``fork`` start method (the default where available) the parent
  builds everything once and the children inherit the pages copy-on-write —
  nothing is pickled or rebuilt;
* with ``spawn`` the raw dictionary bytes are shipped to each worker once at
  pool start-up and the suffix array is rebuilt there (documented cost; only
  taken on platforms without ``fork``).

Workers return encoded blobs (or raw factor streams), so the parent never
holds more than the compressed form of each document.  The output order and
bytes are identical to the serial path — the pool only changes wall-clock
time.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple

from ..errors import FactorizationError
from .dictionary import RlzDictionary
from .encoder import PairEncoder
from .factorizer import RlzFactorizer

__all__ = ["ParallelCompressor", "resolve_workers"]

#: Worker-process state: (factorizer, encoder), set by the pool initializer.
_WORKER_STATE: Optional[Tuple[RlzFactorizer, PairEncoder]] = None

#: Parent-process handoff for fork workers: (dictionary, scheme name).  Set
#: immediately before the pool forks and cleared right after, so children
#: inherit the already-built dictionary object copy-on-write.
_PARENT_STATE: Optional[Tuple[RlzDictionary, str]] = None


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` argument: ``None``/1 serial, 0 all cores."""
    if workers is None:
        return 1
    if workers < 0:
        raise FactorizationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _initialize_worker(payload) -> None:
    global _WORKER_STATE
    if payload is None:
        dictionary, scheme = _PARENT_STATE
    else:
        data, sa_algorithm, accelerated, jump_start, scheme = payload
        dictionary = RlzDictionary(
            data,
            sa_algorithm=sa_algorithm,
            accelerated=accelerated,
            jump_start=jump_start,
        )
    _WORKER_STATE = (RlzFactorizer(dictionary), PairEncoder(scheme))


def _encode_chunk(
    documents: List[bytes],
    state: Optional[Tuple[RlzFactorizer, PairEncoder]] = None,
) -> List[bytes]:
    factorizer, encoder = state if state is not None else _WORKER_STATE
    return [
        encoder.encode_streams(*factorizer.factorize_streams(document))
        for document in documents
    ]


def _factorize_chunk(
    documents: List[bytes],
    state: Optional[Tuple[RlzFactorizer, PairEncoder]] = None,
) -> List[Tuple[List[int], List[int]]]:
    factorizer, _ = state if state is not None else _WORKER_STATE
    return [factorizer.factorize_streams(document) for document in documents]


class ParallelCompressor:
    """Encode documents against one dictionary with a worker pool.

    Parameters
    ----------
    dictionary:
        The shared RLZ dictionary every worker parses against.
    scheme:
        Pair-coding scheme for :meth:`encode_documents`.
    workers:
        ``None`` or 1 runs serially in-process; 0 uses every core; any other
        positive value sets the pool size.
    chunk_size:
        Documents per pool task.  Defaults to an even split producing about
        four tasks per worker, which balances scheduling overhead against
        stragglers.
    start_method:
        ``multiprocessing`` start method.  Defaults to ``fork`` when the
        platform offers it (zero-copy dictionary sharing), else ``spawn``.
    """

    def __init__(
        self,
        dictionary: RlzDictionary,
        scheme: str = "ZZ",
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self._dictionary = dictionary
        self._scheme_name = scheme.upper()
        self._workers = resolve_workers(workers)
        if chunk_size is not None and chunk_size <= 0:
            raise FactorizationError("chunk_size must be positive")
        self._chunk_size = chunk_size
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._start_method = start_method

    @property
    def workers(self) -> int:
        """Effective pool size (1 means serial in-process execution)."""
        return self._workers

    @property
    def scheme_name(self) -> str:
        """Pair-coding scheme used by :meth:`encode_documents`."""
        return self._scheme_name

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def encode_documents(self, documents: Sequence[bytes]) -> List[bytes]:
        """Encode every document; blobs are identical to the serial path."""
        return self._run(_encode_chunk, documents)

    def factorize_documents(
        self, documents: Sequence[bytes]
    ) -> List[Tuple[List[int], List[int]]]:
        """Factorize every document into (positions, lengths) streams."""
        return self._run(_factorize_chunk, documents)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run(self, chunk_function, documents: Sequence[bytes]) -> List:
        documents = [bytes(document) for document in documents]
        if not documents:
            return []
        if self._workers == 1 or len(documents) == 1:
            return self._run_serial(chunk_function, documents)
        return self._run_pool(chunk_function, documents)

    def _run_serial(self, chunk_function, documents: List[bytes]) -> List:
        # State is passed explicitly (never through the worker global), so
        # concurrent in-process pipelines cannot observe each other.
        state = (RlzFactorizer(self._dictionary), PairEncoder(self._scheme_name))
        return chunk_function(documents, state)

    def _run_pool(self, chunk_function, documents: List[bytes]) -> List:
        global _PARENT_STATE
        workers = min(self._workers, len(documents))
        chunk_size = self._chunk_size or max(1, len(documents) // (workers * 4))
        chunks = [
            documents[index : index + chunk_size]
            for index in range(0, len(documents), chunk_size)
        ]
        context = multiprocessing.get_context(self._start_method)
        if self._start_method == "fork":
            # Build all acceleration state now so forked children share it
            # copy-on-write instead of rebuilding it per worker.
            self._dictionary.suffix_array.prepare()
            payload = None
            _PARENT_STATE = (self._dictionary, self._scheme_name)
        else:
            payload = (
                self._dictionary.data,
                self._dictionary._sa_algorithm,
                self._dictionary._accelerated,
                self._dictionary._jump_start,
                self._scheme_name,
            )
        try:
            with context.Pool(
                processes=workers,
                initializer=_initialize_worker,
                initargs=(payload,),
            ) as pool:
                chunk_results = pool.map(chunk_function, chunks)
        finally:
            _PARENT_STATE = None
        return [result for chunk in chunk_results for result in chunk]
