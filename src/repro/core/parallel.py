"""Parallel encode pipeline: chunk documents across a process pool.

Factorization is embarrassingly parallel — every document is parsed against
the same read-only dictionary — so the encode path scales across cores by
chunking the document list over a ``multiprocessing`` pool.  The dictionary
(and its fully built suffix-array acceleration state: key levels, jump-start
index, suffix-array list) is shared with the workers read-only:

* with the ``fork`` start method (the default where available) the parent
  builds everything once and the children inherit the pages copy-on-write —
  nothing is pickled or rebuilt;
* with ``spawn`` (and ``forkserver``) the parent publishes the raw
  dictionary bytes plus the prebuilt suffix array and key arrays through
  ``multiprocessing.shared_memory`` segments; each worker *attaches* to the
  segments and wraps the arrays with
  :meth:`repro.suffix.SuffixArray.from_precomputed` instead of re-running
  the O(n log n) suffix-array construction per worker.  By default the
  published segments live in a process-wide *segment pool*
  (``persistent_segments=True``) so repeated batch encodes against the
  same dictionary reuse one publication; they are unlinked when the
  dictionary is collected or the process exits.  With
  ``persistent_segments=False`` each run publishes its own segments and
  unlinks them when its pool shuts down — including when pool
  construction itself fails;
* if shared memory is unavailable (or disabled with ``share_memory=False``)
  the ``spawn`` path falls back to shipping the dictionary bytes once per
  worker and rebuilding the suffix array there (the pre-PR-2 behaviour).

Workers return encoded blobs (or raw factor streams), so the parent never
holds more than the compressed form of each document.  The output order and
bytes are identical to the serial path — the pool only changes wall-clock
time.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import FactorizationError
from ..suffix import SuffixArray
from .dictionary import RlzDictionary
from .encoder import PairEncoder
from .factorizer import RlzFactorizer
from .shm import attach_segment, release_segment

__all__ = ["ParallelCompressor", "resolve_workers", "segment_pool_stats"]

#: Worker-process state: (factorizer, encoder), set by the pool initializer.
_WORKER_STATE: Optional[Tuple[RlzFactorizer, PairEncoder]] = None

#: Shared-memory segments a worker has attached (kept referenced so the
#: mapped buffers stay alive for the lifetime of the worker process).
_WORKER_SEGMENTS: List = []

#: Parent-process handoff for fork workers: (dictionary, scheme name).  Set
#: immediately before the pool forks and cleared right after, so children
#: inherit the already-built dictionary object copy-on-write.
_PARENT_STATE: Optional[Tuple[RlzDictionary, str]] = None


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` argument: ``None``/1 serial, 0 all cores.

    Negative values are rejected — the contract has no meaning for them.
    When ``workers`` is 0 and the core count cannot be determined
    (``os.cpu_count()`` returns ``None``), the pipeline falls back to one
    worker, i.e. serial execution.
    """
    if workers is None:
        return 1
    if workers < 0:
        raise FactorizationError(
            "workers must be None or 1 (serial), 0 (use every core) or a "
            f"positive pool size; got {workers}"
        )
    if workers == 0:
        return os.cpu_count() or 1
    return workers


# ----------------------------------------------------------------------
# Shared-memory publication (parent side) and attachment (worker side)
# ----------------------------------------------------------------------
class _SharedDictionary:
    """Parent-side handle for the shared-memory copy of a dictionary.

    ``publish`` copies the dictionary bytes and the prebuilt suffix-array
    acceleration arrays into ``multiprocessing.shared_memory`` segments and
    produces a picklable *descriptor* (segment names + dtypes + lengths +
    index configuration) small enough to ship to every spawn worker.  The
    parent must call :meth:`cleanup` once the pool is done — segments are
    kernel objects, not garbage-collected memory.
    """

    def __init__(self, segments: List, descriptor: Dict) -> None:
        self._segments = segments
        self.descriptor = descriptor

    @property
    def segment_names(self) -> Tuple[str, ...]:
        """Names of every published segment (test/introspection hook)."""
        return tuple(shm.name for shm in self._segments)

    @staticmethod
    def _copy_into_segment(segment, array: np.ndarray) -> None:
        """Fill ``segment`` with ``array``'s bytes.

        The numpy view over the segment buffer must not outlive this scope:
        a still-exported buffer makes ``segment.close()`` raise
        ``BufferError`` on the error-cleanup path.
        """
        view = np.frombuffer(segment.buf, dtype=array.dtype, count=len(array))
        view[:] = array

    @classmethod
    def publish(cls, dictionary: RlzDictionary) -> "_SharedDictionary":
        """Copy ``dictionary`` and its acceleration arrays into shared memory."""
        from multiprocessing import shared_memory

        suffix_array = dictionary.suffix_array
        state = suffix_array.shared_state()
        segments: List = []
        arrays: Dict[str, Tuple[str, str, int]] = {}
        try:
            data = dictionary.data
            text_segment = shared_memory.SharedMemory(create=True, size=max(1, len(data)))
            segments.append(text_segment)
            text_segment.buf[: len(data)] = data
            for name, array in state.items():
                array = np.ascontiguousarray(array)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                segments.append(segment)
                cls._copy_into_segment(segment, array)
                arrays[name] = (segment.name, array.dtype.str, len(array))
        except Exception:
            # Release whatever was created so a mid-loop failure (e.g. a
            # full /dev/shm) leaks no kernel objects and surfaces the real
            # error, not a cleanup error.
            cls(segments, {}).cleanup()
            raise
        descriptor = {
            "text": (text_segment.name, len(data)),
            "arrays": arrays,
            "sa_algorithm": dictionary.sa_algorithm,
            "accelerated": dictionary.accelerated,
            "jump_start": dictionary.jump_mode,
        }
        return cls(segments, descriptor)

    def cleanup(self) -> None:
        """Close and unlink every segment (idempotent).

        Close and unlink are attempted independently per segment (see
        :func:`repro.core.shm.release_segment`): a close refused because a
        buffer is still exported must not stop the segment — or any later
        one — from being unlinked.
        """
        segments, self._segments = self._segments, []
        for segment in segments:
            release_segment(segment, unlink=True)


class _SegmentPool:
    """Process-wide cache of published shared-memory dictionaries.

    Publishing a dictionary copies its bytes plus the prebuilt suffix-array
    acceleration arrays into ``/dev/shm`` — for a paper-scale dictionary
    that is hundreds of MB per :meth:`ParallelCompressor._run_pool` call.
    Repeated batch encodes against the *same* dictionary object (the common
    shape: one compressor, many document batches) can reuse the published
    segments instead, so the pool keeps them alive across runs:

    - entries are keyed by dictionary identity and evicted by a
      ``weakref.finalize`` on the dictionary, so a collected dictionary
      cannot leave segments behind (nor can a recycled ``id()`` alias a
      stale entry);
    - a process-exit hook clears whatever survives, matching the
      one-publication-per-run cleanup guarantee of the non-pooled path;
    - ``clear()`` releases everything eagerly (tests, long-lived servers
      rotating dictionaries).

    All bookkeeping is guarded by one lock; the expensive publish itself
    runs outside it, with a second lookup resolving publish races (the
    loser unlinks its duplicate).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[int, _SharedDictionary] = {}
        self._finalizers: Dict[int, object] = {}
        self._hits = 0
        self._misses = 0

    def acquire(self, dictionary: RlzDictionary) -> _SharedDictionary:
        """The pooled shared handle for ``dictionary``, publishing on miss."""
        key = id(dictionary)
        with self._lock:
            shared = self._entries.get(key)
            if shared is not None:
                self._hits += 1
                return shared
        published = _SharedDictionary.publish(dictionary)
        duplicate = None
        with self._lock:
            shared = self._entries.get(key)
            if shared is not None:
                # Lost a publish race: keep the first handle, drop ours.
                self._hits += 1
                duplicate = published
            else:
                self._misses += 1
                self._entries[key] = published
                self._finalizers[key] = weakref.finalize(
                    dictionary, self._evict, key
                )
                shared = published
        if duplicate is not None:
            duplicate.cleanup()
        return shared

    def _evict(self, key: int) -> None:
        with self._lock:
            shared = self._entries.pop(key, None)
            finalizer = self._finalizers.pop(key, None)
        if finalizer is not None:
            finalizer.detach()
        if shared is not None:
            shared.cleanup()

    def clear(self) -> None:
        """Unlink every pooled segment now (idempotent)."""
        with self._lock:
            entries = list(self._entries.values())
            finalizers = list(self._finalizers.values())
            self._entries.clear()
            self._finalizers.clear()
        for finalizer in finalizers:
            finalizer.detach()
        for shared in entries:
            shared.cleanup()

    def stats(self) -> Dict[str, int]:
        """Pool effectiveness counters (entries, segments, hits, misses)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "segments": sum(
                    len(shared.segment_names) for shared in self._entries.values()
                ),
                "hits": self._hits,
                "misses": self._misses,
            }


#: The process-wide pool behind ``persistent_segments=True`` pipelines.
_SEGMENT_POOL = _SegmentPool()
atexit.register(_SEGMENT_POOL.clear)


def segment_pool_stats() -> Dict[str, int]:
    """Counters of the persistent shared-memory segment pool."""
    return _SEGMENT_POOL.stats()


def _attach_segment(name: str):
    """Attach a segment (tracker-free, see :mod:`repro.core.shm`) and keep
    it referenced for the lifetime of the worker process."""
    segment = attach_segment(name)
    _WORKER_SEGMENTS.append(segment)
    return segment


def _attach_shared_dictionary(descriptor: Dict) -> RlzDictionary:
    """Worker side: wrap the published segments in an :class:`RlzDictionary`.

    The numpy acceleration arrays are zero-copy views over the shared
    buffers (marked read-only); only the dictionary bytes are copied, since
    the factorizer needs a real ``bytes`` object for slicing.  The suffix
    array is *not* reconstructed — ``SuffixArray.from_precomputed`` wraps
    the shared array directly, which is the entire point of this path.
    """
    text_name, text_length = descriptor["text"]
    text_segment = _attach_segment(text_name)
    data = bytes(text_segment.buf[:text_length])
    arrays: Dict[str, np.ndarray] = {}
    for name, (segment_name, dtype, count) in descriptor["arrays"].items():
        segment = _attach_segment(segment_name)
        view = np.frombuffer(segment.buf, dtype=np.dtype(dtype), count=count)
        view.flags.writeable = False
        arrays[name] = view
    suffix_array = SuffixArray.from_precomputed(
        data,
        arrays["sa"],
        algorithm=f"shared:{descriptor['sa_algorithm']}",
        accelerated=descriptor["accelerated"],
        jump_start=descriptor["jump_start"],
        position_keys=arrays.get("position_keys"),
        level0_keys=arrays.get("level0_keys"),
    )
    return RlzDictionary.from_prebuilt(
        data,
        suffix_array,
        sa_algorithm=descriptor["sa_algorithm"],
        accelerated=descriptor["accelerated"],
        jump_start=descriptor["jump_start"],
    )


# ----------------------------------------------------------------------
# Worker entry points
# ----------------------------------------------------------------------
def _initialize_worker(payload) -> None:
    global _WORKER_STATE
    if payload is None:
        dictionary, scheme = _PARENT_STATE
    else:
        kind, body, scheme = payload
        if kind == "shm":
            dictionary = _attach_shared_dictionary(body)
        else:  # "pickle": raw bytes shipped, suffix array rebuilt here
            data, sa_algorithm, accelerated, jump_start = body
            dictionary = RlzDictionary(
                data,
                sa_algorithm=sa_algorithm,
                accelerated=accelerated,
                jump_start=jump_start,
            )
    _WORKER_STATE = (RlzFactorizer(dictionary), PairEncoder(scheme))


def _encode_chunk(
    documents: List[bytes],
    state: Optional[Tuple[RlzFactorizer, PairEncoder]] = None,
) -> List[bytes]:
    factorizer, encoder = state if state is not None else _WORKER_STATE
    return [
        encoder.encode_streams(*factorizer.factorize_streams(document))
        for document in documents
    ]


def _factorize_chunk(
    documents: List[bytes],
    state: Optional[Tuple[RlzFactorizer, PairEncoder]] = None,
) -> List[Tuple[List[int], List[int]]]:
    factorizer, _ = state if state is not None else _WORKER_STATE
    return [factorizer.factorize_streams(document) for document in documents]


def _describe_chunk(
    documents: List[bytes],
    state: Optional[Tuple[RlzFactorizer, PairEncoder]] = None,
) -> List[Tuple[str, int, int]]:
    """Report how each worker's dictionary was built (test/diagnostic hook).

    Returns one ``(suffix_array_algorithm, attached_segments, pid)`` tuple
    per chunk: an ``"shared:..."`` algorithm name proves the worker wrapped
    the parent's suffix array instead of reconstructing it.
    """
    factorizer, _ = state if state is not None else _WORKER_STATE
    suffix_array = factorizer.dictionary.suffix_array
    return [(suffix_array.algorithm, len(_WORKER_SEGMENTS), os.getpid())] * len(
        documents
    )


class ParallelCompressor:
    """Encode documents against one dictionary with a worker pool.

    Parameters
    ----------
    dictionary:
        The shared RLZ dictionary every worker parses against.
    scheme:
        Pair-coding scheme for :meth:`encode_documents`.
    workers:
        ``None`` or 1 runs serially in-process; 0 uses every core; any other
        positive value sets the pool size.
    chunk_size:
        Documents per pool task.  Defaults to an even split producing about
        four tasks per worker, which balances scheduling overhead against
        stragglers.
    start_method:
        ``multiprocessing`` start method.  Defaults to ``fork`` when the
        platform offers it (zero-copy dictionary sharing), else ``spawn``.
    share_memory:
        Dictionary sharing for non-``fork`` start methods.  ``None`` (auto)
        publishes the dictionary and its suffix-array acceleration arrays
        through ``multiprocessing.shared_memory`` when possible, falling
        back to pickled bytes on failure; ``True`` forces shared memory
        (errors surface); ``False`` disables it (each worker rebuilds the
        suffix array from pickled bytes).  Ignored under ``fork``, where
        copy-on-write already shares everything.
    persistent_segments:
        Keep the published segments in the process-wide pool across runs
        (default ``True``): repeated batch encodes against the same
        dictionary object attach to the same segments instead of paying a
        full publish per call.  Pooled segments are released when the
        dictionary is garbage-collected, at process exit, or via
        ``repro.core.parallel._SEGMENT_POOL.clear()``.  ``False`` restores
        the publish-per-run behaviour (segments unlinked when the pool
        shuts down).
    """

    def __init__(
        self,
        dictionary: RlzDictionary,
        scheme: str = "ZZ",
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        share_memory: Optional[bool] = None,
        persistent_segments: bool = True,
    ) -> None:
        self._dictionary = dictionary
        self._scheme_name = scheme.upper()
        self._workers = resolve_workers(workers)
        if chunk_size is not None and chunk_size <= 0:
            raise FactorizationError("chunk_size must be positive")
        self._chunk_size = chunk_size
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._start_method = start_method
        self._share_memory = share_memory
        self._persistent_segments = bool(persistent_segments)
        self._last_segment_names: Tuple[str, ...] = ()

    @property
    def workers(self) -> int:
        """Effective pool size (1 means serial in-process execution)."""
        return self._workers

    @property
    def scheme_name(self) -> str:
        """Pair-coding scheme used by :meth:`encode_documents`."""
        return self._scheme_name

    @property
    def start_method(self) -> str:
        """The multiprocessing start method pools are created with."""
        return self._start_method

    @property
    def persistent_segments(self) -> bool:
        """Whether published segments are pooled across runs."""
        return self._persistent_segments

    @property
    def last_segment_names(self) -> Tuple[str, ...]:
        """Shared-memory segment names of the most recent pool run.

        Empty when the last run used fork/pickle sharing.  With
        ``persistent_segments`` the named segments stay alive in the pool
        after the run; otherwise they are already unlinked by the time a
        run returns — the names exist so tests can verify either contract.
        """
        return self._last_segment_names

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def encode_documents(self, documents: Sequence[bytes]) -> List[bytes]:
        """Encode every document; blobs are identical to the serial path."""
        return self._run(_encode_chunk, documents)

    def factorize_documents(
        self, documents: Sequence[bytes]
    ) -> List[Tuple[List[int], List[int]]]:
        """Factorize every document into (positions, lengths) streams."""
        return self._run(_factorize_chunk, documents)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run(self, chunk_function, documents: Sequence[bytes]) -> List:
        documents = [bytes(document) for document in documents]
        if not documents:
            return []
        if self._workers == 1 or len(documents) == 1:
            return self._run_serial(chunk_function, documents)
        return self._run_pool(chunk_function, documents)

    def _run_serial(self, chunk_function, documents: List[bytes]) -> List:
        # State is passed explicitly (never through the worker global), so
        # concurrent in-process pipelines cannot observe each other.
        state = (RlzFactorizer(self._dictionary), PairEncoder(self._scheme_name))
        return chunk_function(documents, state)

    def _build_payload(self):
        """Initializer payload for non-fork workers.

        Returns ``(payload, shared, owns_shared)``: ``owns_shared`` is True
        only when this run published its own segments and must unlink them
        on the way out; pooled segments stay alive for the next run.
        """
        shared = None
        owns_shared = False
        if self._share_memory is not False:
            try:
                if self._persistent_segments:
                    shared = _SEGMENT_POOL.acquire(self._dictionary)
                else:
                    shared = _SharedDictionary.publish(self._dictionary)
                    owns_shared = True
            except Exception:
                if self._share_memory is True:
                    raise
                shared = None  # auto mode: fall back to pickled bytes
        if shared is not None:
            return ("shm", shared.descriptor, self._scheme_name), shared, owns_shared
        payload = (
            "pickle",
            (
                self._dictionary.data,
                self._dictionary.sa_algorithm,
                self._dictionary.accelerated,
                self._dictionary.jump_mode,
            ),
            self._scheme_name,
        )
        return payload, None, False

    def _run_pool(self, chunk_function, documents: List[bytes]) -> List:
        global _PARENT_STATE
        workers = min(self._workers, len(documents))
        chunk_size = self._chunk_size or max(1, len(documents) // (workers * 4))
        chunks = [
            documents[index : index + chunk_size]
            for index in range(0, len(documents), chunk_size)
        ]
        context = multiprocessing.get_context(self._start_method)
        shared: Optional[_SharedDictionary] = None
        owns_shared = False
        self._last_segment_names = ()
        # Everything from the parent-state handoff onward sits inside one
        # try/finally: if pool construction (or anything else) raises, the
        # module-global dictionary reference and any run-owned shared-memory
        # segments are still released — no leak outlives the call.  Pooled
        # segments are owned by _SEGMENT_POOL, not this run.
        try:
            if self._start_method == "fork":
                # Build all acceleration state now so forked children share
                # it copy-on-write instead of rebuilding it per worker.
                self._dictionary.suffix_array.prepare()
                payload = None
                _PARENT_STATE = (self._dictionary, self._scheme_name)
            else:
                payload, shared, owns_shared = self._build_payload()
                if shared is not None:
                    self._last_segment_names = shared.segment_names
            with context.Pool(
                processes=workers,
                initializer=_initialize_worker,
                initargs=(payload,),
            ) as pool:
                chunk_results = pool.map(chunk_function, chunks)
        finally:
            _PARENT_STATE = None
            if shared is not None and owns_shared:
                shared.cleanup()
        return [result for chunk in chunk_results for result in chunk]
