"""High-level RLZ compressor (the paper's ``rlz`` system, Section 3.1).

:class:`RlzCompressor` ties the pieces together:

1. build (or accept) a dictionary sampled from the collection;
2. factorize every document relative to the dictionary;
3. encode each document's factor streams under a pair-coding scheme;
4. record a document map so any document can be located and decoded on its
   own.

The result is an in-memory :class:`CompressedCollection`, which the storage
layer (:mod:`repro.storage`) can persist to disk and serve with random
access.  Compression statistics (ratio, factor statistics, dictionary usage)
are collected during compression because the benchmark tables need them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..corpus.document import DocumentCollection
from ..errors import DecodingError
from .decoder import decode_pairs
from .dictionary import DictionaryConfig, RlzDictionary, build_dictionary
from .encoder import PairEncoder
from .factorizer import RlzFactorizer
from .stats import DictionaryUsage, FactorStatistics

__all__ = [
    "CompressedCollection",
    "CompressedDocument",
    "CompressionReport",
    "RlzCompressor",
]


@dataclass(frozen=True)
class CompressedDocument:
    """One document's RLZ encoding plus identifying metadata."""

    doc_id: int
    data: bytes
    original_size: int

    @property
    def compressed_size(self) -> int:
        """Size of the encoded blob in bytes."""
        return len(self.data)


@dataclass
class CompressedCollection:
    """An RLZ-compressed collection held in memory.

    The document map is implicit in ``documents`` (blobs are stored per
    document and indexed by ID); :class:`repro.storage.RlzStore` adds the
    on-disk representation with explicit offsets.
    """

    dictionary: RlzDictionary
    scheme_name: str
    documents: List[CompressedDocument] = field(default_factory=list)
    collection_name: str = "collection"

    def __post_init__(self) -> None:
        self._by_id: Dict[int, CompressedDocument] = {
            document.doc_id: document for document in self.documents
        }
        self._encoder = PairEncoder(self.scheme_name)

    # ------------------------------------------------------------------
    # Sizes and ratios
    # ------------------------------------------------------------------
    @property
    def original_size(self) -> int:
        """Total uncompressed size of all documents."""
        return sum(document.original_size for document in self.documents)

    @property
    def encoded_size(self) -> int:
        """Total size of the encoded blobs (excluding the dictionary)."""
        return sum(document.compressed_size for document in self.documents)

    @property
    def total_size(self) -> int:
        """Encoded blobs plus the dictionary (what must be stored)."""
        return self.encoded_size + len(self.dictionary)

    def compression_ratio(self, include_dictionary: bool = True) -> float:
        """Encoded size as a percentage of the original size (paper's Enc. %)."""
        if self.original_size == 0:
            return 0.0
        numerator = self.total_size if include_dictionary else self.encoded_size
        return 100.0 * numerator / self.original_size

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.documents)

    def doc_ids(self) -> List[int]:
        """IDs of all documents, in collection order."""
        return [document.doc_id for document in self.documents]

    def get_blob(self, doc_id: int) -> bytes:
        """The raw encoded blob for a document."""
        try:
            return self._by_id[doc_id].data
        except KeyError as exc:
            raise DecodingError(f"unknown document id {doc_id}") from exc

    def decode_document(self, doc_id: int) -> bytes:
        """Random access: decode a single document by ID."""
        blob = self.get_blob(doc_id)
        positions, lengths = self._encoder.decode_streams(blob)
        return decode_pairs(positions, lengths, self.dictionary)

    def iter_documents(self) -> Iterator[tuple[int, bytes]]:
        """Decode every document in collection order (sequential access)."""
        for document in self.documents:
            positions, lengths = self._encoder.decode_streams(document.data)
            yield document.doc_id, decode_pairs(positions, lengths, self.dictionary)


@dataclass
class CompressionReport:
    """Statistics gathered while compressing a collection."""

    factor_stats: FactorStatistics
    dictionary_usage: DictionaryUsage
    compression_percent: float
    encoded_bytes: int
    original_bytes: int

    @property
    def average_factor_length(self) -> float:
        """Mean factor length over the whole collection."""
        return self.factor_stats.average_factor_length

    @property
    def unused_dictionary_percent(self) -> float:
        """Percentage of dictionary bytes never referenced by a factor."""
        return self.dictionary_usage.unused_percentage


class RlzCompressor:
    """Compress document collections with relative Lempel-Ziv factorization.

    Parameters
    ----------
    dictionary:
        A pre-built dictionary, or ``None`` to have :meth:`compress` build
        one from the collection using ``dictionary_config``.
    dictionary_config:
        Sampling parameters used when no dictionary is supplied.
    scheme:
        Pair-coding scheme name (``"ZZ"``, ``"ZV"``, ``"UZ"``, ``"UV"`` or
        any other two-letter combination of registered codecs).
    workers:
        Encode-pipeline parallelism: ``None`` or 1 encodes serially, 0 uses
        every core, any other positive value sets the pool size.  The
        encoded blobs are identical regardless of the worker count; see
        :class:`repro.core.parallel.ParallelCompressor`.
    start_method / share_memory:
        Pool configuration forwarded to :class:`ParallelCompressor`:
        the ``multiprocessing`` start method, and whether non-``fork``
        workers attach the dictionary through shared memory (``None`` auto)
        instead of rebuilding the suffix array from pickled bytes.
    jump_start:
        Jump-index configuration for a dictionary built by this compressor:
        ``True``/``"auto"`` (size-based default), ``"dict"``, ``"compact"``
        or ``False``/``"off"``.  Ignored when ``dictionary`` is supplied.
    """

    def __init__(
        self,
        dictionary: Optional[RlzDictionary] = None,
        dictionary_config: Optional[DictionaryConfig] = None,
        scheme: str = "ZZ",
        sa_algorithm: str = "doubling",
        accelerated: bool = True,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        share_memory: Optional[bool] = None,
        jump_start: bool | str = True,
    ) -> None:
        self._dictionary = dictionary
        self._dictionary_config = dictionary_config
        self._scheme_name = scheme.upper()
        self._sa_algorithm = sa_algorithm
        self._accelerated = accelerated
        self._workers = workers
        self._start_method = start_method
        self._share_memory = share_memory
        self._jump_start = jump_start

    @property
    def scheme_name(self) -> str:
        """The pair-coding scheme this compressor uses."""
        return self._scheme_name

    @property
    def dictionary(self) -> Optional[RlzDictionary]:
        """The dictionary, if one has been built or supplied."""
        return self._dictionary

    def _ensure_dictionary(self, collection: DocumentCollection) -> RlzDictionary:
        if self._dictionary is not None:
            return self._dictionary
        if self._dictionary_config is None:
            # Default: 1% of the collection with 1 KB samples, mirroring the
            # paper's observation that even ~0.1% dictionaries work well.
            size = max(64 * 1024, collection.total_size // 100)
            self._dictionary_config = DictionaryConfig(size=size, sample_size=1024)
        self._dictionary = build_dictionary(
            collection,
            self._dictionary_config,
            sa_algorithm=self._sa_algorithm,
            accelerated=self._accelerated,
            jump_start=self._jump_start,
        )
        return self._dictionary

    def compress(
        self,
        collection: DocumentCollection,
        collect_statistics: bool = False,
    ) -> CompressedCollection | tuple[CompressedCollection, CompressionReport]:
        """Compress ``collection``; optionally also return a statistics report."""
        from .parallel import ParallelCompressor, resolve_workers

        dictionary = self._ensure_dictionary(collection)

        compressed_documents: List[CompressedDocument] = []
        if collect_statistics:
            # Statistics need the materialised factorizations, so this path
            # stays serial and object-based.
            factor_stats = FactorStatistics()
            usage = DictionaryUsage(dictionary)
            factorizer = RlzFactorizer(dictionary)
            encoder = PairEncoder(self._scheme_name)
            for document in collection:
                factorization = factorizer.factorize(document.content)
                blob = encoder.encode(factorization)
                compressed_documents.append(
                    CompressedDocument(
                        doc_id=document.doc_id,
                        data=blob,
                        original_size=document.size,
                    )
                )
                factor_stats.add(factorization)
                usage.add(factorization)
        else:
            # Throughput path: stream-based factorization, optionally fanned
            # out over a worker pool.  Blobs are identical either way.
            pipeline = ParallelCompressor(
                dictionary,
                scheme=self._scheme_name,
                workers=resolve_workers(self._workers),
                start_method=self._start_method,
                share_memory=self._share_memory,
            )
            documents = list(collection)
            blobs = pipeline.encode_documents(
                [document.content for document in documents]
            )
            compressed_documents = [
                CompressedDocument(
                    doc_id=document.doc_id,
                    data=blob,
                    original_size=document.size,
                )
                for document, blob in zip(documents, blobs)
            ]

        compressed = CompressedCollection(
            dictionary=dictionary,
            scheme_name=self._scheme_name,
            documents=compressed_documents,
            collection_name=collection.name,
        )
        if not collect_statistics:
            return compressed
        report = CompressionReport(
            factor_stats=factor_stats,
            dictionary_usage=usage,
            compression_percent=compressed.compression_ratio(),
            encoded_bytes=compressed.encoded_size,
            original_bytes=compressed.original_size,
        )
        return compressed, report
