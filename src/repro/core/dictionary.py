"""RLZ dictionary construction (Section 3.3 of the paper).

The dictionary is a byte string built by sampling the collection; the
factorizer indexes it with a suffix array and every document is parsed
against it.  The paper's technique is deliberately simple: treat the
collection as one long string and take fixed-length samples at evenly
spaced intervals.  This module implements that policy plus two variants
used elsewhere in the paper and in the ablation benchmarks:

* :func:`sample_uniform` — evenly spaced fixed-size samples (the paper's
  method, Section 3.3);
* :func:`sample_prefix` — sample only from a prefix of the collection
  (the dynamic-update simulation of Section 3.6 / Table 10);
* :func:`sample_random_documents` — whole-document random sampling, the
  naive alternative mentioned in Section 3.1.

The resulting :class:`RlzDictionary` owns the sampled bytes and lazily
builds the suffix array over them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..corpus.document import DocumentCollection
from ..errors import DictionaryError
from ..suffix import SuffixArray

__all__ = [
    "DictionaryConfig",
    "RlzDictionary",
    "build_dictionary",
    "sample_prefix",
    "sample_random_documents",
    "sample_uniform",
]


@dataclass(frozen=True)
class DictionaryConfig:
    """Parameters of dictionary sampling.

    Attributes
    ----------
    size:
        Target dictionary size in bytes (the paper's 0.5/1/2 GB scaled down).
    sample_size:
        Length of each sample in bytes (the paper's 0.5-5 KB "sample period").
    policy:
        ``"uniform"`` (paper default), ``"prefix"`` or ``"random_documents"``.
    prefix_fraction:
        For the ``"prefix"`` policy, the fraction of the collection that is
        visible to the sampler (Table 10 uses 100% down to 1%).
    seed:
        Seed for the ``"random_documents"`` policy.
    """

    size: int
    sample_size: int = 1024
    policy: str = "uniform"
    prefix_fraction: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise DictionaryError("dictionary size must be positive")
        if self.sample_size <= 0:
            raise DictionaryError("sample size must be positive")
        if self.policy not in ("uniform", "prefix", "random_documents"):
            raise DictionaryError(f"unknown sampling policy: {self.policy!r}")
        if not 0.0 < self.prefix_fraction <= 1.0:
            raise DictionaryError("prefix_fraction must be in (0, 1]")


class RlzDictionary:
    """A sampled dictionary plus its (lazily built) suffix array."""

    def __init__(
        self,
        data: bytes,
        config: Optional[DictionaryConfig] = None,
        sa_algorithm: str = "doubling",
        accelerated: bool = True,
        jump_start: Union[bool, str] = True,
    ) -> None:
        if not data:
            raise DictionaryError("dictionary must not be empty")
        self._data = bytes(data)
        self._config = config
        self._sa_algorithm = sa_algorithm
        self._accelerated = accelerated
        self._jump_start = jump_start
        self._suffix_array: Optional[SuffixArray] = None
        self._decode_table = None

    @classmethod
    def from_prebuilt(
        cls,
        data: bytes,
        suffix_array: SuffixArray,
        config: Optional[DictionaryConfig] = None,
        sa_algorithm: str = "doubling",
        accelerated: bool = True,
        jump_start: Union[bool, str] = True,
    ) -> "RlzDictionary":
        """A dictionary wrapping an already-built :class:`SuffixArray`.

        Used by the shared-memory worker path: the suffix array was built
        once in the parent and reconstructed from shared arrays with
        :meth:`SuffixArray.from_precomputed`; the lazy build here would
        otherwise re-run the whole construction per worker.
        """
        dictionary = cls(
            data,
            config=config,
            sa_algorithm=sa_algorithm,
            accelerated=accelerated,
            jump_start=jump_start,
        )
        dictionary._suffix_array = suffix_array
        return dictionary

    @property
    def data(self) -> bytes:
        """The raw dictionary bytes."""
        return self._data

    @property
    def config(self) -> Optional[DictionaryConfig]:
        """The sampling configuration used to build this dictionary (if any)."""
        return self._config

    @property
    def sa_algorithm(self) -> str:
        """Suffix-array construction algorithm used for the lazy build."""
        return self._sa_algorithm

    @property
    def accelerated(self) -> bool:
        """Whether the suffix array is built with 8-byte-key acceleration."""
        return self._accelerated

    @property
    def jump_mode(self) -> str:
        """Normalised jump-start mode (``auto``/``dict``/``compact``/``off``)."""
        return SuffixArray._normalize_jump_mode(self._jump_start)

    def __len__(self) -> int:
        return len(self._data)

    @property
    def suffix_array(self) -> SuffixArray:
        """Suffix array over the dictionary (built on first access)."""
        if self._suffix_array is None:
            self._suffix_array = SuffixArray(
                self._data,
                algorithm=self._sa_algorithm,
                accelerated=self._accelerated,
                jump_start=self._jump_start,
            )
        return self._suffix_array

    @property
    def decode_table(self):
        """uint8 array of the dictionary bytes followed by the 256 byte values.

        The vectorized decoder reconstructs documents with a single gather
        out of this table: copy factors index into the dictionary region and
        a literal of byte value ``b`` indexes position ``len(dictionary) + b``
        in the appended identity region.  Built once, on first use.
        """
        if self._decode_table is None:
            self._decode_table = np.frombuffer(
                self._data + bytes(range(256)), dtype=np.uint8
            )
        return self._decode_table

    def extended(self, extra: bytes) -> "RlzDictionary":
        """A new dictionary with ``extra`` bytes appended (Section 3.6).

        Appending keeps every existing offset valid, so previously encoded
        documents do not need to be re-encoded; only the suffix array must
        be rebuilt (which happens lazily on the new object).
        """
        if not extra:
            return self
        return RlzDictionary(
            self._data + bytes(extra),
            config=self._config,
            sa_algorithm=self._sa_algorithm,
            accelerated=self._accelerated,
            jump_start=self._jump_start,
        )


# ----------------------------------------------------------------------
# Sampling policies
# ----------------------------------------------------------------------
def sample_uniform(text: bytes, dictionary_size: int, sample_size: int) -> bytes:
    """Evenly spaced fixed-length samples across ``text`` (paper Section 3.3).

    For a collection string of length ``n`` and a target dictionary of
    ``m = dictionary_size`` bytes built from samples of ``s = sample_size``
    bytes, ``m / s`` samples are taken at offsets ``0, n/(m/s), 2n/(m/s)...``.
    When the requested dictionary is at least as large as the text, the text
    itself is returned.
    """
    n = len(text)
    if n == 0:
        raise DictionaryError("cannot sample an empty collection")
    if dictionary_size >= n:
        return bytes(text)
    num_samples = max(1, dictionary_size // sample_size)
    stride = n / num_samples
    pieces = []
    for index in range(num_samples):
        start = int(index * stride)
        end = min(n, start + sample_size)
        pieces.append(text[start:end])
    return b"".join(pieces)[:dictionary_size]


def sample_prefix(
    text: bytes,
    dictionary_size: int,
    sample_size: int,
    prefix_fraction: float,
) -> bytes:
    """Uniform sampling restricted to a prefix of the collection.

    This simulates the dynamic-update scenario of Section 3.6: the dictionary
    was built when only ``prefix_fraction`` of the collection existed, and is
    then used to compress the full collection (Table 10).
    """
    if not 0.0 < prefix_fraction <= 1.0:
        raise DictionaryError("prefix_fraction must be in (0, 1]")
    cutoff = max(1, int(len(text) * prefix_fraction))
    return sample_uniform(text[:cutoff], dictionary_size, sample_size)


def sample_random_documents(
    collection: DocumentCollection, dictionary_size: int, seed: int = 0
) -> bytes:
    """Concatenate randomly chosen whole documents up to ``dictionary_size``.

    This is the "concatenate a (random) sample of documents" formulation of
    Section 3.1; the uniform-interval policy generally covers the collection
    more evenly and is the paper's recommended method.
    """
    if len(collection) == 0:
        raise DictionaryError("cannot sample an empty collection")
    rng = random.Random(seed)
    order = list(range(len(collection)))
    rng.shuffle(order)
    pieces = []
    total = 0
    for index in order:
        content = collection[index].content
        pieces.append(content)
        total += len(content)
        if total >= dictionary_size:
            break
    return b"".join(pieces)[:dictionary_size]


def build_dictionary(
    collection: DocumentCollection,
    config: DictionaryConfig,
    sa_algorithm: str = "doubling",
    accelerated: bool = True,
    jump_start: Union[bool, str] = True,
) -> RlzDictionary:
    """Build an :class:`RlzDictionary` from ``collection`` per ``config``."""
    text = collection.concatenate()
    if config.policy == "uniform":
        data = sample_uniform(text, config.size, config.sample_size)
    elif config.policy == "prefix":
        data = sample_prefix(text, config.size, config.sample_size, config.prefix_fraction)
    else:  # random_documents
        data = sample_random_documents(collection, config.size, seed=config.seed)
    return RlzDictionary(
        data,
        config=config,
        sa_algorithm=sa_algorithm,
        accelerated=accelerated,
        jump_start=jump_start,
    )
