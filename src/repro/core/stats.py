"""Factorization and dictionary statistics (Tables 2-3 and Figure 3).

The paper reports three diagnostics of dictionary quality:

* **average factor length** — longer factors mean the dictionary captures
  more of the collection's structure (Tables 2 and 3);
* **unused dictionary bytes** — the percentage of dictionary positions never
  covered by any emitted factor; high waste suggests redundant samples
  (Tables 2 and 3, and the Section 6 future-work discussion);
* **the distribution of encoded length values** — heavily skewed towards
  small values, which motivates vbyte for the length stream (Figure 3).

All three are computed here from a stream of factorizations, without
retaining the factorizations themselves, so collections much larger than
memory could be streamed through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from .dictionary import RlzDictionary
from .factor import Factorization

__all__ = ["DictionaryUsage", "FactorStatistics", "length_histogram"]


@dataclass
class FactorStatistics:
    """Aggregate statistics over a set of factorizations."""

    num_documents: int = 0
    num_factors: int = 0
    num_literals: int = 0
    decoded_bytes: int = 0
    length_counts: Dict[int, int] = field(default_factory=dict)

    @property
    def average_factor_length(self) -> float:
        """Mean decoded bytes per factor (the paper's Avg.Fact. column)."""
        if self.num_factors == 0:
            return 0.0
        return self.decoded_bytes / self.num_factors

    @property
    def literal_fraction(self) -> float:
        """Fraction of factors that are literals."""
        if self.num_factors == 0:
            return 0.0
        return self.num_literals / self.num_factors

    def add(self, factorization: Factorization) -> None:
        """Accumulate one document's factorization."""
        self.num_documents += 1
        self.num_factors += factorization.num_factors
        self.num_literals += factorization.num_literals
        self.decoded_bytes += factorization.decoded_length
        for factor in factorization:
            key = factor.length
            self.length_counts[key] = self.length_counts.get(key, 0) + 1

    @classmethod
    def from_factorizations(cls, factorizations: Iterable[Factorization]) -> "FactorStatistics":
        stats = cls()
        for factorization in factorizations:
            stats.add(factorization)
        return stats


class DictionaryUsage:
    """Track which dictionary bytes are covered by at least one factor.

    The paper's "Unused (%)" column is the share of dictionary bytes never
    referenced by any factor of the whole collection's encoding.  Coverage is
    tracked with a boolean numpy array and interval marking, so cost is
    proportional to the number of factors, not to factor length.
    """

    def __init__(self, dictionary: RlzDictionary) -> None:
        self._size = len(dictionary)
        self._covered = np.zeros(self._size, dtype=bool)

    def add(self, factorization: Factorization) -> None:
        """Mark the dictionary intervals used by one document's parse."""
        covered = self._covered
        for factor in factorization:
            if not factor.is_literal:
                covered[factor.position : factor.position + factor.length] = True

    @property
    def used_bytes(self) -> int:
        """Number of dictionary bytes referenced by at least one factor."""
        return int(self._covered.sum())

    @property
    def unused_bytes(self) -> int:
        """Number of dictionary bytes never referenced."""
        return self._size - self.used_bytes

    @property
    def unused_percentage(self) -> float:
        """Unused bytes as a percentage of the dictionary size."""
        if self._size == 0:
            return 0.0
        return 100.0 * self.unused_bytes / self._size


def length_histogram(
    factorizations: Iterable[Factorization],
    bin_edges: Sequence[int] = (1, 10, 100, 1000, 10000),
) -> Dict[str, int]:
    """Histogram of encoded length values (Figure 3).

    Lengths are binned into decade ranges ``[1, 10)``, ``[10, 100)``, ...;
    literal factors (length 0) are reported separately under ``"literal"``.
    The returned mapping preserves bin order for direct printing.
    """
    edges = list(bin_edges)
    counts: Dict[str, int] = {"literal": 0}
    labels: List[str] = []
    for low, high in zip(edges[:-1], edges[1:]):
        label = f"[{low}, {high})"
        labels.append(label)
        counts[label] = 0
    overflow_label = f">= {edges[-1]}"
    counts[overflow_label] = 0

    for factorization in factorizations:
        for factor in factorization:
            length = factor.length
            if length == 0:
                counts["literal"] += 1
                continue
            placed = False
            for label, low, high in zip(labels, edges[:-1], edges[1:]):
                if low <= length < high:
                    counts[label] += 1
                    placed = True
                    break
            if not placed:
                counts[overflow_label] += 1
    return counts
