"""Factor model for the relative Lempel-Ziv factorization.

Section 3 of the paper defines the RLZ factorization of a string ``x``
relative to a dictionary ``d`` as a sequence of factors, each either

* the longest substring of ``d`` matching the text at the current position,
  represented as a ``(position, length)`` pair with ``length > 0``; or
* a single literal character that does not occur in ``d``, represented as a
  pair whose length is 0 and whose position field carries the character.

:class:`Factor` captures exactly that representation, and
:class:`Factorization` is the per-document sequence of factors plus the
bookkeeping the encoders and statistics modules need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from ..errors import FactorizationError

__all__ = ["Factor", "Factorization"]


@dataclass(frozen=True)
class Factor:
    """One factor of an RLZ parse.

    Attributes
    ----------
    position:
        For a copy factor, the starting offset of the match in the
        dictionary.  For a literal factor, the byte value (0-255) of the
        literal character.
    length:
        Number of dictionary bytes copied; 0 marks a literal factor.
    """

    position: int
    length: int

    @property
    def is_literal(self) -> bool:
        """True when this factor encodes a single literal character."""
        return self.length == 0

    @property
    def output_length(self) -> int:
        """Number of text bytes this factor reproduces when decoded."""
        return 1 if self.is_literal else self.length

    @classmethod
    def literal(cls, byte: int) -> "Factor":
        """Create a literal factor for a single byte value."""
        if not 0 <= byte <= 255:
            raise FactorizationError(f"literal byte out of range: {byte}")
        return cls(position=byte, length=0)

    @classmethod
    def copy(cls, position: int, length: int) -> "Factor":
        """Create a copy factor referencing ``length`` bytes at ``position``."""
        if length <= 0:
            raise FactorizationError("copy factors must have positive length")
        if position < 0:
            raise FactorizationError("copy factors must have non-negative position")
        return cls(position=position, length=length)


class Factorization:
    """The RLZ parse of one document: an ordered sequence of factors."""

    def __init__(self, factors: Sequence[Factor]) -> None:
        self._factors: List[Factor] = list(factors)

    def __len__(self) -> int:
        return len(self._factors)

    def __iter__(self) -> Iterator[Factor]:
        return iter(self._factors)

    def __getitem__(self, index: int) -> Factor:
        return self._factors[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Factorization):
            return NotImplemented
        return self._factors == other._factors

    @property
    def factors(self) -> Sequence[Factor]:
        """The factors in document order."""
        return self._factors

    @property
    def num_factors(self) -> int:
        """Number of factors in the parse."""
        return len(self._factors)

    @property
    def num_literals(self) -> int:
        """Number of literal factors in the parse."""
        return sum(1 for factor in self._factors if factor.is_literal)

    @property
    def decoded_length(self) -> int:
        """Length in bytes of the document this parse reproduces."""
        return sum(factor.output_length for factor in self._factors)

    @property
    def average_factor_length(self) -> float:
        """Mean decoded length per factor (the paper's "average factor length")."""
        if not self._factors:
            return 0.0
        return self.decoded_length / len(self._factors)

    def positions(self) -> List[int]:
        """The position stream (literal bytes appear as their byte values)."""
        return [factor.position for factor in self._factors]

    def lengths(self) -> List[int]:
        """The length stream (0 for literal factors)."""
        return [factor.length for factor in self._factors]
