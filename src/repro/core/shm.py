"""Shared-memory segment lifecycle helpers.

Two subsystems keep state in ``multiprocessing.shared_memory`` segments: the
parallel encode pipeline (the dictionary bytes + suffix-array acceleration
arrays published to spawn/forkserver workers) and the cross-process serving
cache (:class:`repro.storage.SharedMemoryCache`).  Both need the same two
pieces of lifecycle machinery, so they live here:

* :func:`attach_segment` — attach to an existing segment *without* handing
  its lifetime to the attaching process's ``resource_tracker``.  Attachers
  only borrow segments; the creator owns unlink.  A tracker that adopts a
  borrowed name races the owner's own bookkeeping and logs spurious errors
  at interpreter shutdown.  Python 3.13+ exposes ``track=False`` for exactly
  this; on older versions registration is suppressed for the duration of the
  attach.
* :func:`release_segment` — close (and optionally unlink) one segment,
  swallowing the errors that only mean "already released": close refused
  because a buffer is still exported must not stop the unlink, and a name
  already unlinked by a racing owner is not a failure.
"""

from __future__ import annotations

__all__ = ["attach_segment", "release_segment"]


def attach_segment(name: str):
    """Attach to segment ``name`` without resource-tracker ownership."""
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _skip_shared_memory(resource_name, rtype):
            if rtype != "shared_memory":
                original_register(resource_name, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


def release_segment(segment, unlink: bool = False) -> None:
    """Close ``segment`` and, when ``unlink`` is set, remove its name.

    Close and unlink are attempted independently: a close refused because a
    buffer is still exported (``BufferError``) must not stop the unlink, and
    unlinking a name that is already gone is treated as success.
    """
    try:
        segment.close()
    except (OSError, BufferError):
        pass
    if unlink:
        try:
            segment.unlink()
        except (OSError, FileNotFoundError):
            pass
