"""RLZ decoding (Figure 2 of the paper).

Decoding is intentionally trivial — that is the point of the scheme: with
the dictionary resident in memory, each ``(position, length)`` pair is
either a literal byte (length 0) or a slice copy out of the dictionary.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import DecodingError
from .dictionary import RlzDictionary
from .factor import Factor, Factorization

__all__ = ["decode_factors", "decode_pairs"]


def decode_factors(factors: Iterable[Factor], dictionary: RlzDictionary) -> bytes:
    """Reconstruct a document from its factors and the dictionary."""
    data = dictionary.data
    limit = len(data)
    out = bytearray()
    for factor in factors:
        if factor.is_literal:
            out.append(factor.position)
        else:
            end = factor.position + factor.length
            if factor.position < 0 or end > limit:
                raise DecodingError(
                    f"factor ({factor.position}, {factor.length}) is outside the "
                    f"dictionary (size {limit})"
                )
            out += data[factor.position : end]
    return bytes(out)


def decode_pairs(
    positions: Sequence[int], lengths: Sequence[int], dictionary: RlzDictionary
) -> bytes:
    """Reconstruct a document from parallel position/length streams.

    This is the hot path used by :class:`repro.storage.RlzStore`: the factor
    objects are never materialised, the streams decoded by the pair codecs
    are consumed directly.
    """
    if len(positions) != len(lengths):
        raise DecodingError(
            f"position/length stream mismatch: {len(positions)} vs {len(lengths)}"
        )
    data = dictionary.data
    limit = len(data)
    out = bytearray()
    for position, length in zip(positions, lengths):
        if length == 0:
            if not 0 <= position <= 255:
                raise DecodingError(f"literal byte out of range: {position}")
            out.append(position)
        else:
            end = position + length
            if position < 0 or end > limit:
                raise DecodingError(
                    f"factor ({position}, {length}) is outside the dictionary "
                    f"(size {limit})"
                )
            out += data[position:end]
    return bytes(out)


def decode_factorization(factorization: Factorization, dictionary: RlzDictionary) -> bytes:
    """Convenience wrapper over :func:`decode_factors` for a full parse."""
    return decode_factors(factorization, dictionary)
