"""RLZ decoding (Figure 2 of the paper).

Decoding is intentionally trivial — that is the point of the scheme: with
the dictionary resident in memory, each ``(position, length)`` pair is
either a literal byte (length 0) or a slice copy out of the dictionary.

Two execution strategies produce identical output:

* a scalar path that collects zero-copy ``memoryview`` slices of the
  dictionary and joins them once at the end (no per-factor ``bytearray``
  growth); used for very short factor streams where numpy call overhead
  would dominate;
* a vectorized path that reconstructs the document with a single numpy
  gather out of the dictionary's :attr:`~repro.core.RlzDictionary.decode_table`
  (dictionary bytes followed by the 256 literal byte values).  Factor runs
  become consecutive index ranges built with one cumulative sum, so decoding
  proceeds at memory bandwidth rather than one Python iteration per factor.

All validation — literal byte range and dictionary bounds, shared by
:func:`decode_factors` and :func:`decode_pairs` — happens before a single
output byte is copied.  :func:`decode_many` batches whole request sets
through one gather, which is what :class:`repro.storage.RlzStore` uses to
serve multi-document reads.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import DecodingError
from .dictionary import RlzDictionary
from .factor import Factor, Factorization

__all__ = ["decode_factors", "decode_pairs", "decode_many"]

#: Minimum factor count before the vectorized path is considered at all
#: (below it the fixed numpy cost always loses).
_VECTOR_MIN_FACTORS = 32

#: The vectorized decoder pays per *output byte* (index build + gather)
#: while the scalar decoder pays per *factor* (one zero-copy slice each), so
#: vectorization wins exactly when factors are short.  Streams whose mean
#: copy length is at or below this many bytes take the vectorized path.
_VECTOR_MAX_MEAN_LENGTH = 4

#: Interned single-byte objects for literal factors on the scalar path.
_LITERALS = [bytes([value]) for value in range(256)]


def _check_literal(position: int) -> None:
    if not 0 <= position <= 255:
        raise DecodingError(f"literal byte out of range: {position}")


def _check_copy(position: int, length: int, limit: int) -> None:
    if position < 0 or length < 0 or position + length > limit:
        raise DecodingError(
            f"factor ({position}, {length}) is outside the dictionary (size {limit})"
        )


def _decode_scalar(
    positions: Sequence[int], lengths: Sequence[int], data: bytes
) -> bytes:
    """Decode one stream pair by joining zero-copy dictionary slices."""
    limit = len(data)
    view = memoryview(data)
    literals = _LITERALS
    parts: List[object] = []
    append = parts.append
    for position, length in zip(positions, lengths):
        if length == 0:
            if 0 <= position <= 255:
                append(literals[position])
            else:
                _check_literal(position)
        else:
            end = position + length
            if 0 <= position and 0 < length and end <= limit:
                append(view[position:end])
            else:
                _check_copy(position, length, limit)
    # Only memoryviews have been collected so far: the join below is the
    # single copy, and it runs only once every factor has validated.
    return b"".join(parts)


def _validate_arrays(
    positions: np.ndarray, lengths: np.ndarray, limit: int
) -> np.ndarray:
    """Bounds-check whole streams at once; returns the literal mask.

    Shared by every vectorized decode entry point, and equivalent to running
    :func:`_check_literal` / :func:`_check_copy` on each factor — including
    raising on the first offending factor — before any output is built.
    """
    literal_mask = lengths == 0
    bad = np.flatnonzero(
        (literal_mask & ((positions < 0) | (positions > 255)))
        | (~literal_mask & ((lengths < 0) | (positions < 0) | (positions + lengths > limit)))
    )
    if bad.size:
        index = int(bad[0])
        if literal_mask[index]:
            _check_literal(int(positions[index]))
        _check_copy(int(positions[index]), int(lengths[index]), limit)
    return literal_mask


def _gather_indexes(
    positions: np.ndarray, lengths: np.ndarray, literal_mask: np.ndarray, limit: int
) -> Tuple[np.ndarray, int]:
    """Index array such that ``decode_table[indexes]`` is the decoded text.

    Every factor emits a run of consecutive indexes: copy factors start at
    their dictionary position, literals are a length-1 run into the identity
    region appended to the dictionary.  The runs are laid out by seeding a
    vector of ones with per-run start deltas and taking one cumulative sum.
    """
    output_lengths = np.where(literal_mask, 1, lengths)
    total = int(output_lengths.sum())
    # 32-bit indexes halve the memory traffic of the cumulative sums and the
    # gather; they cover every dictionary this codebase can represent.
    dtype = np.int32 if total <= 0x7FFFFFFF and limit + 256 <= 0x7FFFFFFF else np.int64
    output_lengths = output_lengths.astype(dtype, copy=False)
    run_starts = np.where(literal_mask, limit + positions, positions).astype(
        dtype, copy=False
    )
    run_offsets = np.empty(len(positions), dtype=dtype)
    run_offsets[0] = 0
    np.cumsum(output_lengths[:-1], out=run_offsets[1:])
    deltas = np.ones(total, dtype=dtype)
    seeds = np.empty(len(positions), dtype=dtype)
    seeds[0] = run_starts[0]
    seeds[1:] = run_starts[1:] - run_starts[:-1] - output_lengths[:-1] + 1
    deltas[run_offsets] = seeds
    return np.cumsum(deltas, dtype=dtype), total


def _decode_vector(
    positions: Sequence[int], lengths: Sequence[int], dictionary: RlzDictionary
) -> bytes:
    """Decode one stream pair with a single gather out of the decode table."""
    position_array = np.asarray(positions, dtype=np.int64)
    length_array = np.asarray(lengths, dtype=np.int64)
    literal_mask = _validate_arrays(position_array, length_array, len(dictionary.data))
    indexes, _ = _gather_indexes(
        position_array, length_array, literal_mask, len(dictionary.data)
    )
    return dictionary.decode_table[indexes].tobytes()


def decode_factors(factors: Iterable[Factor], dictionary: RlzDictionary) -> bytes:
    """Reconstruct a document from its factors and the dictionary."""
    pairs = [(factor.position, factor.length) for factor in factors]
    if not pairs:
        return b""
    positions = [pair[0] for pair in pairs]
    lengths = [pair[1] for pair in pairs]
    return decode_pairs(positions, lengths, dictionary)


def decode_pairs(
    positions: Sequence[int], lengths: Sequence[int], dictionary: RlzDictionary
) -> bytes:
    """Reconstruct a document from parallel position/length streams.

    This is the hot path used by :class:`repro.storage.RlzStore`: the factor
    objects are never materialised, the streams decoded by the pair codecs
    are consumed directly.
    """
    count = len(positions)
    if count != len(lengths):
        raise DecodingError(
            f"position/length stream mismatch: {count} vs {len(lengths)}"
        )
    if not count:
        return b""
    if count >= _VECTOR_MIN_FACTORS and sum(lengths) <= _VECTOR_MAX_MEAN_LENGTH * count:
        return _decode_vector(positions, lengths, dictionary)
    return _decode_scalar(positions, lengths, dictionary.data)


def decode_many(
    stream_pairs: Iterable[Tuple[Sequence[int], Sequence[int]]],
    dictionary: RlzDictionary,
) -> List[bytes]:
    """Decode a batch of documents' stream pairs in one vectorized pass.

    The per-document streams are concatenated, validated and gathered as a
    single index array, then the decoded byte run is sliced back into one
    ``bytes`` object per document.  For request batches (the store's
    ``get_many``) this amortises the fixed numpy cost across the batch and
    is substantially faster than decoding document by document.
    """
    pairs = list(stream_pairs)
    if not pairs:
        return []
    limit = len(dictionary.data)
    counts = []
    total_copy_bytes = 0
    for positions, lengths in pairs:
        if len(positions) != len(lengths):
            raise DecodingError(
                f"position/length stream mismatch: {len(positions)} vs {len(lengths)}"
            )
        counts.append(len(positions))
        total_copy_bytes += sum(lengths)
    total_factors = sum(counts)
    if total_factors == 0:
        return [b"" for _ in pairs]
    if (
        total_factors < _VECTOR_MIN_FACTORS
        or total_copy_bytes > _VECTOR_MAX_MEAN_LENGTH * total_factors
    ):
        # Long factors: one zero-copy slice per factor beats per-byte index
        # arithmetic, so decode document by document on the scalar path.
        data = dictionary.data
        return [
            _decode_scalar(positions, lengths, data) for positions, lengths in pairs
        ]
    position_array = np.empty(total_factors, dtype=np.int64)
    length_array = np.empty(total_factors, dtype=np.int64)
    cursor = 0
    for (positions, lengths), count in zip(pairs, counts):
        position_array[cursor : cursor + count] = positions
        length_array[cursor : cursor + count] = lengths
        cursor += count
    literal_mask = _validate_arrays(position_array, length_array, limit)
    indexes, total_bytes = _gather_indexes(
        position_array, length_array, literal_mask, limit
    )
    decoded = dictionary.decode_table[indexes].tobytes()
    # Per-document output extents: the factor-count boundaries mapped through
    # the per-factor output lengths.
    output_lengths = np.where(literal_mask, 1, length_array)
    factor_bounds = np.cumsum(np.asarray(counts, dtype=np.int64))
    byte_bounds = np.concatenate(([0], np.cumsum(output_lengths)))[factor_bounds]
    documents: List[bytes] = []
    start = 0
    for end in byte_bounds.tolist():
        documents.append(decoded[start:end])
        start = end
    assert start == total_bytes
    return documents


def decode_factorization(factorization: Factorization, dictionary: RlzDictionary) -> bytes:
    """Convenience wrapper over :func:`decode_factors` for a full parse."""
    return decode_factors(factorization, dictionary)
