"""Dictionary pruning and resampling (the paper's Section 6 future work).

The conclusion of the paper observes that even a well-sampled dictionary
contains redundancy — regions never referenced by any factor — and sketches
a remedy: make multiple passes, eliminating unused parts of the dictionary
and refilling the freed space with new samples (the idea developed further
in Hoobin, Puglisi & Zobel, "Sample selection for dictionary-based corpus
compression", SIGIR 2011).

:func:`prune_dictionary` and :func:`iterative_resample` implement that loop:

1. factorize a training sample of the collection against the current
   dictionary and record which dictionary bytes are used;
2. drop maximal unused runs longer than a threshold (short unused gaps are
   kept — removing them would split factors that span them);
3. refill the freed budget with fresh samples drawn from parts of the
   collection midway between the original sample points, so new content
   enters the dictionary;
4. repeat for a configurable number of passes or until the unused fraction
   stops improving.

Pruning changes dictionary offsets, so (unlike the append-only updates of
Section 3.6) it must happen *before* the collection is encoded; the
functions here are dictionary-construction utilities, not online-update
utilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..corpus.document import DocumentCollection
from ..errors import DictionaryError
from .dictionary import DictionaryConfig, RlzDictionary, build_dictionary
from .factorizer import RlzFactorizer
from .stats import DictionaryUsage

__all__ = ["PruningReport", "prune_dictionary", "iterative_resample"]


@dataclass(frozen=True)
class PruningReport:
    """Outcome of one pruning / resampling pass."""

    pass_index: int
    dictionary_size: int
    unused_percent_before: float
    bytes_removed: int
    bytes_added: int

    @property
    def churn(self) -> int:
        """Total bytes touched by the pass."""
        return self.bytes_removed + self.bytes_added


def _training_sample(collection: DocumentCollection, fraction: float, minimum: int = 8) -> List:
    """Evenly spaced subset of documents used to measure dictionary usage."""
    count = max(minimum, int(len(collection) * fraction))
    count = min(count, len(collection))
    if count == 0:
        raise DictionaryError("cannot prune against an empty collection")
    step = max(1, len(collection) // count)
    return [collection[index] for index in range(0, len(collection), step)][:count]


def _unused_runs(covered: np.ndarray, min_run: int) -> List[Tuple[int, int]]:
    """Maximal runs of uncovered positions of length >= ``min_run`` as (start, end)."""
    runs: List[Tuple[int, int]] = []
    start: Optional[int] = None
    for index, used in enumerate(covered):
        if not used and start is None:
            start = index
        elif used and start is not None:
            if index - start >= min_run:
                runs.append((start, index))
            start = None
    if start is not None and len(covered) - start >= min_run:
        runs.append((start, len(covered)))
    return runs


def prune_dictionary(
    dictionary: RlzDictionary,
    collection: DocumentCollection,
    training_fraction: float = 0.25,
    min_unused_run: int = 64,
    refill: bool = True,
    refill_offset_fraction: float = 0.5,
    pass_index: int = 0,
) -> Tuple[RlzDictionary, PruningReport]:
    """One pruning pass: drop unused runs, optionally refill the freed space.

    Parameters
    ----------
    dictionary:
        The dictionary to prune (its sampling config, when present, supplies
        the sample size used for refilling).
    collection:
        The collection the dictionary serves; a training subset of it is
        factorized to measure usage.
    training_fraction:
        Fraction of documents used to measure usage (evenly spaced).
    min_unused_run:
        Only unused runs at least this long are removed.
    refill:
        When true, freed bytes are replaced by new samples taken from
        collection positions offset from the original sample grid, keeping
        the dictionary size constant; when false the dictionary shrinks.
    refill_offset_fraction:
        Where, between two original sample points, the replacement samples
        are taken (0.5 = midway).
    """
    factorizer = RlzFactorizer(dictionary)
    usage = DictionaryUsage(dictionary)
    for document in _training_sample(collection, training_fraction):
        usage.add(factorizer.factorize(document.content))

    covered = usage._covered  # intentional internal access within the package
    runs = _unused_runs(covered, min_unused_run)
    unused_before = usage.unused_percentage
    if not runs:
        report = PruningReport(
            pass_index=pass_index,
            dictionary_size=len(dictionary),
            unused_percent_before=unused_before,
            bytes_removed=0,
            bytes_added=0,
        )
        return dictionary, report

    data = dictionary.data
    kept_parts: List[bytes] = []
    cursor = 0
    removed = 0
    for start, end in runs:
        kept_parts.append(data[cursor:start])
        removed += end - start
        cursor = end
    kept_parts.append(data[cursor:])
    pruned = b"".join(kept_parts)

    added = 0
    if refill and removed > 0:
        sample_size = (
            dictionary.config.sample_size if dictionary.config is not None else 1024
        )
        text = collection.concatenate()
        # Round up so the refill can cover the whole freed budget; the final
        # slice below trims any overshoot.
        num_samples = max(1, -(-removed // sample_size))
        stride = len(text) / num_samples
        offset = stride * refill_offset_fraction
        pieces = []
        for index in range(num_samples):
            start = int(index * stride + offset) % max(1, len(text))
            pieces.append(text[start : start + sample_size])
        refill_bytes = b"".join(pieces)[:removed]
        pruned += refill_bytes
        added = len(refill_bytes)

    new_dictionary = RlzDictionary(
        pruned,
        config=dictionary.config,
        sa_algorithm=dictionary._sa_algorithm,
        accelerated=dictionary._accelerated,
    )
    report = PruningReport(
        pass_index=pass_index,
        dictionary_size=len(new_dictionary),
        unused_percent_before=unused_before,
        bytes_removed=removed,
        bytes_added=added,
    )
    return new_dictionary, report


def iterative_resample(
    collection: DocumentCollection,
    config: DictionaryConfig,
    passes: int = 2,
    training_fraction: float = 0.25,
    min_unused_run: int = 64,
    min_improvement: float = 0.5,
) -> Tuple[RlzDictionary, List[PruningReport]]:
    """Build a dictionary and refine it with up to ``passes`` pruning passes.

    Iteration stops early when a pass removes nothing or when the unused
    percentage improves by less than ``min_improvement`` percentage points.
    Returns the final dictionary and the per-pass reports.
    """
    if passes < 0:
        raise DictionaryError("passes must be non-negative")
    dictionary = build_dictionary(collection, config)
    reports: List[PruningReport] = []
    previous_unused: Optional[float] = None
    for pass_index in range(passes):
        dictionary, report = prune_dictionary(
            dictionary,
            collection,
            training_fraction=training_fraction,
            min_unused_run=min_unused_run,
            pass_index=pass_index,
        )
        reports.append(report)
        if report.bytes_removed == 0:
            break
        if (
            previous_unused is not None
            and previous_unused - report.unused_percent_before < min_improvement
        ):
            break
        previous_unused = report.unused_percent_before
    return dictionary, reports
