"""Dynamic update support (Section 3.6 and Table 10).

The paper argues that uniform sampling makes RLZ robust to collection
growth: a dictionary built from an earlier (smaller) version of the
collection keeps compressing new documents well as long as they resemble
the old ones.  Two mechanisms are provided:

* :func:`simulate_prefix_dictionaries` — the Table 10 experiment: build a
  dictionary from a prefix of the collection, compress the *whole*
  collection with it, and report the compression percentage per prefix.
* :class:`AppendOnlyUpdater` — the "no memory constraint" strategy: when
  per-document compression degrades below a threshold, sample the new
  documents and append the samples to the dictionary.  Appending keeps all
  previously emitted ``(position, length)`` pairs valid, so only the suffix
  array is rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..corpus.document import Document, DocumentCollection
from .compressor import RlzCompressor
from .dictionary import DictionaryConfig, RlzDictionary, build_dictionary, sample_uniform
from .encoder import PairEncoder
from .factorizer import RlzFactorizer

__all__ = [
    "PrefixDictionaryResult",
    "simulate_prefix_dictionaries",
    "AppendOnlyUpdater",
]


@dataclass(frozen=True)
class PrefixDictionaryResult:
    """Outcome of compressing the full collection with a prefix dictionary."""

    prefix_percent: float
    compression_percent: float
    dictionary_size: int


def simulate_prefix_dictionaries(
    collection: DocumentCollection,
    dictionary_size: int,
    sample_size: int = 1024,
    prefixes: Sequence[float] = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.01),
    scheme: str = "ZZ",
) -> List[PrefixDictionaryResult]:
    """Reproduce the Table 10 protocol.

    For each prefix fraction, a dictionary of ``dictionary_size`` bytes is
    sampled uniformly from that prefix of the collection only, and the whole
    collection is then compressed against it with the given pair-coding
    scheme.  Results are returned in the order of ``prefixes``.
    """
    results: List[PrefixDictionaryResult] = []
    for prefix in prefixes:
        config = DictionaryConfig(
            size=dictionary_size,
            sample_size=sample_size,
            policy="prefix",
            prefix_fraction=prefix,
        )
        dictionary = build_dictionary(collection, config)
        compressor = RlzCompressor(dictionary=dictionary, scheme=scheme)
        compressed = compressor.compress(collection)
        results.append(
            PrefixDictionaryResult(
                prefix_percent=100.0 * prefix,
                compression_percent=compressed.compression_ratio(),
                dictionary_size=len(dictionary),
            )
        )
    return results


class AppendOnlyUpdater:
    """Maintain an RLZ dictionary as documents arrive over time.

    The updater monitors per-document compression.  When the rolling average
    of the last ``window`` documents falls below ``threshold_percent`` (that
    is, documents stop compressing well), it samples the recent poorly
    compressing documents and appends the samples to the dictionary.  The
    existing encoding stays valid because offsets into the old dictionary
    are unchanged (Section 3.6).
    """

    def __init__(
        self,
        dictionary: RlzDictionary,
        scheme: str = "ZZ",
        threshold_percent: float = 25.0,
        window: int = 50,
        sample_size: int = 1024,
        append_budget: Optional[int] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self._dictionary = dictionary
        self._scheme = scheme
        self._threshold = threshold_percent
        self._window = window
        self._sample_size = sample_size
        self._append_budget = append_budget
        self._factorizer = RlzFactorizer(dictionary)
        self._encoder = PairEncoder(scheme)
        self._recent_ratios: List[float] = []
        self._pending: List[Document] = []
        self._appended_bytes = 0
        self._rebuilds = 0

    @property
    def dictionary(self) -> RlzDictionary:
        """The current dictionary (grows when updates trigger)."""
        return self._dictionary

    @property
    def rebuilds(self) -> int:
        """How many times the dictionary has been extended."""
        return self._rebuilds

    @property
    def appended_bytes(self) -> int:
        """Total bytes appended to the dictionary so far."""
        return self._appended_bytes

    def add_document(self, document: Document) -> bytes:
        """Encode one arriving document, updating the dictionary if needed.

        Returns the encoded blob for the document (valid against the
        dictionary as it is *after* the call — extensions never invalidate
        earlier encodings).
        """
        factorization = self._factorizer.factorize(document.content)
        blob = self._encoder.encode(factorization)
        ratio = 100.0 * len(blob) / max(1, document.size)
        self._recent_ratios.append(ratio)
        self._pending.append(document)
        if len(self._recent_ratios) > self._window:
            self._recent_ratios.pop(0)
            self._pending.pop(0)
        if (
            len(self._recent_ratios) == self._window
            and sum(self._recent_ratios) / self._window > self._threshold
        ):
            self._extend_dictionary()
        return blob

    def _extend_dictionary(self) -> None:
        """Sample the recent documents and append the samples to the dictionary."""
        new_text = b"".join(document.content for document in self._pending)
        budget = self._append_budget or max(self._sample_size, len(self._dictionary) // 10)
        extra = sample_uniform(new_text, budget, self._sample_size)
        if self._append_budget is not None and self._appended_bytes + len(extra) > self._append_budget:
            return
        self._dictionary = self._dictionary.extended(extra)
        self._factorizer = RlzFactorizer(self._dictionary)
        self._appended_bytes += len(extra)
        self._rebuilds += 1
        self._recent_ratios.clear()
        self._pending.clear()
