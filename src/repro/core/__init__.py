"""The paper's primary contribution: relative Lempel-Ziv compression.

Public API overview:

* :class:`RlzDictionary` / :func:`build_dictionary` — dictionary sampling
  (Section 3.3);
* :class:`RlzFactorizer` — the Encode/Factor algorithms of Figure 1;
* :class:`PairEncoder` — the ZZ/ZV/UZ/UV factor-stream encodings of
  Section 3.4;
* :func:`decode_factors` / :func:`decode_pairs` — Figure 2 decoding;
* :class:`RlzCompressor` / :class:`CompressedCollection` — the end-to-end
  ``rlz`` system of Section 3.1;
* :class:`FactorStatistics`, :class:`DictionaryUsage`,
  :func:`length_histogram` — the diagnostics behind Tables 2-3 and Figure 3;
* :func:`simulate_prefix_dictionaries`, :class:`AppendOnlyUpdater` — the
  dynamic-update story of Section 3.6 / Table 10.
"""

from .compressor import (
    CompressedCollection,
    CompressedDocument,
    CompressionReport,
    RlzCompressor,
)
from .decoder import decode_factors, decode_many, decode_pairs
from .dictionary import (
    DictionaryConfig,
    RlzDictionary,
    build_dictionary,
    sample_prefix,
    sample_random_documents,
    sample_uniform,
)
from .encoder import PAPER_SCHEMES, PairCodingScheme, PairEncoder
from .factor import Factor, Factorization
from .factorizer import RlzFactorizer
from .parallel import ParallelCompressor
from .pruning import PruningReport, iterative_resample, prune_dictionary
from .stats import DictionaryUsage, FactorStatistics, length_histogram
from .update import AppendOnlyUpdater, PrefixDictionaryResult, simulate_prefix_dictionaries

__all__ = [
    "AppendOnlyUpdater",
    "CompressedCollection",
    "CompressedDocument",
    "CompressionReport",
    "DictionaryConfig",
    "DictionaryUsage",
    "Factor",
    "FactorStatistics",
    "Factorization",
    "PAPER_SCHEMES",
    "PairCodingScheme",
    "PairEncoder",
    "ParallelCompressor",
    "PrefixDictionaryResult",
    "PruningReport",
    "RlzCompressor",
    "RlzDictionary",
    "RlzFactorizer",
    "build_dictionary",
    "decode_factors",
    "decode_many",
    "decode_pairs",
    "iterative_resample",
    "length_histogram",
    "prune_dictionary",
    "sample_prefix",
    "sample_random_documents",
    "sample_uniform",
    "simulate_prefix_dictionaries",
]
