"""Factor-pair encoding schemes (Section 3.4 of the paper).

A document's factorization is two parallel integer streams — positions and
lengths — grouped per document and encoded independently.  The paper
evaluates four combinations, named by two letters (position codec first):

=======  =====================================  ==================================
Scheme   Position stream                        Length stream
=======  =====================================  ==================================
``ZZ``   zlib (best compression) over raw u32   zlib over vbyte
``ZV``   zlib over raw u32                      vbyte
``UZ``   raw u32                                zlib over vbyte
``UV``   raw u32                                vbyte
=======  =====================================  ==================================

Any codec registered in :mod:`repro.coding.registry` can be used for either
stream (e.g. ``"GV"`` uses Elias gamma positions), which is how the coding
ablation benchmark explores the future-work codecs from Section 6.

The per-document container layout produced by :class:`PairEncoder` is::

    vbyte  number of factors
    vbyte  byte length of the encoded position stream
    bytes  encoded position stream
    bytes  encoded length stream (runs to the end of the blob)

Literal factors are carried in-band exactly as the paper describes: a factor
with length 0 stores the literal byte value in its position field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..coding import IntegerCodec, U32Codec, VByteCodec, ZlibCodec, encode_vbyte, make_codec
from ..errors import DecodingError, EncodingError
from .factor import Factor, Factorization

__all__ = ["PairCodingScheme", "PairEncoder", "PAPER_SCHEMES"]

#: The four schemes evaluated in Tables 4, 5 and 8 of the paper.
PAPER_SCHEMES = ("ZZ", "ZV", "UZ", "UV")


@dataclass(frozen=True)
class PairCodingScheme:
    """A named combination of a position codec and a length codec."""

    name: str
    position_codec: IntegerCodec
    length_codec: IntegerCodec

    @classmethod
    def from_name(cls, name: str) -> "PairCodingScheme":
        """Parse a two-letter scheme name such as ``"ZV"``.

        The first letter selects the position codec, the second the length
        codec.  ``Z`` is interpreted the way the paper uses it: zlib over raw
        u32 words for positions, zlib over vbyte for lengths (lengths are
        overwhelmingly small, so the vbyte pre-serialisation is both smaller
        and faster).
        """
        if len(name) != 2:
            raise EncodingError(
                f"pair-coding scheme names have exactly two letters, got {name!r}"
            )
        position_letter, length_letter = name[0].upper(), name[1].upper()
        position_codec = cls._position_codec(position_letter)
        length_codec = cls._length_codec(length_letter)
        return cls(name=name.upper(), position_codec=position_codec, length_codec=length_codec)

    @staticmethod
    def _position_codec(letter: str) -> IntegerCodec:
        if letter == "Z":
            return ZlibCodec(inner=U32Codec())
        return make_codec(letter)

    @staticmethod
    def _length_codec(letter: str) -> IntegerCodec:
        if letter == "Z":
            return ZlibCodec(inner=VByteCodec())
        if letter == "U":
            return U32Codec()
        return make_codec(letter)


class PairEncoder:
    """Encode/decode per-document factor streams under a pair-coding scheme."""

    def __init__(self, scheme: PairCodingScheme | str = "ZZ") -> None:
        if isinstance(scheme, str):
            scheme = PairCodingScheme.from_name(scheme)
        self._scheme = scheme

    @property
    def scheme(self) -> PairCodingScheme:
        """The pair-coding scheme in use."""
        return self._scheme

    @property
    def scheme_name(self) -> str:
        """Short name of the scheme (e.g. ``"ZV"``)."""
        return self._scheme.name

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, factorization: Factorization) -> bytes:
        """Serialise one document's factorization into a self-contained blob."""
        return self.encode_streams(factorization.positions(), factorization.lengths())

    def encode_streams(self, positions: List[int], lengths: List[int]) -> bytes:
        """Serialise raw (positions, lengths) streams into a blob.

        This is the zero-object fast path used by the throughput pipeline:
        the streams produced by ``RlzFactorizer.factorize_streams`` are
        encoded directly, yielding a blob byte-identical to
        ``encode(factorize(text))``.
        """
        if len(positions) != len(lengths):
            raise EncodingError(
                f"position/length stream mismatch: {len(positions)} vs {len(lengths)}"
            )
        try:
            position_bytes = self._scheme.position_codec.encode(positions)
            length_bytes = self._scheme.length_codec.encode(lengths)
        except ValueError as exc:
            raise EncodingError(str(exc)) from exc
        header = encode_vbyte([len(positions), len(position_bytes)])
        return header + position_bytes + length_bytes

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode_streams(self, blob: bytes) -> Tuple[List[int], List[int]]:
        """Decode a blob back into its (positions, lengths) streams."""
        count, position_size, offset = self._read_header(blob)
        position_end = offset + position_size
        if position_end > len(blob):
            raise DecodingError("encoded document truncated in position stream")
        positions = self._scheme.position_codec.decode(blob[offset:position_end], count)
        lengths = self._scheme.length_codec.decode(blob[position_end:], count)
        if len(positions) != count or len(lengths) != count:
            raise DecodingError("stream lengths disagree with factor count")
        return positions, lengths

    def decode(self, blob: bytes) -> Factorization:
        """Decode a blob back into a :class:`Factorization`."""
        positions, lengths = self.decode_streams(blob)
        return Factorization(
            [Factor(position=p, length=l) for p, l in zip(positions, lengths)]
        )

    @staticmethod
    def _read_header(blob: bytes) -> Tuple[int, int, int]:
        """Read the (factor count, position-stream size) header.

        Returns the two values plus the offset of the first byte after the
        header.
        """
        values: List[int] = []
        offset = 0
        current = 0
        shift = 0
        while offset < len(blob) and len(values) < 2:
            byte = blob[offset]
            offset += 1
            if byte & 0x80:
                values.append(current | ((byte & 0x7F) << shift))
                current = 0
                shift = 0
            else:
                current |= byte << shift
                shift += 7
        if len(values) != 2:
            raise DecodingError("encoded document header truncated")
        return values[0], values[1], offset
